//! Model checking instead of testing: exhaustively verify the paper's
//! lemmas over EVERY configuration and EVERY unfair-distributed-daemon
//! choice, then watch a message-passing run with the event transcript on.
//!
//! ```sh
//! cargo run --release --example exhaustive_verification
//! ```

use ssrmin::core::{RingParams, SsrMin};
use ssrmin::mpnet::{CstSim, SimConfig};
use ssrmin::verify::{verify, verify_under, DaemonClass};

fn main() {
    // ---------------------------------------------------------------
    // Part 1: the checker. n = 3, K = 4 has (4K)^n = 4096 configurations;
    // the distributed daemon adds every subset choice on top.
    // ---------------------------------------------------------------
    let algo = SsrMin::new(RingParams::new(3, 4).expect("valid parameters"));
    let report = verify(&algo, 1_000_000).expect("space fits");
    println!("SSRmin n=3, K=4 — exhaustive verification:");
    println!("  configurations        : {}", report.configs);
    println!("  legitimate (3nK)      : {}", report.legitimate);
    println!("  closure (Lemma 1)     : {}", report.closure_holds);
    println!("  no deadlock (Lemma 4) : {}", report.deadlock_free);
    println!("  converges (Lemma 6)   : {}", report.converges);
    println!(
        "  privileged, anywhere  : {}..={}",
        report.min_privileged_all, report.max_privileged_all
    );
    println!(
        "  privileged, in Λ      : {}..={}",
        report.min_privileged_legit, report.max_privileged_legit
    );
    println!("  EXACT worst-case stabilization: {} steps", report.worst_case_steps);
    assert!(report.converges && report.closure_holds && report.deadlock_free);
    assert!(report.min_privileged_all >= 1, "mutual inclusion even while stabilizing");

    // The central daemon explores a subset of the distributed one's
    // choices, so its worst case is never larger (here: 12 vs 16 — the
    // distributed adversary's simultaneous moves genuinely hurt).
    let central = verify_under(&algo, 1_000_000, DaemonClass::Central).expect("fits");
    println!("  (central daemon worst case: {} steps)", central.worst_case_steps);
    assert!(central.worst_case_steps <= report.worst_case_steps);

    // ---------------------------------------------------------------
    // Part 2: the transcript. Run the CST simulator with recording on and
    // print the last handful of events — the debugging view of a live run.
    // ---------------------------------------------------------------
    let p5 = RingParams::new(5, 7).expect("valid parameters");
    let live = SsrMin::new(p5);
    let mut sim = CstSim::new(
        live,
        live.legitimate_anchor(0),
        SimConfig { seed: 42, loss: 0.1, ..SimConfig::default() },
    )
    .expect("valid configuration");
    sim.enable_transcript(14);
    sim.run_until(2_000);
    println!("\nLast events of a lossy CST run (n=5, 10% loss):");
    print!("{}", sim.transcript().expect("enabled").render());
    let check = sim.definition3_check();
    println!(
        "Definition 3 right now: h_true = {}, h_cached = {} → {}",
        check.h_true,
        check.h_cached,
        if check.holds() { "no model gap" } else { "MODEL GAP" }
    );
}
