//! The model gap, demonstrated: three token-circulation designs executed in
//! the *same* message-passing network (CST transform, identical delays and
//! dwell times), with their zero-token time compared.
//!
//! * Dijkstra's SSToken — correct mutual exclusion in the state-reading
//!   model, but the token vanishes in transit (Figure 11);
//! * two independent SSToken instances — two tokens, still hits zero when
//!   both are in flight (Figure 12);
//! * SSRmin — model-gap tolerant: never zero (Figure 13 / Theorem 3).
//!
//! ```sh
//! cargo run --example model_gap
//! ```

use ssrmin::analysis::Table;
use ssrmin::core::{DualSsToken, RingParams, SsToken, SsrMin};
use ssrmin::mpnet::{CstSim, DelayModel, SimConfig, TimelineSummary};

fn run<A: ssrmin::core::RingAlgorithm>(
    algo: A,
    initial: Vec<A::State>,
    seed: u64,
) -> TimelineSummary {
    let cfg = SimConfig {
        seed,
        delay: DelayModel::Uniform { min: 3, max: 8 },
        loss: 0.0,
        timer_interval: 40,
        send_on_receipt: true,
        exec_delay: 4, // each node works 4 ticks before handing over
        burst: None,
    };
    let mut sim = CstSim::new(algo, initial, cfg).expect("valid configuration");
    sim.run_until(50_000);
    sim.timeline().summary(0).expect("non-empty window")
}

fn main() {
    let params = RingParams::new(5, 7).expect("valid parameters");
    let mut table = Table::new(vec![
        "algorithm",
        "zero-token time",
        "zero intervals",
        "min privileged",
        "max privileged",
    ]);

    let dijkstra = SsToken::new(params);
    let s = run(dijkstra, dijkstra.uniform_config(0), 1);
    table.row(vec![
        "SSToken (Dijkstra)".to_string(),
        s.zero_privileged_time.to_string(),
        s.zero_privileged_intervals.to_string(),
        s.min_privileged.to_string(),
        s.max_privileged.to_string(),
    ]);

    let dual = DualSsToken::new(params);
    let s = run(dual, dual.config_with_tokens_at(0, 2, 0), 1);
    table.row(vec![
        "2 × SSToken (independent)".to_string(),
        s.zero_privileged_time.to_string(),
        s.zero_privileged_intervals.to_string(),
        s.min_privileged.to_string(),
        s.max_privileged.to_string(),
    ]);

    let ssrmin = SsrMin::new(params);
    let s = run(ssrmin, ssrmin.legitimate_anchor(0), 1);
    table.row(vec![
        "SSRmin (this paper)".to_string(),
        s.zero_privileged_time.to_string(),
        s.zero_privileged_intervals.to_string(),
        s.min_privileged.to_string(),
        s.max_privileged.to_string(),
    ]);

    println!("Message-passing execution, 50k ticks, n = 5 (paper Figures 11–13):\n");
    print!("{}", table.render());
    println!(
        "\nOnly SSRmin keeps ≥1 privileged node at every instant — the\n\
         'model gap tolerance' the paper introduces. Its handshake also caps\n\
         the privileged count at 2, unlike unboundedly many tokens."
    );
    assert_eq!(s.zero_privileged_time, 0);
}
