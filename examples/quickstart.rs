//! Quickstart: run SSRmin in the state-reading model and watch the two
//! tokens circulate like an inchworm.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ssrmin::core::{RingAlgorithm, RingParams, SsrMin};
use ssrmin::daemon::daemons::CentralFirst;
use ssrmin::daemon::{trace, Engine};

fn main() {
    // A ring of five processes, K = 7 > n (the paper's example size).
    let params = RingParams::new(5, 7).expect("valid parameters");
    let algo = SsrMin::new(params);

    // Start from the legitimate anchor configuration of Figure 4:
    // (3.0.1, 3.0.0, 3.0.0, 3.0.0, 3.0.0) — P0 holds both tokens.
    let initial = algo.legitimate_anchor(3);
    let mut engine = Engine::new(algo, initial).expect("valid configuration");

    // In legitimate configurations exactly one process is enabled, so every
    // daemon produces the same execution; 15 steps = one full handover lap.
    let mut daemon = CentralFirst;
    let t = engine.run_traced(&mut daemon, 15);

    println!("SSRmin execution (n = 5, K = 7) — compare with the paper's Figure 4:");
    println!("'P' = primary token, 'S' = secondary token, '/r' = rule about to fire\n");
    print!("{}", trace::render_ssrmin_trace(&algo, &t));

    // Every configuration along the way is legitimate with 1..=2 privileged
    // processes — the mutual-inclusion guarantee.
    for (step, cfg) in t.configs().iter().enumerate() {
        assert!(algo.is_legitimate(cfg), "step {step} legitimate");
        let holders = algo.token_holders(cfg);
        assert!((1..=2).contains(&holders.len()));
    }
    println!(
        "\nAll {} configurations legitimate; privileged count always in 1..=2. ✓",
        t.configs().len()
    );
}
