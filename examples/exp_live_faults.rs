//! E16 — live-injected vs scheduled faults on the UDP cluster.
//!
//! The fault supervisor can take its fault script from two sources: a
//! pre-seeded `FaultSchedule` (E15) or `POST /faults` against the embedded
//! ctl server while the ring runs. This experiment realizes the *same*
//! fault — a partition window on the directed link 0→1 — both ways and
//! compares the measured recovery: the injection path must not change the
//! ring's behaviour, only who decides when the fault lands. Along the way
//! it takes a mid-outage Prometheus scrape, which is the observability the
//! scheduled path never had.
//!
//! ```sh
//! cargo run --release --example exp_live_faults
//! ```

use std::thread;
use std::time::Duration;

use ssrmin::core::{RingParams, SsrMin};
use ssrmin::ctl::{get, post, CtlListener};
use ssrmin::mpnet::FaultSchedule;
use ssrmin::net::{
    run_supervised_cluster, run_supervised_cluster_with_ctl, ssr_amnesia, ClusterConfig,
    SupervisedReport, SupervisorConfig,
};

const SEED: u64 = 41;
const RUN_MS: u64 = 1600;
const CUT_MS: u64 = 400;
const HEAL_MS: u64 = 800;

fn config(schedule: FaultSchedule) -> SupervisorConfig {
    SupervisorConfig {
        cluster: ClusterConfig {
            seed: SEED,
            duration: Duration::from_millis(RUN_MS),
            warmup: Duration::from_millis(300),
            ..ClusterConfig::default()
        },
        schedule,
        ..SupervisorConfig::default()
    }
}

fn describe(report: &SupervisedReport<ssrmin::SsrState>) {
    println!("{}", report.recovery.to_ascii());
    let hist = report.recovery.histogram();
    println!(
        "  recovered {}/{} fault events, blocked {} datagrams, re-converged: {}",
        hist.recovered,
        hist.recovered + hist.unrecovered,
        report.cluster.chaos.blocked,
        report.reconverged(),
    );
}

fn main() {
    let params = RingParams::new(5, 6).expect("valid parameters");
    let algo = SsrMin::new(params);

    // Arm A — the E15 path: the partition window is scripted before launch.
    println!("— arm A: scheduled partition 0->1, t = {CUT_MS}..{HEAL_MS} ms (FaultSchedule) —");
    let schedule = FaultSchedule::new().partition_window(0, 1, CUT_MS, HEAL_MS);
    let a = run_supervised_cluster(
        algo,
        algo.legitimate_anchor(0),
        config(schedule),
        ssr_amnesia(params, SEED),
    )
    .expect("scheduled run completes");
    describe(&a);

    // Arm B — the same window, but decided *at runtime* by an operator
    // thread speaking HTTP to the embedded ctl server.
    println!("\n— arm B: the same partition injected live over POST /faults —");
    let listener = CtlListener::bind("127.0.0.1:0".parse().unwrap()).expect("bind ctl socket");
    let url = format!("http://{}", listener.local_addr());
    let admin = thread::spawn(move || {
        thread::sleep(Duration::from_millis(CUT_MS));
        post(&url, "/faults", "partition 0 1").expect("inject partition");
        // Mid-outage scrape: this is what Prometheus would see.
        thread::sleep(Duration::from_millis((HEAL_MS - CUT_MS) / 2));
        let scrape = get(&url, "/metrics").expect("scrape /metrics").body;
        thread::sleep(Duration::from_millis((HEAL_MS - CUT_MS) / 2));
        post(&url, "/faults", "heal 0 1").expect("inject heal");
        scrape
    });
    let b = run_supervised_cluster_with_ctl(
        algo,
        algo.legitimate_anchor(0),
        config(FaultSchedule::new()),
        ssr_amnesia(params, SEED),
        Some(listener),
    )
    .expect("live-injected run completes");
    let scrape = admin.join().expect("admin thread");
    describe(&b);

    println!("\nmid-outage scrape (ring + chaos series):");
    for line in scrape
        .lines()
        .filter(|l| l.starts_with("ssr_ring_") || l.starts_with("ssr_chaos_partitioned"))
    {
        println!("  {line}");
    }

    // Same fault, same verdicts: two rows (cut + heal), datagrams actually
    // blocked in flight, and the invariant re-established after the heal.
    assert_eq!(a.recovery.rows.len(), 2, "scheduled arm: cut + heal rows");
    assert_eq!(b.recovery.rows.len(), 2, "injected arm: cut + heal rows");
    assert!(a.cluster.chaos.blocked > 0 && b.cluster.chaos.blocked > 0);
    assert!(a.reconverged(), "scheduled arm must re-converge");
    assert!(b.reconverged(), "injected arm must re-converge");
    assert!(
        scrape.contains("ssr_chaos_partitioned{link=\"0->1\"} 1"),
        "the mid-outage scrape must show the open partition"
    );

    let heal_recovery = |r: &SupervisedReport<ssrmin::SsrState>| {
        r.recovery.rows.last().and_then(|row| row.recovery).map(|d| d.as_millis())
    };
    println!(
        "\nheal-event recovery: scheduled {:?} ms vs live-injected {:?} ms",
        heal_recovery(&a),
        heal_recovery(&b)
    );
    println!("same fault, same recovery mechanics — only the injection path differs. ✓");
}
