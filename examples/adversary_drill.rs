//! Adversary drill: every adversarial fault kind against one live UDP ring,
//! with the convergence watchdog armed and the Theorem 2 envelope checked.
//!
//! A 5-node ring absorbs, in order: a Hoepman worst-case state corruption
//! (the replica is overwritten mid-run), a babble burst (CRC-valid frames a
//! million generations stale), a rule-engine freeze (the thread keeps
//! ACKing but never executes a rule — only the watchdog can save it), and
//! 20% byte-corruption on every link (the CRC-32 codec's rejection path on
//! the wire). After each event the supervisor measures the wall-clock
//! recovery of the `1 <= privileged <= 2` invariant and the run ends by
//! comparing the worst measured recovery against the `O(n^2)` stabilization
//! envelope of Theorem 2.
//!
//! ```sh
//! cargo run --release --example adversary_drill
//! ```

use std::time::Duration;

use ssrmin::core::{RingParams, SsrMin};
use ssrmin::mpnet::{FaultKind, FaultSchedule};
use ssrmin::net::{
    run_supervised_cluster, ssr_adversary, ChaosConfig, ClusterConfig, SupervisorConfig,
    WatchdogConfig,
};

const SEED: u64 = 53;
const RUN_MS: u64 = 4000;

fn main() {
    let params = RingParams::new(5, 6).expect("valid parameters");
    let algo = SsrMin::new(params);

    // One of each adversarial kind, spaced so every recovery window is
    // cleanly attributable to its fault.
    let schedule = FaultSchedule::new()
        .with(800, FaultKind::CorruptState { node: 2 })
        .with(1600, FaultKind::Babble { node: 4 })
        .with(2400, FaultKind::FreezeNode { node: 1 });

    let cfg = SupervisorConfig {
        cluster: ClusterConfig {
            seed: SEED,
            duration: Duration::from_millis(RUN_MS),
            warmup: Duration::from_millis(400),
            chaos: Some(ChaosConfig { corrupt: 0.2, ..ChaosConfig::default() }),
            ..ClusterConfig::default()
        },
        schedule,
        // A tight budget so the freeze is healed well inside the run: 4
        // worst-case circulations of silence before escalating.
        watchdog: Some(WatchdogConfig { scale: 4, floor: Duration::from_millis(300) }),
        ..SupervisorConfig::default()
    };

    println!("— adversary drill: 5 nodes, corrupt-state + babble + freeze, 20% wire corruption —");
    let report =
        run_supervised_cluster(algo, algo.legitimate_anchor(0), cfg, ssr_adversary(params, SEED))
            .expect("drill completes");

    println!("{}", report.recovery.to_ascii());
    for (kind, row) in report.kinds.iter().zip(&report.recovery.rows) {
        match row.recovery {
            Some(d) => println!("  {kind}: invariant back after {d:?}"),
            None => println!("  {kind}: window ended mid-disruption (healed by a later event)"),
        }
    }

    println!("\nwatchdog escalations : {}", report.watchdog_escalations());
    println!(
        "wire damage          : {} corrupted datagrams, all rejected by the CRC-32 codec",
        report.cluster.chaos.corrupted
    );
    let max = report.recovery.histogram().max;
    println!(
        "Theorem 2 envelope   : {:?} — max measured recovery {} => {}",
        report.envelope,
        max.map_or_else(|| "n/a".into(), |d| format!("{d:?}")),
        if report.within_envelope() { "WITHIN" } else { "EXCEEDED" }
    );

    assert!(report.reconverged(), "the drill must re-converge after every adversarial event");
    assert!(report.watchdog_escalations() >= 1, "the freeze must trip the watchdog");
    println!("\nRe-converged after every adversarial event: ✓");
}
