//! The paper's motivating application, live: a ring of camera nodes (one OS
//! thread each, channels as radio links) in which at least one camera is
//! recording at every instant while the duty rotates to save energy.
//!
//! ```sh
//! cargo run --example camera_monitoring
//! ```

use std::time::Duration;

use ssrmin::runtime::camera::{dijkstra_camera_observe, CameraNetwork};
use ssrmin::runtime::RuntimeConfig;

fn main() {
    let n = 6;
    let cfg = RuntimeConfig {
        tick: Duration::from_millis(3),
        exec_delay: Duration::from_millis(2), // each camera records ≥2ms per turn
        loss: 0.05,                           // 5% simulated radio loss
        seed: 2024,
        suspicion: Duration::from_millis(200), // neighbour-failure watchdog
    };

    println!("Deploying {n} camera nodes (SSRmin over threads + channels, 5% loss)...");
    let net = CameraNetwork::new(n).expect("valid network size").with_config(cfg);
    let report = net
        .observe(Duration::from_millis(1500), Duration::from_millis(100))
        .expect("deployment runs");

    println!("\n== SSRmin camera network ==");
    println!("observed window : {:?}", report.coverage.window);
    println!("uncovered time  : {:?}", report.coverage.uncovered);
    println!("longest gap     : {:?}", report.coverage.longest_gap);
    println!("activations     : {}", report.coverage.activations);
    println!("active cameras  : {}..={}", report.coverage.min_active, report.coverage.max_active);
    println!(
        "mean duty cycle : {:.3} (ideal range 1/n={:.3} .. 2/n={:.3})",
        report.mean_duty_cycle(),
        1.0 / n as f64,
        2.0 / n as f64
    );
    for (i, d) in report.coverage.duty_cycle.iter().enumerate() {
        println!("  camera {i}: duty {:>5.1}%", d * 100.0);
    }
    assert!(report.continuous(), "mutual inclusion violated!");
    println!("Continuous observation: ✓ (no instant with all cameras off)");

    // The same deployment with plain Dijkstra mutual exclusion: the token
    // spends time "in flight" between nodes, leaving blind spots.
    let baseline =
        dijkstra_camera_observe(n, cfg, Duration::from_millis(1500), Duration::from_millis(100))
            .expect("baseline runs");
    println!("\n== Dijkstra SSToken baseline (mutual exclusion only) ==");
    println!(
        "uncovered time  : {:?}  ({} gaps, longest {:?})",
        baseline.uncovered, baseline.gaps, baseline.longest_gap
    );
    println!(
        "Blind spots while the token is in transit — exactly the failure SSRmin \
         eliminates (paper Figure 11 vs Figure 13)."
    );
}
