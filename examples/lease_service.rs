//! A token-lease service in thirty lines: one hosted tenant ring whose
//! circulating SSRmin token backs a TTL'd mutual-exclusion lease, consumed
//! by two competing application clients over real HTTP.
//!
//! The tenant host brings up a 5-node UDP ring; holding the primary token
//! at a node makes that node the grantable resource. A client that POSTs
//! `/tenants/demo/acquire` while the token sits somewhere gets a lease id;
//! everyone else gets `409` with a retry hint until the lease is released,
//! its TTL expires, or the ring hands the token on (graceful handover
//! revokes the lease — the privilege moved, so the exclusivity ground
//! truth moved with it).
//!
//! ```sh
//! cargo run --release --example lease_service
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use ssrmin::ctl::{post, CtlListener, Json};
use ssrmin::serve::{ServeHost, ServePlane, TenantSpec};

fn main() {
    let host = ServeHost::spawn();
    let spec = TenantSpec {
        nodes: 5,
        seed: 7,
        lease_ttl: Duration::from_millis(200),
        ..TenantSpec::named("demo")
    };
    host.create(spec).expect("tenant ring comes up");

    let listener = CtlListener::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let url = listener.local_addr().to_string();
    let _server = listener.serve(Arc::new(ServePlane::new(Arc::clone(&host))));
    println!("tenant `demo` serving at http://{url}");

    // Two competing clients take turns on the lease for a second each
    // round: acquire (retrying on 409), do "work", release.
    let deadline = Instant::now() + Duration::from_secs(3);
    let mut turns = [0u32; 2];
    while Instant::now() < deadline {
        for (me, turn) in turns.iter_mut().enumerate() {
            let lease = loop {
                let reply = post(&url, "/tenants/demo/acquire", &format!("client-{me}"))
                    .expect("plane answers");
                if reply.status == 200 {
                    let doc = Json::parse(&reply.body).unwrap();
                    break (
                        doc.get("lease").and_then(Json::as_u64).unwrap(),
                        doc.get("node").and_then(Json::as_u64).unwrap(),
                    );
                }
                std::thread::sleep(Duration::from_millis(5));
            };
            *turn += 1;
            println!("client-{me} holds lease {} (token at node {})", lease.0, lease.1);
            // Critical work would go here; stay well under the TTL.
            std::thread::sleep(Duration::from_millis(20));
            let _ = post(&url, "/tenants/demo/release", &lease.0.to_string());
        }
    }

    let entry = host.lookup("demo").unwrap();
    let counters = entry.lease.counters();
    println!(
        "done: client-0 took {} turns, client-1 took {}; {} grants, {} releases, \
         {} revoked by handover, {} expired",
        turns[0],
        turns[1],
        counters.grants,
        counters.releases,
        counters.revocations,
        counters.expirations
    );
    let audit = entry.audit();
    println!(
        "ring audit: privileged stayed in {}..={} over {:?} ({} violations)",
        audit.min_active, audit.max_active, audit.audited, audit.violations
    );
    host.shutdown();
}
