//! Self-stabilization under fire: corrupt a running message-passing system
//! with transient faults and watch it converge back to legitimate token
//! circulation (Lemma 9 / Theorem 4), with the zero-token guarantee holding
//! again after re-stabilization.
//!
//! ```sh
//! cargo run --example fault_injection
//! ```

use ssrmin::core::{RingParams, SsrMin};
use ssrmin::mpnet::{faults, CstSim, DelayModel, SimConfig};

fn main() {
    let params = RingParams::new(8, 10).expect("valid parameters");
    let algo = SsrMin::new(params);

    let sim_cfg = SimConfig {
        seed: 7,
        delay: DelayModel::Uniform { min: 2, max: 9 },
        loss: 0.15, // 15% of messages vanish
        timer_interval: 40,
        send_on_receipt: true,
        exec_delay: 0,
        burst: None,
    };

    // Start legitimate and coherent...
    let mut sim =
        CstSim::new(algo, algo.legitimate_anchor(0), sim_cfg).expect("valid configuration");

    // ...then hammer it: 10 random transient faults in t ∈ [500, 3000).
    let schedule = faults::random_fault_schedule(params, 10, 500, 3_000, 99);
    println!("Injecting {} transient faults:", schedule.len());
    for &(t, node, state) in &schedule {
        println!("  t={t:>5}  node {node} ← {state}");
        sim.schedule_corruption(t, node, state);
    }

    // Run past the fault window and wait for re-stabilization: the ground
    // configuration must become legitimate and stay so for 2000 ticks.
    sim.run_until(3_000);
    let recovered_at = sim
        .run_until_stably_legitimate(2_000_000, 2_000)
        .expect("SSRmin must re-stabilize (Theorem 4)");
    println!("\nRe-stabilized (stably legitimate) since t = {recovered_at}");

    // After stabilization the graceful-handover guarantee holds again.
    let t0 = sim.now();
    sim.run_until(t0 + 30_000);
    let post = sim.timeline().summary(t0).expect("non-empty window");
    println!("\nPost-recovery window of {} ticks:", post.window);
    println!("  zero-privileged time : {}", post.zero_privileged_time);
    println!("  privileged nodes     : {}..={}", post.min_privileged, post.max_privileged);
    let stats = sim.stats();
    println!(
        "\nRun stats: {} transmissions, {} lost, {} rules executed",
        stats.transmissions, stats.losses, stats.rules_executed
    );
    assert_eq!(post.zero_privileged_time, 0);
    assert!(post.min_privileged >= 1 && post.max_privileged <= 2);
    println!("\nMutual inclusion restored and maintained. ✓");
}
