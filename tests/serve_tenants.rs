//! End-to-end tests of `ssr-serve`: the multi-tenant ring host, the
//! token-lease API, and the `ssrmin load` generator.
//!
//! Acceptance for the serve subsystem:
//!
//! * a tenant running under 20% datagram loss keeps the P9 `>= 1`
//!   privileged invariant while its neighbors run clean — verified per
//!   tenant by the live (ℓ,k)-CS trace auditor, never globally;
//! * a lease is never held by two clients of the same tenant at once,
//!   across voluntary releases, TTL expirations, and revocations;
//! * `ssrmin load` completes a T=8, n=5 round printing ops/sec plus
//!   p50/p99 lease latency and writes `BENCH_serve.json`;
//! * sixteen concurrent tenants all publish per-tenant `/metrics` labels.
//!
//! Timing discipline matches the other UDP suites: assertions are about
//! eventual observation within generous deadlines, never absolute speed.

use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use ssrmin::ctl::{get, post, CtlListener, Json};
use ssrmin::serve::{first_overlap, ServeHost, ServePlane, TenantSpec};

/// Every test here runs dozens of node threads; letting them share the
/// machine makes the timing-sensitive audits flaky, so they take turns.
static HEAVY: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    HEAVY.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Bring up an in-process serve host with the given tenants behind a real
/// HTTP listener; returns (host, server guard, target address string).
fn serve(specs: Vec<TenantSpec>) -> (Arc<ServeHost>, ssrmin::ctl::CtlServer, String) {
    let host = ServeHost::spawn();
    for spec in specs {
        host.create(spec).expect("tenant comes up");
    }
    let listener = CtlListener::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let url = listener.local_addr().to_string();
    let server = listener.serve(Arc::new(ServePlane::new(Arc::clone(&host))));
    (host, server, url)
}

/// Polls `GET /tenants/{key}` until `pred` accepts the parsed document.
fn wait_tenant(url: &str, key: &str, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut last = String::new();
    while Instant::now() < deadline {
        let reply = get(url, &format!("/tenants/{key}")).expect("plane answers");
        assert_eq!(reply.status, 200, "{}", reply.body);
        let doc = Json::parse(&reply.body).expect("tenant detail is valid JSON");
        if pred(&doc) {
            return doc;
        }
        last = reply.body;
        thread::sleep(Duration::from_millis(25));
    }
    panic!("timed out waiting for {what}; last detail: {last}");
}

fn audited_us(doc: &Json) -> u64 {
    doc.get("audit").and_then(|a| a.get("audited_us")).and_then(Json::as_u64).unwrap_or(0)
}

/// Acceptance (a): one tenant takes 20% loss on every link while two
/// neighbors run clean over the same UDP transport and ctl plane. Each
/// tenant's trace audit is independent: the clean tenants must show zero
/// violating episodes, and the lossy tenant must still never drop below
/// one privileged node (P9) once its convergence envelope has passed.
#[test]
fn lossy_tenant_keeps_p9_while_neighbors_run_clean() {
    let _turn = exclusive();
    let lossy = TenantSpec { nodes: 5, loss: 0.2, seed: 11, ..TenantSpec::named("lossy") };
    let clean1 = TenantSpec { nodes: 5, seed: 12, ..TenantSpec::named("clean1") };
    let clean2 = TenantSpec { nodes: 5, seed: 13, ..TenantSpec::named("clean2") };
    let (host, _server, url) = serve(vec![lossy, clean1, clean2]);

    // Let every ring converge, pass its audit horizon, and accumulate a
    // meaningful audited window (the auditor only scores steady state).
    for name in ["lossy", "clean1", "clean2"] {
        wait_tenant(&url, name, "audited steady-state window", |doc| {
            audited_us(doc) > 1_500_000
                && doc.get("nodes_up").and_then(Json::as_u64) == Some(5)
                && doc.get("token_count_ok") == Some(&Json::Bool(true))
        });
    }

    for name in ["clean1", "clean2"] {
        let doc = wait_tenant(&url, name, "clean audit", |_| true);
        let audit = doc.get("audit").expect("audit block");
        assert_eq!(
            audit.get("violations").and_then(Json::as_u64),
            Some(0),
            "clean tenant {name} must have no violating episodes: {doc:?}"
        );
        assert!(
            audit.get("min_active").and_then(Json::as_u64).is_some_and(|m| m >= 1),
            "clean tenant {name} must keep P9: {doc:?}"
        );
    }
    let doc = wait_tenant(&url, "lossy", "lossy audit", |_| true);
    let audit = doc.get("audit").expect("audit block");
    assert!(
        audit.get("min_active").and_then(Json::as_u64).is_some_and(|m| m >= 1),
        "the lossy tenant must keep >= 1 privileged through 20% loss: {doc:?}"
    );

    // The same isolation shows up in the Prometheus exposition: every
    // series of the shared families carries a tenant label.
    let reply = get(&url, "/metrics").unwrap();
    assert_eq!(reply.status, 200);
    for name in ["lossy", "clean1", "clean2"] {
        assert!(
            reply.body.contains(&format!("ssr_cs_violations_total{{tenant=\"{name}\"}}")),
            "per-tenant violation counter for {name}:\n{}",
            reply.body
        );
    }
    assert!(
        reply.body.contains("ssr_node_sends_total{tenant=\"lossy\",node=\"0\"}"),
        "{}",
        reply.body
    );
    host.shutdown();
}

/// Acceptance (b): concurrent clients of one tenant hammer the lease API
/// through real HTTP — some release voluntarily, some sit on the lease
/// until the TTL revokes it. Exclusivity is judged from the manager's own
/// grant history: no two lease windows of the tenant may ever overlap.
#[test]
fn a_lease_is_never_held_by_two_clients_at_once() {
    let _turn = exclusive();
    let spec = TenantSpec {
        nodes: 3,
        seed: 21,
        lease_ttl: Duration::from_millis(30),
        ..TenantSpec::named("leasehog")
    };
    let (host, _server, url) = serve(vec![spec]);

    // Wait for a token holder so acquires can be granted at all.
    wait_tenant(&url, "leasehog", "a primary token holder", |doc| {
        doc.get("holder").and_then(Json::as_u64).is_some()
    });

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|c| {
            let url = url.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let me = format!("client-{c}");
                let mut granted = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match post(&url, "/tenants/leasehog/acquire", &me) {
                        Ok(reply) if reply.status == 200 => {
                            granted += 1;
                            let id = Json::parse(&reply.body)
                                .ok()
                                .and_then(|d| d.get("lease").and_then(Json::as_u64))
                                .expect("grant carries the lease id");
                            if c % 2 == 0 {
                                // Polite client: release promptly.
                                let _ = post(&url, "/tenants/leasehog/release", &id.to_string());
                            } else {
                                // Hog: sit past the TTL and let the
                                // manager expire the lease.
                                thread::sleep(Duration::from_millis(45));
                            }
                        }
                        _ => thread::sleep(Duration::from_millis(2)),
                    }
                }
                granted
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(2500));
    stop.store(true, Ordering::Relaxed);
    let granted: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(granted >= 8, "the clients must actually obtain leases, got {granted}");

    let entry = host.lookup("leasehog").unwrap();
    let history = entry.lease.history();
    assert!(history.len() as u64 >= granted, "every grant leaves a history window");
    if let Some((a, b)) = first_overlap(&history) {
        panic!("two clients held the lease at once: {a:?} overlaps {b:?}");
    }
    // The hogs never release: their leases end involuntarily — by TTL
    // expiry, or earlier by revocation when the ring hands the token on
    // (on a fast loopback ring the handover usually wins the race).
    let counters = entry.lease.counters();
    assert!(
        counters.expirations + counters.revocations > 0,
        "the hogs' leases must end involuntarily: {counters:?}"
    );
    assert!(counters.releases > 0, "the polite clients must have released: {counters:?}");
    host.shutdown();
}

/// Acceptance (c): the load generator completes a full T=8, n=5 round as a
/// real subprocess, prints the ops/sec scaling row with p50/p99 lease
/// latency, and writes a parseable `BENCH_serve.json`.
#[test]
fn load_subcommand_prints_curves_and_writes_bench() {
    let _turn = exclusive();
    let out = std::env::temp_dir().join(format!("BENCH_serve_{}.json", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_ssrmin"))
        .args(["load", "--tenants", "8", "--nodes", "5", "--ms", "1200"])
        .args(["--out", out.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "load must exit cleanly:\n{stdout}\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("tenants=8"), "{stdout}");
    assert!(stdout.contains("ops/sec="), "{stdout}");
    assert!(stdout.contains("p50="), "{stdout}");
    assert!(stdout.contains("p99="), "{stdout}");
    assert!(stdout.contains("cs_violations=0"), "{stdout}");

    let body = std::fs::read_to_string(&out).expect("bench file written");
    let doc = Json::parse(&body).expect("bench file is valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("ssr-serve-load/v1"), "{body}");
    let rows = doc.get("rows").and_then(Json::as_arr).expect("rows array");
    assert_eq!(rows.len(), 1, "{body}");
    assert_eq!(rows[0].get("tenants").and_then(Json::as_u64), Some(8), "{body}");
    assert_eq!(rows[0].get("nodes").and_then(Json::as_u64), Some(5), "{body}");
    assert!(rows[0].get("ops").and_then(Json::as_u64).is_some_and(|o| o > 0), "{body}");
    assert!(rows[0].get("ops_per_sec").and_then(Json::as_f64).is_some_and(|o| o > 0.0), "{body}");
    assert_eq!(rows[0].get("cs_violations").and_then(Json::as_u64), Some(0), "{body}");
    let _ = std::fs::remove_file(&out);
}

/// Acceptance (K renegotiation): a tenant spawned at the minimal K = n + 1
/// has zero growth headroom — `POST /nodes` is refused with an actionable
/// 422 — until `POST /k` renegotiates the bound upward over live traffic,
/// after which the same add succeeds and the detail document and metrics
/// reflect the renegotiation.
#[test]
fn k_capacity_is_renegotiated_over_http() {
    let _turn = exclusive();
    // k = 0 resolves to the minimal legal bound: K = n + 1 = 4.
    let spec = TenantSpec { nodes: 3, seed: 31, ..TenantSpec::named("kgrow") };
    let (host, _server, url) = serve(vec![spec]);
    wait_tenant(&url, "kgrow", "tenant circulating", |doc| {
        doc.get("nodes_up").and_then(Json::as_u64) == Some(3)
            && doc.get("token_count_ok") == Some(&Json::Bool(true))
    });

    // n + 1 == K: the add must be refused and the error must say how to
    // get out of the corner.
    let reply = post(&url, "/tenants/kgrow/nodes", "").unwrap();
    assert_eq!(reply.status, 422, "{}", reply.body);
    assert!(reply.body.contains("K capacity"), "{}", reply.body);
    assert!(reply.body.contains("larger k"), "{}", reply.body);

    // Garbage and non-increasing bounds are rejected typed; a real raise
    // goes through the two-phase renegotiation and reports it.
    let reply = post(&url, "/tenants/kgrow/k", "four").unwrap();
    assert_eq!(reply.status, 400, "{}", reply.body);
    let reply = post(&url, "/tenants/kgrow/k", "4").unwrap();
    assert_eq!(reply.status, 422, "{}", reply.body);
    let reply = post(&url, "/tenants/kgrow/k", "8").unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    let doc = Json::parse(&reply.body).unwrap();
    assert_eq!(doc.get("k").and_then(Json::as_u64), Some(8), "{}", reply.body);
    assert_eq!(doc.get("renegotiations").and_then(Json::as_u64), Some(1), "{}", reply.body);

    // The refused add now succeeds and the grown ring re-converges.
    let reply = post(&url, "/tenants/kgrow/nodes", "").unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    let doc = Json::parse(&reply.body).unwrap();
    assert_eq!(doc.get("n").and_then(Json::as_u64), Some(4), "{}", reply.body);
    wait_tenant(&url, "kgrow", "grown ring circulating", |doc| {
        doc.get("nodes_up").and_then(Json::as_u64) == Some(4)
            && doc.get("k").and_then(Json::as_u64) == Some(8)
            && doc.get("k_renegotiations").and_then(Json::as_u64) == Some(1)
            && doc.get("token_count_ok") == Some(&Json::Bool(true))
    });

    let reply = get(&url, "/metrics").unwrap();
    assert_eq!(reply.status, 200);
    assert!(reply.body.contains("ssr_k_renegotiations_total{tenant=\"kgrow\"}"), "{}", reply.body);
    host.shutdown();
}

/// Acceptance (batched renegotiation): `POST /k` with `k=N grow=M`
/// renegotiates the bound AND adds M nodes under one parked lease window —
/// each batched add is a park window saved, counted in the lease document
/// and in `ssr_lease_park_saved_total`, and the partition gauges report an
/// intact single-segment ring with zero merges throughout.
#[test]
fn batched_k_and_grow_park_the_lease_once() {
    let _turn = exclusive();
    // k = 0 resolves to the minimal K = n + 1 = 4: no growth headroom.
    let spec = TenantSpec { nodes: 3, seed: 43, ..TenantSpec::named("batch") };
    let (host, _server, url) = serve(vec![spec]);
    wait_tenant(&url, "batch", "tenant circulating", |doc| {
        doc.get("nodes_up").and_then(Json::as_u64) == Some(3)
            && doc.get("token_count_ok") == Some(&Json::Bool(true))
    });

    // Malformed batched bodies are rejected typed, before any parking.
    let reply = post(&url, "/tenants/batch/k", "k=8 grow=two").unwrap();
    assert_eq!(reply.status, 400, "{}", reply.body);
    let reply = post(&url, "/tenants/batch/k", "grow=2").unwrap();
    assert_eq!(reply.status, 400, "{}", reply.body);

    // One request: renegotiate to K = 8 and grow by two nodes. Both adds
    // ride the renegotiation's park window instead of opening their own.
    let reply = post(&url, "/tenants/batch/k", "k=8 grow=2").unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    let doc = Json::parse(&reply.body).unwrap();
    assert_eq!(doc.get("k").and_then(Json::as_u64), Some(8), "{}", reply.body);
    assert_eq!(doc.get("n").and_then(Json::as_u64), Some(5), "{}", reply.body);
    assert_eq!(doc.get("renegotiations").and_then(Json::as_u64), Some(1), "{}", reply.body);
    assert_eq!(doc.get("park_windows_saved").and_then(Json::as_u64), Some(2), "{}", reply.body);
    let grown = doc.get("grown").and_then(Json::as_arr).expect("grown array");
    assert_eq!(grown.len(), 2, "{}", reply.body);

    let doc = wait_tenant(&url, "batch", "grown ring circulating", |doc| {
        doc.get("nodes_up").and_then(Json::as_u64) == Some(5)
            && doc.get("token_count_ok") == Some(&Json::Bool(true))
    });
    let lease = doc.get("lease").expect("lease doc");
    assert_eq!(lease.get("park_saves").and_then(Json::as_u64), Some(2), "{doc:?}");
    assert_eq!(doc.get("fallback_segments").and_then(Json::as_u64), Some(1), "{doc:?}");
    assert_eq!(doc.get("walker_merges").and_then(Json::as_u64), Some(0), "{doc:?}");

    let reply = get(&url, "/metrics").unwrap();
    assert_eq!(reply.status, 200);
    assert!(
        reply.body.contains("ssr_lease_park_saved_total{tenant=\"batch\"} 2"),
        "{}",
        reply.body
    );
    assert!(reply.body.contains("ssr_fallback_segments{tenant=\"batch\"} 1"), "{}", reply.body);
    assert!(reply.body.contains("ssr_walker_merges_total{tenant=\"batch\"} 0"), "{}", reply.body);
    host.shutdown();
}

/// Acceptance (lease survival across re-splice): while the lease authority
/// is parked — exactly what every membership route does around its splice —
/// acquires answer 503 with a retry-after hint, the park surfaces in the
/// tenant detail and in `ssr_lease_parked_total`, and acquires flow again
/// once the authority is unparked against the live holder. The park is
/// driven through the host handle because the ctl server answers requests
/// inline on one thread, so a real mid-splice HTTP acquire cannot be raced
/// from a test.
#[test]
fn mid_splice_acquires_get_503_with_retry_after() {
    let _turn = exclusive();
    let spec = TenantSpec {
        nodes: 3,
        seed: 41,
        lease_ttl: Duration::from_secs(2),
        ..TenantSpec::named("parker")
    };
    let (host, _server, url) = serve(vec![spec]);
    wait_tenant(&url, "parker", "a primary token holder", |doc| {
        doc.get("holder").and_then(Json::as_u64).is_some()
    });

    let entry = host.lookup("parker").unwrap();
    entry.lease.park(Duration::from_millis(300));

    let reply = post(&url, "/tenants/parker/acquire", "impatient").unwrap();
    assert_eq!(reply.status, 503, "{}", reply.body);
    let doc = Json::parse(&reply.body).expect("503 carries a JSON hint");
    assert!(
        doc.get("retry_in_ms").and_then(Json::as_u64).is_some_and(|ms| ms > 0),
        "{}",
        reply.body
    );

    let doc = wait_tenant(&url, "parker", "the park surfacing", |_| true);
    let lease = doc.get("lease").expect("lease block");
    assert_eq!(lease.get("parked_now"), Some(&Json::Bool(true)), "{doc:?}");
    assert!(
        lease.get("parked").and_then(Json::as_u64).is_some_and(|p| p >= 1),
        "refused acquires must count as park events: {doc:?}"
    );
    let reply = get(&url, "/metrics").unwrap();
    assert_eq!(reply.status, 200);
    assert!(reply.body.contains("ssr_lease_parked_total{tenant=\"parker\"}"), "{}", reply.body);

    // Splice done: unpark against the live holder; acquires flow again.
    let holder = entry.ring.lock().primary_holder();
    entry.lease.unpark(holder);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reply = post(&url, "/tenants/parker/acquire", "patient").unwrap();
        if reply.status == 200 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "acquire never succeeded after unpark: {} {}",
            reply.status,
            reply.body
        );
        thread::sleep(Duration::from_millis(5));
    }
    host.shutdown();
}

/// Acceptance (tentpole scale): sixteen concurrent tenants on one host,
/// every one of them scrapeable with its own label set via `/metrics` and
/// listed in the registry.
#[test]
fn sixteen_tenants_publish_per_tenant_metrics() {
    let _turn = exclusive();
    let specs: Vec<TenantSpec> = (1..=16)
        .map(|i| TenantSpec {
            nodes: 3,
            seed: 100 + i as u64,
            ..TenantSpec::named(format!("m{i}"))
        })
        .collect();
    let (host, _server, url) = serve(specs);

    let reply = get(&url, "/tenants").unwrap();
    assert_eq!(reply.status, 200);
    let doc = Json::parse(&reply.body).unwrap();
    assert_eq!(
        doc.get("tenants").and_then(Json::as_arr).map(<[Json]>::len),
        Some(16),
        "{}",
        reply.body
    );

    // Every tenant circulates: all nodes up, invariant satisfied.
    for i in 1..=16 {
        wait_tenant(&url, &format!("m{i}"), "tenant circulating", |doc| {
            doc.get("nodes_up").and_then(Json::as_u64) == Some(3)
                && doc.get("token_count_ok") == Some(&Json::Bool(true))
        });
    }

    let reply = get(&url, "/metrics").unwrap();
    assert_eq!(reply.status, 200);
    for i in 1..=16 {
        assert!(
            reply.body.contains(&format!("ssr_tenant_privileged{{tenant=\"m{i}\"}}")),
            "per-tenant gauge for m{i}:\n{}",
            reply.body
        );
    }
    host.shutdown();
}
