//! Netem over real sockets, and the UDP→DES replay bridge: the loopback
//! cluster keeps circulating tokens while every link is paced by a netem
//! profile (rate + latency + finite buffer in the chaos proxy), buffer
//! drops are accounted apart from seeded chaos loss, and a cluster's final
//! replica states seed a DES checkpoint whose restore replays the
//! continuation byte-identically — the small-UDP-cluster half of the
//! checkpoint/replay property.

use std::time::Duration;

use ssrmin::core::{RingParams, SsrMin};
use ssrmin::mpnet::{CstSim, SimConfig};
use ssrmin::net::{run_cluster, ChaosConfig, ClusterConfig};
use ssrmin::netem::{DirProfile, Jitter, LinkProfile};
use ssrmin::RingAlgorithm;

fn params(n: usize) -> RingParams {
    RingParams::new(n, n as u32 + 1).unwrap()
}

/// Acceptance: a 5-node UDP ring under `lan` pacing (every datagram pays
/// serialization + 100 µs propagation through the proxy's netem stage)
/// still satisfies P9 and the 1..=2-privileged invariant after warmup.
#[test]
fn udp_ring_circulates_under_lan_pacing() {
    let lan = LinkProfile::builtin("lan").unwrap();
    let algo = SsrMin::new(params(5));
    let cfg = ClusterConfig {
        seed: 11,
        duration: Duration::from_millis(1000),
        warmup: Duration::from_millis(500),
        chaos: Some(ChaosConfig {
            netem: Some(lan.forward),
            netem_reverse: Some(lan.reverse),
            ..ChaosConfig::default()
        }),
        ..ClusterConfig::default()
    };
    let report = run_cluster(algo, algo.legitimate_anchor(0), cfg).unwrap();

    assert!(
        report.continuous(),
        "zero-token instants under lan pacing: uncovered {:?}, longest gap {:?}",
        report.coverage.uncovered,
        report.coverage.longest_gap
    );
    assert!(
        (1..=2).contains(&report.coverage.min_active) && report.coverage.max_active <= 2,
        "token-count invariant violated under pacing: {}..={} privileged",
        report.coverage.min_active,
        report.coverage.max_active
    );
    assert!(report.coverage.activations >= 5, "only {} handovers", report.coverage.activations);
    assert!(report.chaos.forwarded > 0, "netem pacing forwarded nothing");
    // lan has no random loss: anything missing must be congestion, and a
    // token ring's self-clocked load never overflows a 128-frame buffer.
    assert_eq!(report.chaos.dropped, 0, "lan profile must not random-drop");
    algo.validate_config(&report.final_states).unwrap();
}

/// A deliberately starved profile (9.6 kbit/s, 1-frame buffer) forces
/// tail drops at the proxy, and they land in `netem_dropped` — not in the
/// seeded-loss counter a soak verdict attributes to chaos.
#[test]
fn buffer_drops_are_not_chaos_loss_on_the_wire() {
    let crawl = DirProfile {
        rate_bps: 9_600,
        latency_us: 2_000,
        jitter: Jitter::None,
        buffer_frames: 1,
        loss: 0.0,
    };
    let algo = SsrMin::new(params(3));
    let cfg = ClusterConfig {
        seed: 5,
        duration: Duration::from_millis(700),
        warmup: Duration::from_millis(350),
        tick: Duration::from_millis(5),
        chaos: Some(ChaosConfig { netem: Some(crawl), ..ChaosConfig::default() }),
        ..ClusterConfig::default()
    };
    let report = run_cluster(algo, algo.legitimate_anchor(0), cfg).unwrap();
    assert!(
        report.chaos.netem_dropped > 0,
        "a 9.6 kbit/s 1-frame link must tail-drop a 5 ms-tick ring's gossip"
    );
    assert_eq!(
        report.chaos.dropped, 0,
        "congestion must be accounted as netem buffer drops, not random loss"
    );
}

/// The UDP→DES bridge of the replay property: a real cluster's final
/// replica states (the same snapshot codec daemons persist) seed a DES run
/// under `wan` pacing; a mid-run checkpoint, restored, replays the
/// continuation transcript byte-for-byte.
#[test]
fn udp_cluster_states_checkpoint_and_replay_in_the_des() {
    let p = params(5);
    let algo = SsrMin::new(p);
    let cluster = ClusterConfig {
        seed: 23,
        duration: Duration::from_millis(700),
        warmup: Duration::from_millis(350),
        ..ClusterConfig::default()
    };
    let report = run_cluster(algo, algo.legitimate_anchor(0), cluster).unwrap();
    algo.validate_config(&report.final_states).unwrap();

    // Seed the DES with the cluster's replica states and pace it with wan.
    let wan = LinkProfile::builtin("wan").unwrap();
    let cfg = SimConfig { seed: 23, timer_interval: 20_000, ..SimConfig::default() };
    let mut original = CstSim::new(algo, report.final_states, cfg).unwrap();
    original.set_netem(&wan, 23);
    original.run_until(1_000_000);
    let bytes = original.checkpoint(b"udp-bridge");
    original.enable_transcript(4096);
    original.run_until(3_000_000);

    let (mut replay, meta) = CstSim::restore(SsrMin::new(p), &bytes).unwrap();
    assert_eq!(meta, b"udp-bridge");
    replay.enable_transcript(4096);
    replay.run_until(3_000_000);

    assert_eq!(
        original.transcript().unwrap().render(),
        replay.transcript().unwrap().render(),
        "restored DES diverged from the original continuation"
    );
    assert_eq!(original.stats(), replay.stats());
    assert_eq!(original.ground_config(), replay.ground_config());
}
