//! End-to-end membership-churn tests of the live UDP ring: real sockets,
//! real threads, join/leave re-splices performed while tokens circulate —
//! a 5 → 9 → 4-node live resize under 20% chaos loss, plus back-to-back
//! membership events and the seeded churn-schedule driver.
//!
//! Timing discipline matches `tests/udp_cluster.rs`: assertions are about
//! *eventual* re-convergence within generous windows — four Theorem 2
//! envelopes for the post-event ring size — never about absolute speed.

use std::time::Duration;

use ssrmin::core::RingParams;
use ssrmin::mpnet::{ChurnPlan, FaultSchedule};
use ssrmin::net::{
    convergence_envelope, ChaosConfig, MembershipConfig, MembershipError, RingMembership,
};

const TICK: Duration = Duration::from_millis(4);

fn config(seed: u64, loss: f64) -> MembershipConfig {
    MembershipConfig {
        tick: TICK,
        seed,
        chaos: (loss > 0.0).then(|| ChaosConfig { seed, loss, ..ChaosConfig::default() }),
        ..MembershipConfig::default()
    }
}

/// A generous re-convergence window for the current ring size: four
/// Theorem 2 envelopes, floored for loaded CI hosts.
fn settle(ring: &RingMembership) -> Duration {
    (convergence_envelope(ring.n(), TICK) * 4).max(Duration::from_secs(2))
}

fn wait(ring: &RingMembership, what: &str) -> Duration {
    ring.wait_reconverged(settle(ring))
        .unwrap_or_else(|| panic!("{what}: ring (n = {}) did not re-converge", ring.n()))
}

/// Acceptance: a live 5-node UDP ring under 20% chaos loss grows to 9
/// members one join at a time, then shrinks to 4 one leave at a time, and
/// re-converges to the 1..=2-privileged band after every single re-splice.
#[test]
fn live_resize_5_to_9_to_4_under_loss_reconverges_every_step() {
    let params = RingParams::new(5, 12).unwrap(); // K = 12 > 9 = max ring size
    let mut ring = RingMembership::spawn(params, config(29, 0.2)).unwrap();
    wait(&ring, "initial convergence");

    for expect in 6..=9 {
        let slot = ring.join().unwrap();
        assert_eq!(slot, expect - 1, "joins append at the tail slot");
        assert_eq!(ring.n(), expect);
        wait(&ring, "after join");
    }
    assert_eq!(ring.capacity_remaining(), 2, "K = 12 leaves n < 11");

    // Shrink 9 -> 4, alternating which ring position leaves (the anchor at
    // position 0 never does).
    for (expect, position) in [(8, 4), (7, 1), (6, 5), (5, 2), (4, 1)] {
        ring.leave(position).unwrap();
        assert_eq!(ring.n(), expect);
        wait(&ring, "after leave");
    }

    assert_eq!(ring.resplices(), 9, "each join and each leave is one re-splice");
    assert_eq!(ring.ring_order()[0], 0, "the anchor keeps ring position 0");
    ring.stop();
}

/// Acceptance: back-to-back membership events — applied with no settling
/// gap between them — are absorbed too; convergence is only demanded after
/// the burst.
#[test]
fn back_to_back_membership_events_are_absorbed() {
    let params = RingParams::new(4, 9).unwrap();
    let mut ring = RingMembership::spawn(params, config(31, 0.0)).unwrap();
    wait(&ring, "initial convergence");

    // join + join + leave + join with zero think time.
    ring.join().unwrap();
    ring.join().unwrap();
    ring.leave(2).unwrap();
    ring.join().unwrap();
    assert_eq!(ring.n(), 6);
    wait(&ring, "after the membership burst");

    assert_eq!(ring.resplices(), 4);
    ring.stop();
}

/// Acceptance: a seeded churn schedule from the shared fault model drives
/// the live UDP ring through `apply_membership`, and every event
/// re-converges — the same schedule the DES consumes, replayed on sockets.
#[test]
fn seeded_churn_schedule_replays_on_the_live_ring() {
    let n0 = 4;
    let plan = ChurnPlan { rate: 3.0, window: (0, 2_000), min_n: 3, max_n: 7 };
    let schedule = FaultSchedule::churn(n0, &plan, 57).unwrap();
    assert!(!schedule.is_empty(), "seed 57 must draw churn events");

    let params = RingParams::new(n0, 9).unwrap(); // K = 9 > 7 = max_n
    let mut ring = RingMembership::spawn(params, config(57, 0.05)).unwrap();
    wait(&ring, "initial convergence");

    for ev in schedule.events() {
        ring.apply_membership(&ev.kind).unwrap_or_else(|e| panic!("apply '{}': {e}", ev.kind));
        wait(&ring, "after scheduled event");
    }
    assert_eq!(ring.resplices() as usize, schedule.events().len());
    assert!((3..=7).contains(&ring.n()), "ring stayed inside the churn band");
    ring.stop();
}

/// Acceptance: K renegotiation composes with churn under loss. A ring
/// spawned with minimal headroom churns through joins and leaves under 10%
/// datagram loss, hits its K ceiling, renegotiates the bound upward live,
/// and keeps absorbing churn past the old ceiling — re-converging after
/// every single re-splice.
#[test]
fn k_renegotiation_under_churn_and_loss() {
    let n0 = 4;
    let params = RingParams::new(n0, 6).unwrap(); // room for exactly one join
    let mut ring = RingMembership::spawn(params, config(61, 0.1)).unwrap();
    wait(&ring, "initial convergence");

    ring.join().unwrap();
    wait(&ring, "after the first join");
    let err = ring.join().expect_err("K = 6 cannot admit a sixth member");
    assert!(matches!(err, MembershipError::AtCapacity { .. }), "got: {err}");

    assert_eq!(ring.renegotiate_k(12).unwrap(), 12);
    wait(&ring, "after the K renegotiation");

    // Churn past the old ceiling: grow to 7, shrink back to 5, all under
    // the same 10% loss.
    for _ in 0..2 {
        ring.join().unwrap();
        wait(&ring, "join past the old K");
    }
    assert_eq!(ring.n(), 7);
    for _ in 0..2 {
        ring.leave(1).unwrap();
        wait(&ring, "leave after the renegotiation");
    }
    assert_eq!(ring.n(), 5);
    assert_eq!(ring.k_renegotiations(), 1);
    assert_eq!(ring.drain_timeouts(), 0, "graceful leaves must drain in time");
    ring.stop();
}

/// The CLI front-end: `ssrmin churn` runs a short seeded soak, reports the
/// per-event reconvergence curve, and writes the benchmark JSON.
#[test]
fn churn_cli_reports_and_writes_bench_json() {
    let dir = std::env::temp_dir().join(format!("ssrmin-churn-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("BENCH_churn.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ssrmin"))
        .args([
            "churn",
            "--nodes",
            "4",
            "--ms",
            "1500",
            "--rate",
            "3",
            "--seed",
            "5",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("churn soak: 4 nodes"), "{stdout}");
    assert!(stdout.contains("envelope_violations=0"), "{stdout}");
    let json = std::fs::read_to_string(&out_path).unwrap();
    assert!(json.contains("\"schema\":\"ssrmin-churn/v1\""), "{json}");
    assert!(json.contains("\"curve\""), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}
