//! End-to-end fault-injection tests of the supervised UDP cluster: real
//! sockets, real threads, scheduled crashes/restarts and link partitions —
//! re-stabilization observed on wall clocks.
//!
//! Timing discipline matches `tests/udp_cluster.rs`: assertions are about
//! *eventual* re-convergence within generous windows, never about absolute
//! speed, so a loaded single-core CI host does not flake them.

use std::time::Duration;

use ssrmin::core::{RingParams, SsrMin};
use ssrmin::mpnet::{FaultKind, FaultPlan, FaultSchedule, RestartMode};
use ssrmin::net::{
    run_supervised_cluster, ssr_amnesia, ChaosConfig, ClusterConfig, RecoveryReport,
    SupervisorConfig,
};

fn params(n: usize) -> RingParams {
    RingParams::new(n, n as u32 + 1).unwrap()
}

fn sup(seed: u64, ms: u64, schedule: FaultSchedule) -> SupervisorConfig {
    SupervisorConfig {
        cluster: ClusterConfig {
            seed,
            duration: Duration::from_millis(ms),
            warmup: Duration::from_millis(ms / 2),
            ..ClusterConfig::default()
        },
        schedule,
        ..SupervisorConfig::default()
    }
}

/// Acceptance: a crashed node restarted with *amnesia* (arbitrary state and
/// caches) re-converges — the ring absorbs a fresh adversarial state while
/// running.
#[test]
fn crash_with_amnesia_restart_reconverges() {
    let algo = SsrMin::new(params(4));
    let schedule = FaultSchedule::new().crash_restart(1, RestartMode::Amnesia, 400, 550);
    let report = run_supervised_cluster(
        algo,
        algo.legitimate_anchor(0),
        sup(7, 1500, schedule),
        ssr_amnesia(algo.params(), 7),
    )
    .unwrap();

    assert_eq!(report.restarts.len(), 1);
    assert_eq!(report.restarts[0].mode, RestartMode::Amnesia);
    assert!(report.restarts[0].degraded.is_none());
    assert_eq!(report.panics, 0);
    // The restart's recovery window (restart .. run end) must re-establish
    // the token-count invariant.
    assert!(
        report.reconverged(),
        "ring did not re-converge after restart: {}",
        report.recovery.to_ascii()
    );
    // Tokens kept moving after the fault: the run has plenty of handovers.
    assert!(
        report.cluster.coverage.activations >= 10,
        "token stalled: {} activations",
        report.cluster.coverage.activations
    );
    // Legitimate periods never exceed two privileged nodes.
    assert!(report.cluster.coverage.max_active <= 2);
}

/// Acceptance: a crashed node restarted from its persisted snapshot comes
/// back with the state it held at the crash and re-converges.
#[test]
fn crash_with_snapshot_restore_reconverges() {
    let algo = SsrMin::new(params(4));
    let schedule = FaultSchedule::new().crash_restart(2, RestartMode::Snapshot, 400, 550);
    let report = run_supervised_cluster(
        algo,
        algo.legitimate_anchor(0),
        sup(11, 1500, schedule),
        ssr_amnesia(algo.params(), 11),
    )
    .unwrap();

    assert_eq!(report.restarts.len(), 1);
    assert_eq!(report.restarts[0].mode, RestartMode::Snapshot);
    assert!(
        report.restarts[0].degraded.is_none(),
        "snapshot restore must succeed, got {:?}",
        report.restarts[0].degraded
    );
    assert!(report.reconverged(), "{}", report.recovery.to_ascii());
    assert!(report.cluster.coverage.max_active <= 2);
}

/// Acceptance: a *corrupt* snapshot is detected (CRC/magic checks), the
/// restart degrades to amnesia, and the run completes and re-converges —
/// corruption is never fatal.
#[test]
fn corrupt_snapshot_degrades_to_amnesia_without_aborting() {
    let algo = SsrMin::new(params(4));
    let schedule = FaultSchedule::new()
        .with(400, FaultKind::Crash { node: 1, restart: RestartMode::Snapshot })
        .with(460, FaultKind::CorruptSnapshot { node: 1 })
        .with(550, FaultKind::Restart { node: 1 });
    let report = run_supervised_cluster(
        algo,
        algo.legitimate_anchor(0),
        sup(13, 1500, schedule),
        ssr_amnesia(algo.params(), 13),
    )
    .unwrap();

    assert_eq!(report.restarts.len(), 1);
    assert_eq!(report.restarts[0].mode, RestartMode::Snapshot, "the schedule asked for snapshot");
    assert!(
        report.restarts[0].degraded.is_some(),
        "corrupt snapshot must be detected and degrade to amnesia"
    );
    assert_eq!(report.degraded_restarts(), 1);
    assert!(report.reconverged(), "{}", report.recovery.to_ascii());
}

/// Acceptance: a partition window on a directed link actually blocks
/// datagrams (counted separately from chaos loss), and after the heal the
/// ring re-converges.
#[test]
fn partition_window_blocks_then_heals() {
    let algo = SsrMin::new(params(4));
    let schedule = FaultSchedule::new().partition_window(0, 1, 350, 700);
    let report = run_supervised_cluster(
        algo,
        algo.legitimate_anchor(0),
        sup(17, 1400, schedule),
        ssr_amnesia(algo.params(), 17),
    )
    .unwrap();

    assert!(report.cluster.chaos.blocked > 0, "the partitioned link must have swallowed datagrams");
    assert_eq!(report.cluster.chaos.dropped, 0, "no chaos loss was configured");
    assert!(report.reconverged(), "{}", report.recovery.to_ascii());
    // Both fault rows are reported with measured windows.
    assert_eq!(report.recovery.rows.len(), 2);
    assert!(report.recovery.rows.iter().all(|r| !r.window.is_zero()));
}

/// Acceptance: a compound seeded soak — crashes in both modes plus a
/// partition, *on top of* background chaos loss — re-converges after every
/// restart and heal, and every fault event gets a recovery row.
#[test]
fn compound_soak_under_chaos_reconverges_after_every_fault() {
    let algo = SsrMin::new(params(5));
    let plan = FaultPlan {
        crashes: 2,
        partitions: 1,
        window: (400, 1100),
        downtime: (80, 150),
        partition_len: (100, 200),
        snapshot_ratio: 0.5,
        ..FaultPlan::default()
    };
    let schedule = FaultSchedule::random(5, &plan, 23);
    let n_events = schedule.len();
    assert!(n_events >= 4, "plan should generate crash+restart pairs and a partition window");

    let mut cfg = sup(23, 2200, schedule);
    cfg.cluster.chaos = Some(ChaosConfig { loss: 0.05, ..ChaosConfig::default() });
    let report = run_supervised_cluster(
        algo,
        algo.legitimate_anchor(0),
        cfg,
        ssr_amnesia(algo.params(), 23),
    )
    .unwrap();

    assert_eq!(report.recovery.rows.len(), n_events, "every fault event gets a recovery row");
    assert_eq!(report.kinds.len(), n_events);
    assert!(
        report.reconverged(),
        "ring failed to re-converge after some fault:\n{}",
        report.recovery.to_ascii()
    );
    assert!(report.cluster.chaos.dropped > 0, "background chaos must have been active");
    // The recovery report renders: CSV header + one row per event, and the
    // histogram summarises without panicking.
    let csv = report.recovery.to_csv();
    assert_eq!(csv.lines().next(), Some(RecoveryReport::CSV_HEADER));
    assert_eq!(csv.lines().count(), n_events + 1);
    let hist = report.recovery.histogram();
    assert_eq!(hist.recovered + hist.unrecovered, n_events);
}

/// Determinism of the schedule layer end-to-end: the same seed gives the
/// same fault script, so two soak configs built alike inject identical
/// fault sequences (wall-clock recovery times differ, the script does not).
#[test]
fn equal_seeds_inject_identical_fault_scripts() {
    let plan = FaultPlan::default();
    let a = FaultSchedule::random(5, &plan, 42);
    let b = FaultSchedule::random(5, &plan, 42);
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

/// The CLI front-end: `ssrmin soak` runs a short schedule, reports recovery
/// per fault event, and `--csv` emits exactly the recovery table.
#[test]
fn soak_cli_reports_and_emits_csv() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ssrmin"))
        .args([
            "soak",
            "--nodes",
            "4",
            "--ms",
            "1200",
            "--crashes",
            "1",
            "--partitions",
            "1",
            "--seed",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fault soak: 4 nodes"), "{stdout}");
    assert!(stdout.contains("re-converged after every restoring fault"), "{stdout}");
    assert!(stdout.contains("recovery:"), "{stdout}");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ssrmin"))
        .args([
            "soak",
            "--nodes",
            "4",
            "--ms",
            "1000",
            "--crashes",
            "1",
            "--partitions",
            "0",
            "--seed",
            "3",
            "--mode",
            "snapshot",
            "--csv",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = stdout.lines();
    assert_eq!(lines.next(), Some(RecoveryReport::CSV_HEADER), "{stdout}");
    assert!(lines.count() >= 2, "one CSV row per fault event:\n{stdout}");
}
