//! End-to-end partition tests of the live UDP ring: multiple simultaneous
//! crash windows splitting the ring into several live arcs, one segment
//! walker granting per arc, staggered heals exercising the merge-on-heal
//! protocol (lower-anchor walker survives, the other retires under a
//! quiesced hand-over), and the exclusivity audit across the whole
//! split/merge interleaving.
//!
//! Every test binds real sockets and spawns a thread per member, and the
//! walker timing assertions assume the walker thread is scheduled at its
//! step cadence — so the tests take turns through a shared mutex (CI runs
//! the suite with `--test-threads=1` as well, belt and braces).

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use ssrmin::core::RingParams;
use ssrmin::mpnet::GrantMode;
use ssrmin::net::{convergence_envelope, FallbackConfig, MembershipConfig, RingMembership};

use std::sync::{Mutex, MutexGuard};

static HEAVY: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    HEAVY.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

const TICK: Duration = Duration::from_millis(4);

fn config(seed: u64) -> MembershipConfig {
    MembershipConfig {
        tick: TICK,
        seed,
        fallback: Some(FallbackConfig { step: Duration::from_millis(1), seed }),
        ..MembershipConfig::default()
    }
}

fn wait(ring: &RingMembership, what: &str) {
    let settle = (convergence_envelope(ring.n(), TICK) * 4).max(Duration::from_secs(2));
    ring.wait_reconverged(settle)
        .unwrap_or_else(|| panic!("{what}: ring (n = {}) did not re-converge", ring.n()));
}

/// Poll until every listed walker domain has issued at least `min` grants
/// past ledger index `from`, then return the grant counts per domain.
fn wait_grants(ring: &RingMembership, domains: &[u64], min: usize, from: usize) -> Vec<usize> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let windows = ring.fallback_windows();
        let counts: Vec<usize> = domains
            .iter()
            .map(|&d| {
                windows[from.min(windows.len())..]
                    .iter()
                    .filter(|w| w.mode == GrantMode::Walker && w.domain == d)
                    .count()
            })
            .collect();
        if counts.iter().all(|&c| c >= min) {
            return counts;
        }
        assert!(
            Instant::now() < deadline,
            "domains {domains:?} never reached {min} grants each (got {counts:?})"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Acceptance (tentpole): two non-adjacent crashes cut the 9-node ring into
/// two live arcs, each arc gets its own walker domain and keeps receiving
/// token grants, the staggered heals merge the walkers back to one (lower
/// anchor survives), and the final heal hands back to the handshake with a
/// clean per-domain exclusivity audit.
#[test]
fn double_partition_serves_both_arcs_and_merges_on_heal() {
    let _turn = exclusive();
    let params = RingParams::new(9, 12).unwrap();
    let mut ring = RingMembership::spawn(params, config(51)).unwrap();
    wait(&ring, "initial convergence");
    assert_eq!(ring.fallback_segments(), 1, "an intact ring is one service domain");

    ring.crash(2).unwrap();
    ring.crash(6).unwrap();
    // Windows granted between the two crashes (if any) belong to the
    // pre-split single-arc era; the per-arc checks start after the split.
    let split_at = ring.fallback_windows().len();
    assert!(ring.degraded());
    assert_eq!(ring.fallback_segments(), 2, "two non-adjacent holes cut two arcs");

    let detail = ring.fallback_segment_detail();
    assert_eq!(detail.len(), 2);
    let arcs: Vec<BTreeSet<usize>> =
        detail.iter().map(|s| s.positions.iter().copied().collect()).collect();
    assert!(arcs.contains(&BTreeSet::from([3, 4, 5])), "short arc {arcs:?}");
    assert!(arcs.contains(&BTreeSet::from([7, 8, 0, 1])), "anchor arc {arcs:?}");
    let domains: Vec<u64> = detail.iter().map(|s| s.domain).collect();
    assert_ne!(domains[0], domains[1], "each arc must be its own grant domain");

    // Both arcs must be served concurrently: wait until each domain has
    // real grant traffic, then confirm every grant lands inside its own
    // arc (a walker must never step across a hole).
    wait_grants(&ring, &domains, 8, split_at);
    for (seg, arc) in detail.iter().zip(&arcs) {
        let stray = ring.fallback_windows()[split_at..]
            .iter()
            .filter(|w| w.mode == GrantMode::Walker && w.domain == seg.domain)
            .find(|w| !arc.contains(&w.node))
            .map(|w| w.node);
        assert_eq!(stray, None, "domain {} granted outside its arc {arc:?}", seg.domain);
    }

    // First heal: the two arcs re-join, one walker retires. The ring is
    // still degraded (position 6 is down) but is one domain again.
    ring.restart(2).unwrap();
    assert!(ring.degraded(), "one hole remains after the first heal");
    assert_eq!(ring.fallback_segments(), 1, "healing the split point re-joins the arcs");
    let merges = ring.fallback_merges();
    assert_eq!(merges.len(), 1, "exactly one merge per re-joined pair of arcs");
    assert!(
        domains.contains(&merges[0].survivor) && domains.contains(&merges[0].retired),
        "the merge must be between the two split-era walkers: {merges:?}"
    );
    assert_ne!(merges[0].survivor, merges[0].retired);

    // The survivor keeps granting across the merged domain; the retired
    // walker must stay silent (the audit enforces this too).
    let merged_at = ring.fallback_windows().len();
    wait_grants(&ring, &[merges[0].survivor], 8, merged_at);

    // Final heal: the ring is whole, the hand-back closes the degraded
    // window, and no further merge is committed (there was nothing left
    // to merge with).
    ring.restart(6).unwrap();
    assert!(!ring.degraded(), "the last heal must close the degraded window");
    assert_eq!(ring.fallback_merges().len(), 1, "the final heal hands back, it does not merge");
    wait(&ring, "after the hand-back");

    let stats = ring.fallback_stats().unwrap();
    assert_eq!((stats.entries, stats.exits), (1, 1), "one counted degraded window");
    assert_eq!(stats.walkers, 2, "one walker minted per arc");
    assert_eq!(stats.merges, 1);
    let violations = ring.fallback_audit();
    assert!(violations.is_empty(), "handover audit: {violations:?}");
    ring.stop();
}

/// Acceptance: three holes cut three arcs with three disjoint walker
/// domains; healing them one by one commits exactly one merge per arc
/// re-join (two total) and the audit stays clean across the whole
/// interleaving.
#[test]
fn triple_partition_merges_once_per_rejoin() {
    let _turn = exclusive();
    let params = RingParams::new(9, 12).unwrap();
    let mut ring = RingMembership::spawn(params, config(67)).unwrap();
    wait(&ring, "initial convergence");

    for v in [1, 4, 7] {
        ring.crash(v).unwrap();
    }
    let split_at = ring.fallback_windows().len();
    assert_eq!(ring.fallback_segments(), 3, "three non-adjacent holes cut three arcs");
    let domains: Vec<u64> = ring.fallback_segment_detail().iter().map(|s| s.domain).collect();
    wait_grants(&ring, &domains, 4, split_at);

    ring.restart(1).unwrap();
    assert_eq!(ring.fallback_segments(), 2);
    assert_eq!(ring.fallback_merges().len(), 1);
    std::thread::sleep(Duration::from_millis(60));

    ring.restart(4).unwrap();
    assert_eq!(ring.fallback_segments(), 1);
    assert_eq!(ring.fallback_merges().len(), 2);
    std::thread::sleep(Duration::from_millis(60));

    ring.restart(7).unwrap();
    assert!(!ring.degraded());
    assert_eq!(ring.fallback_merges().len(), 2, "closing the ring is a hand-back, not a merge");
    wait(&ring, "after the hand-back");

    let stats = ring.fallback_stats().unwrap();
    assert_eq!((stats.entries, stats.exits), (1, 1));
    assert_eq!(stats.walkers, 3);
    assert_eq!(stats.merges, 2);
    let violations = ring.fallback_audit();
    assert!(violations.is_empty(), "handover audit: {violations:?}");
    ring.stop();
}

/// The CLI front-end: `ssrmin partition` runs a seeded multi-hole soak,
/// reports per-domain service and merge latencies, and writes the
/// benchmark JSON with the partition schema.
#[test]
fn partition_cli_reports_and_writes_bench_json() {
    let _turn = exclusive();
    let dir = std::env::temp_dir().join(format!("ssrmin-partition-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("BENCH_partition.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ssrmin"))
        .args([
            "partition",
            "--nodes",
            "9",
            "--holes",
            "2",
            "--ms",
            "4000",
            "--rounds",
            "1",
            "--seed",
            "3",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("partition soak: 9 nodes, 2 holes"), "{stdout}");
    assert!(stdout.contains("-> 2 segments"), "{stdout}");
    assert!(stdout.contains("handover audit: clean"), "{stdout}");
    assert!(!stdout.contains("** STALL **"), "{stdout}");
    let json = std::fs::read_to_string(&out_path).unwrap();
    assert!(json.contains("\"schema\":\"ssrmin-partition/v1\""), "{json}");
    assert!(json.contains("\"audit_violations\":[]"), "{json}");
    assert!(json.contains("\"merge_latencies_us\""), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}
