//! Cross-model integration: the same algorithms executed in the
//! state-reading engine, the discrete-event CST simulator and the threaded
//! runtime, checking that the paper's Section 5 claims hold end to end.

use ssrmin::core::{DualSsToken, MultiSsToken, RingAlgorithm, RingParams, SsToken, SsrMin};
use ssrmin::mpnet::{CstSim, DelayModel, SimConfig};

fn sim_cfg(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        delay: DelayModel::Uniform { min: 2, max: 7 },
        loss: 0.0,
        timer_interval: 40,
        send_on_receipt: true,
        exec_delay: 3,
        burst: None,
    }
}

/// Theorem 3, many seeds and sizes: SSRmin under CST keeps privileged count
/// in 1..=2 at every instant.
#[test]
fn ssrmin_gap_tolerance_across_sizes() {
    for n in [3usize, 5, 8, 13] {
        let p = RingParams::minimal(n).unwrap();
        let a = SsrMin::new(p);
        for seed in 0..3u64 {
            let mut sim = CstSim::new(a, a.legitimate_anchor(0), sim_cfg(seed)).unwrap();
            sim.run_until(30_000);
            let s = sim.timeline().summary(0).unwrap();
            assert_eq!(s.zero_privileged_time, 0, "n={n} seed={seed}");
            assert!(s.min_privileged >= 1, "n={n} seed={seed}");
            assert!(s.max_privileged <= 2, "n={n} seed={seed}");
            assert!(sim.stats().rules_executed > 0, "progress required");
        }
    }
}

/// Figure 11: Dijkstra's single-token ring loses the token in transit.
#[test]
fn dijkstra_has_gaps_across_sizes() {
    for n in [3usize, 5, 8] {
        let p = RingParams::minimal(n).unwrap();
        let a = SsToken::new(p);
        let mut sim = CstSim::new(a, a.uniform_config(0), sim_cfg(1)).unwrap();
        sim.run_until(30_000);
        let s = sim.timeline().summary(0).unwrap();
        assert!(s.zero_privileged_time > 0, "n={n}: Dijkstra must show gaps");
        assert_eq!(s.min_privileged, 0, "n={n}");
    }
}

/// Figure 12: two independent Dijkstra instances still reach zero tokens.
#[test]
fn dual_dijkstra_still_has_gaps() {
    let p = RingParams::new(5, 7).unwrap();
    let a = DualSsToken::new(p);
    let mut sim = CstSim::new(a, a.config_with_tokens_at(0, 2, 0), sim_cfg(3)).unwrap();
    sim.run_until(60_000);
    let s = sim.timeline().summary(0).unwrap();
    assert!(s.zero_privileged_time > 0, "both tokens in flight at once must occur: {s:?}");
}

/// E7 (token economy): a 3-token multi-token ring has more simultaneous
/// privileged nodes than SSRmin's 2, yet still hits zero in the
/// message-passing model — more resource use, still no mutual inclusion.
#[test]
fn multitoken_uses_more_tokens_but_still_gaps() {
    let p = RingParams::new(6, 8).unwrap();
    let m = MultiSsToken::new(p, 3).unwrap();
    // Spread the three tokens out.
    let mut config = m.uniform_config(0);
    // Drive in the state-reading engine briefly to separate tokens.
    let mut engine = ssrmin::daemon::Engine::new(m, config).unwrap();
    let mut daemon = ssrmin::daemon::daemons::CentralLast;
    engine.run(&mut daemon, 7);
    config = engine.config().to_vec();

    let mut sim = CstSim::new(m, config, sim_cfg(5)).unwrap();
    sim.run_until(60_000);
    let s = sim.timeline().summary(0).unwrap();
    assert!(s.zero_privileged_time > 0, "multi-token still not gap tolerant: {s:?}");
    // And when things line up, more than 2 nodes can be privileged — the
    // resource cost SSRmin avoids. (Not guaranteed every run; just check
    // the observed max is recorded sanely.)
    assert!(s.max_privileged >= 1);
}

/// The ground configurations that a CST run of SSRmin passes through after
/// a legitimate start are exactly state-reading legitimate configurations:
/// the transform does not invent new global states.
#[test]
fn cst_ground_configs_stay_in_the_legitimate_cycle() {
    let p = RingParams::new(5, 7).unwrap();
    let a = SsrMin::new(p);
    let mut sim = CstSim::new(a, a.legitimate_anchor(2), sim_cfg(9)).unwrap();
    for t in 1..200u64 {
        sim.run_until(t * 100);
        let g = sim.ground_config();
        assert!(
            a.is_legitimate(&g),
            "ground config left the legitimate cycle at t={}: {:?}",
            t * 100,
            g.iter().map(|s| s.to_string()).collect::<Vec<_>>()
        );
    }
}

/// Determinism across the whole stack: same seed, same everything.
#[test]
fn cst_runs_are_reproducible() {
    let p = RingParams::new(7, 9).unwrap();
    let a = SsrMin::new(p);
    let run = |seed: u64| {
        let cfg = SimConfig { loss: 0.25, ..sim_cfg(seed) };
        let mut sim = CstSim::new(a, a.legitimate_anchor(1), cfg).unwrap();
        sim.run_until(40_000);
        (sim.ground_config(), sim.stats())
    };
    assert_eq!(run(123), run(123));
    assert_ne!(run(123).1, run(124).1);
}
