//! End-to-end tests of the `ssrmin` CLI binary: real process spawns, real
//! stdout, exit codes.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ssrmin")).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage_and_succeeds() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("simulate"));
    assert!(stdout.contains("verify"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
}

#[test]
fn run_prints_figure4_notation() {
    let (ok, stdout, _) = run(&["run", "-n", "5", "-k", "7", "--steps", "3"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("0.0.1PS/1"), "{stdout}");
    assert!(stdout.contains("final configuration legitimate: true"));
}

#[test]
fn simulate_reports_zero_gap_for_ssrmin() {
    let (ok, stdout, _) = run(&["simulate", "-n", "4", "--ticks", "4000"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("zero-privileged time : 0 ticks"), "{stdout}");
    // The strip line (between brackets) must contain no '!' alarms; the
    // legend text above it legitimately contains one.
    let strip =
        stdout.lines().find(|l| l.trim_start().starts_with('[')).expect("strip line present");
    assert!(!strip.contains('!'), "strip must contain no alarms: {strip}");
}

#[test]
fn simulate_shows_the_gap_for_dijkstra() {
    let (ok, stdout, _) = run(&["simulate", "-n", "4", "--algo", "dijkstra", "--ticks", "4000"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains('!'), "Dijkstra must alarm: {stdout}");
}

#[test]
fn verify_reports_all_properties() {
    let (ok, stdout, _) = run(&["verify", "-n", "3", "-k", "4"]);
    assert!(ok, "{stdout}");
    for needle in ["closure (Lemma 1)", "holds", "exact worst-case stabilization", "16 steps"] {
        assert!(stdout.contains(needle), "missing {needle:?} in: {stdout}");
    }
}

#[test]
fn invalid_parameters_error_cleanly() {
    let (ok, _, stderr) = run(&["run", "-n", "2"]);
    assert!(!ok);
    assert!(stderr.contains("error:"), "{stderr}");
    let (ok, _, stderr) = run(&["simulate", "--algo", "nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("unknown algo"), "{stderr}");
}

#[test]
fn dangling_flag_is_rejected() {
    let (ok, _, stderr) = run(&["run", "--steps"]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"), "{stderr}");
}
