//! End-to-end tests of the `ssr-net` loopback UDP cluster: real sockets,
//! real threads, real datagrams — the paper's properties observed on wall
//! clocks rather than simulator ticks.
//!
//! Keep run times bounded: these tests are also CI's smoke check for the
//! socket stack. On a loaded single-core host the wall-clock assertions are
//! about coverage *after warmup*, which tolerates slow convergence, not
//! about absolute speed.

use std::time::Duration;

use ssrmin::core::{RingParams, SsrMin};
use ssrmin::daemon::random_config;
use ssrmin::net::{run_cluster, ChaosConfig, ClusterConfig, MetricsReport};
use ssrmin::RingAlgorithm;

fn params(n: usize) -> RingParams {
    RingParams::new(n, n as u32 + 1).unwrap()
}

/// Acceptance: `cluster --nodes 5 --seed 1` converges over loopback UDP and
/// P9 (at least one privileged node at every instant) holds after warmup.
#[test]
fn five_nodes_circulate_tokens_over_real_udp() {
    let algo = SsrMin::new(params(5));
    let cfg = ClusterConfig {
        seed: 1,
        duration: Duration::from_millis(900),
        warmup: Duration::from_millis(450),
        ..ClusterConfig::default()
    };
    let report = run_cluster(algo, algo.legitimate_anchor(0), cfg).unwrap();

    assert!(
        report.continuous(),
        "zero-token instants after warmup: uncovered {:?}, longest gap {:?}",
        report.coverage.uncovered,
        report.coverage.longest_gap
    );
    assert!(
        (1..=2).contains(&report.coverage.min_active) && report.coverage.max_active <= 2,
        "token-count invariant violated after warmup: {}..={} privileged",
        report.coverage.min_active,
        report.coverage.max_active
    );
    // The token must actually move: every node activates at least once in
    // the post-warmup window (duty cycle > 0 for all).
    assert!(report.coverage.activations >= 10, "only {} handovers", report.coverage.activations);
    assert!(
        report.coverage.duty_cycle.iter().all(|&d| d > 0.0),
        "some node never held the token: {:?}",
        report.coverage.duty_cycle
    );
    // Started legitimate: the invariant may never be observed broken.
    assert_eq!(report.stabilized_at, None, "legitimate start must stay legitimate");
    // Final states are a valid configuration.
    algo.validate_config(&report.final_states).unwrap();
}

/// Self-stabilization over real sockets: a random (possibly illegitimate)
/// initial configuration converges and then circulates cleanly.
#[test]
fn random_start_stabilizes_over_real_udp() {
    let p = params(5);
    let algo = SsrMin::new(p);
    let initial = random_config::random_ssr_config(p, 99);
    let cfg = ClusterConfig {
        seed: 3,
        duration: Duration::from_millis(1000),
        warmup: Duration::from_millis(500),
        ..ClusterConfig::default()
    };
    let report = run_cluster(algo, initial, cfg).unwrap();
    if let Some(t) = report.stabilized_at {
        assert!(
            t < report.observed,
            "never restored the token-count invariant within {:?}",
            report.observed
        );
        assert!(t < cfg.warmup, "stabilized only after {t:?}, warmup {:?}", cfg.warmup);
    }
    assert!(report.continuous(), "uncovered {:?} after warmup", report.coverage.uncovered);
    assert!(report.coverage.max_active <= 2);
}

/// Acceptance: the ring converges and circulates *through* per-link chaos
/// proxies dropping 20% of datagrams (the paper's lossy-network claim, P10).
#[test]
fn cluster_survives_chaos_proxy_at_loss_0_2() {
    let algo = SsrMin::new(params(5));
    let chaos = ChaosConfig { loss: 0.2, ..ChaosConfig::default() };
    let cfg = ClusterConfig {
        seed: 1,
        duration: Duration::from_millis(1400),
        warmup: Duration::from_millis(700),
        chaos: Some(chaos),
        ..ClusterConfig::default()
    };
    let report = run_cluster(algo, algo.legitimate_anchor(0), cfg).unwrap();

    // The chaos layer must actually have been in the path and dropping.
    assert!(report.chaos.forwarded > 0, "proxies forwarded nothing");
    assert!(
        report.chaos.dropped > 0,
        "loss 0.2 dropped nothing over {} forwarded",
        report.chaos.forwarded
    );
    // ... and the protocol must have ridden it out. Retransmission masks
    // loss, so post-warmup coverage must still be continuous.
    assert!(
        report.continuous(),
        "zero-token instants under 20% loss: uncovered {:?}",
        report.coverage.uncovered
    );
    assert!(report.coverage.max_active <= 2);
    assert!(report.coverage.activations >= 10, "token stalled under loss");
}

/// Acceptance: the metrics CSV is well-formed and reflects the run — every
/// node sent, received and fired rules, and the header matches the contract.
#[test]
fn metrics_csv_reflects_cluster_activity() {
    let algo = SsrMin::new(params(4));
    let cfg = ClusterConfig {
        seed: 5,
        duration: Duration::from_millis(600),
        warmup: Duration::from_millis(300),
        ..ClusterConfig::default()
    };
    let report = run_cluster(algo, algo.legitimate_anchor(0), cfg).unwrap();

    let csv = report.metrics.to_csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some(MetricsReport::CSV_HEADER));
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), 4, "one row per node:\n{csv}");
    for (i, row) in rows.iter().enumerate() {
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), 9, "bad row {row:?}");
        assert_eq!(fields[0], i.to_string());
        let sends: u64 = fields[1].parse().unwrap();
        let retransmits: u64 = fields[2].parse().unwrap();
        let receives: u64 = fields[3].parse().unwrap();
        let rule_firings: u64 = fields[6].parse().unwrap();
        assert!(sends > 0, "node {i} never sent: {row}");
        assert!(retransmits > 0, "node {i} never hit the retransmit timer: {row}");
        assert!(sends >= retransmits, "retransmits are a subset of sends: {row}");
        assert!(receives > 0, "node {i} never received: {row}");
        assert!(rule_firings > 0, "node {i} never fired a rule: {row}");
    }
    // Clean loopback UDP: nothing should have been corrupted or reordered.
    assert_eq!(report.metrics.total(|r| r.decode_errors), 0);
    // Handover latency is observable for at least one node after warmup.
    assert!(
        report.metrics.rows.iter().any(|r| r.mean_handover_latency.is_some()),
        "no handover latency measured:\n{csv}"
    );
}

/// The CLI front-end: `ssrmin cluster` runs, reports, and its `--csv` mode
/// emits exactly the metrics table.
#[test]
fn cluster_cli_reports_and_emits_csv() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ssrmin"))
        .args(["cluster", "--nodes", "4", "--seed", "2", "--ms", "500"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("loopback UDP cluster: 4 nodes"), "{stdout}");
    assert!(stdout.contains("token-count invariant"), "{stdout}");
    assert!(stdout.contains("per-node metrics"), "{stdout}");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ssrmin"))
        .args(["cluster", "--nodes", "3", "--seed", "2", "--ms", "400", "--csv"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = stdout.lines();
    assert_eq!(lines.next(), Some(MetricsReport::CSV_HEADER), "{stdout}");
    assert_eq!(lines.count(), 3, "one CSV row per node:\n{stdout}");
}
