//! End-to-end degraded-mode tests of the live UDP ring: crash windows
//! served by the random-walk fallback, the audited hand-back to SSRmin's
//! handshake, the bounded graceful-leave drain with its typed escalation,
//! and K renegotiation growing a ring past its spawn-time capacity.
//!
//! Every test binds real sockets and spawns a thread per member, and the
//! fallback timing assertions assume the walker thread is scheduled at its
//! step cadence — so the tests take turns through a shared mutex (CI runs
//! the suite with `--test-threads=1` as well, belt and braces).

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ssrmin::core::RingParams;
use ssrmin::net::{
    convergence_envelope, FallbackConfig, MembershipConfig, MembershipError, RingMembership,
};

static HEAVY: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    HEAVY.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

const TICK: Duration = Duration::from_millis(4);

fn config(seed: u64) -> MembershipConfig {
    MembershipConfig {
        tick: TICK,
        seed,
        fallback: Some(FallbackConfig { step: Duration::from_millis(1), seed }),
        ..MembershipConfig::default()
    }
}

fn settle(ring: &RingMembership) -> Duration {
    (convergence_envelope(ring.n(), TICK) * 4).max(Duration::from_secs(2))
}

fn wait(ring: &RingMembership, what: &str) -> Duration {
    ring.wait_reconverged(settle(ring))
        .unwrap_or_else(|| panic!("{what}: ring (n = {}) did not re-converge", ring.n()))
}

/// The ring position of the live member currently holding the primary
/// token, retried until the token sits at position >= 2 (the anchor can
/// never leave, and the jam below may land on the holder's predecessor).
fn primary_position(ring: &RingMembership) -> usize {
    use ssrmin::net::metrics::NodeMetrics;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let found = ring.ring_order().iter().enumerate().skip(2).find_map(|(pos, &slot)| {
            (ring.node_up(slot) && NodeMetrics::get(&ring.metrics().node(slot).token_primary) == 1)
                .then_some(pos)
        });
        if let Some(pos) = found {
            return pos;
        }
        assert!(Instant::now() < deadline, "no primary token holder surfaced at position >= 2");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Acceptance: a crash switches the ring to degraded mode, the random
/// walker issues token grants for the whole broken window, and the restart
/// hands back to the handshake with a clean exclusivity audit.
#[test]
fn walker_serves_the_broken_ring_and_hands_back_audited() {
    let _turn = exclusive();
    let params = RingParams::new(5, 8).unwrap();
    let mut ring = RingMembership::spawn(params, config(11)).unwrap();
    wait(&ring, "initial convergence");
    assert!(!ring.degraded());

    ring.crash(2).unwrap();
    assert!(ring.degraded(), "a crash must open a degraded window");

    // The walker must grant within its cover-time envelope; poll with a
    // generous deadline and then hold the window open a little longer so
    // the grant ledger has real traffic to audit.
    let deadline = Instant::now() + Duration::from_secs(5);
    while ring.fallback_stats().unwrap().grants == 0 {
        assert!(Instant::now() < deadline, "the walker never granted during the crash window");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(150));
    let during = ring.fallback_stats().unwrap();
    assert!(during.grants > 10, "walker grants must keep flowing, got {}", during.grants);
    assert_eq!(during.entries, 1);
    assert_eq!(during.exits, 0);

    ring.restart(2).unwrap();
    assert!(!ring.degraded(), "the restart must close the only degraded hold");
    wait(&ring, "after the hand-back");

    let stats = ring.fallback_stats().unwrap();
    assert_eq!((stats.entries, stats.exits), (1, 1));
    let violations = ring.fallback_audit();
    assert!(violations.is_empty(), "handover audit: {violations:?}");
    ring.stop();
}

/// Acceptance: membership splices (join and graceful leave) take degraded
/// holds of their own, so tokens keep being granted mid-splice and the
/// audit stays clean across every mode switch.
#[test]
fn splices_run_under_degraded_holds_with_a_clean_audit() {
    let _turn = exclusive();
    let params = RingParams::new(4, 9).unwrap();
    let mut ring = RingMembership::spawn(params, config(23)).unwrap();
    wait(&ring, "initial convergence");

    ring.join().unwrap();
    wait(&ring, "after join");
    ring.leave(2).unwrap();
    wait(&ring, "after leave");

    let stats = ring.fallback_stats().unwrap();
    assert_eq!(stats.entries, stats.exits, "every splice hold must be released");
    assert!(stats.entries >= 2, "join and leave each take a degraded hold");
    let violations = ring.fallback_audit();
    assert!(violations.is_empty(), "handover audit: {violations:?}");
    assert!(!ring.degraded());
    ring.stop();
}

/// Acceptance: a graceful leave whose leaver cannot shed its privilege
/// (rule engine frozen) escalates at the drain deadline to a forced
/// splice-out — the splice commits, the ring shrinks, and the caller gets
/// the typed [`MembershipError::DrainTimeout`] rather than a hang.
#[test]
fn frozen_leaver_hits_the_drain_deadline_and_is_force_spliced() {
    let _turn = exclusive();
    let params = RingParams::new(4, 7).unwrap();
    // No watchdog: it would unfreeze the leaver by amnesia-restarting it
    // mid-drain, and the drain budget collapses to the Theorem 2 envelope.
    let cfg = MembershipConfig { watchdog: None, ..config(37) };
    let mut ring = RingMembership::spawn(params, cfg).unwrap();
    wait(&ring, "initial convergence");

    // Freeze the current primary holder: it keeps caching and
    // retransmitting but can never execute the handover rule. The token
    // jams either on the frozen node itself or — if it slipped past before
    // the freeze landed — on its predecessor, which cannot complete a
    // handshake with a frozen successor. While the jam forms the gauge can
    // still dip (each neighbour message refreshes it), so wait until one of
    // the two has its privilege pinned continuously; only that node is
    // guaranteed to poll 1 for the whole drain.
    let frozen = primary_position(&ring);
    ring.freeze(frozen, true).unwrap();
    let position = {
        use ssrmin::net::metrics::NodeMetrics;
        let candidates = [frozen, frozen - 1];
        let slots = candidates.map(|p| ring.ring_order()[p]);
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut pinned = [0u32; 2];
        loop {
            assert!(Instant::now() < deadline, "the token never jammed near the frozen node");
            for (pin, &slot) in pinned.iter_mut().zip(&slots) {
                *pin = if NodeMetrics::get(&ring.metrics().node(slot).privileged) == 1 {
                    *pin + 1
                } else {
                    0
                };
            }
            if let Some(at) = pinned.iter().position(|&p| p >= 150) {
                break candidates[at];
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    };

    let t0 = Instant::now();
    let err = ring.leave(position).expect_err("a frozen leaver cannot drain in time");
    let waited = t0.elapsed();
    match err {
        MembershipError::DrainTimeout { slot, waited_ms } => {
            assert!(waited_ms > 0, "the escalation must record how long it waited");
            assert!(
                !ring.ring_order().contains(&slot),
                "the splice-out must still commit on timeout"
            );
        }
        other => panic!("expected DrainTimeout, got: {other}"),
    }
    assert_eq!(ring.n(), 3, "the ring must shrink despite the timeout");
    assert_eq!(ring.drain_timeouts(), 1);
    // The deadline is bounded: two drain envelopes plus scheduling slack.
    let budget = convergence_envelope(4, TICK) * 2;
    assert!(
        waited < budget + Duration::from_secs(2),
        "drain waited {waited:?}, deadline was {budget:?}"
    );
    ring.stop();
}

/// Acceptance: a ring spawned with zero growth headroom (K = n + 1) grows
/// past its spawn-time K via the two-phase renegotiation while tokens
/// circulate, and the previously refused join then succeeds.
#[test]
fn k_renegotiation_grows_a_live_ring_past_spawn_k() {
    let _turn = exclusive();
    let n = 4;
    let params = RingParams::new(n, n as u32 + 1).unwrap();
    let mut ring = RingMembership::spawn(params, config(41)).unwrap();
    wait(&ring, "initial convergence");

    let err = ring.join().expect_err("K = n + 1 leaves no room to grow");
    assert!(matches!(err, MembershipError::AtCapacity { .. }), "got: {err}");
    assert!(err.to_string().contains("larger K"), "the error must say how to fix it: {err}");

    let new_k = 2 * n as u32 + 2;
    assert_eq!(ring.renegotiate_k(new_k).unwrap(), new_k);
    assert_eq!(ring.k_renegotiations(), 1);
    wait(&ring, "after the K renegotiation");

    let slot = ring.join().expect("the renegotiated K must admit the join");
    assert_eq!(slot, n, "joins append at the tail slot");
    assert_eq!(ring.n(), n + 1);
    wait(&ring, "after the post-renegotiation join");

    let violations = ring.fallback_audit();
    assert!(violations.is_empty(), "handover audit: {violations:?}");
    ring.stop();
}

/// The CLI front-end: `ssrmin fallback` runs a short soak, reports walker
/// service and the renegotiated growth, and writes the benchmark JSON.
#[test]
fn fallback_cli_reports_and_writes_bench_json() {
    let _turn = exclusive();
    let dir = std::env::temp_dir().join(format!("ssrmin-fallback-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("BENCH_fallback.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ssrmin"))
        .args([
            "fallback",
            "--nodes",
            "4",
            "--ms",
            "2500",
            "--rounds",
            "1",
            "--seed",
            "3",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fallback soak: 4 nodes"), "{stdout}");
    assert!(stdout.contains("handover audit: clean"), "{stdout}");
    assert!(stdout.contains("join at capacity refused"), "{stdout}");
    let json = std::fs::read_to_string(&out_path).unwrap();
    assert!(json.contains("\"schema\":\"ssrmin-fallback/v1\""), "{json}");
    assert!(json.contains("\"audit_violations\":[]"), "{json}");
    std::fs::remove_dir_all(&dir).ok();
}
