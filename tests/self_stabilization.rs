//! End-to-end self-stabilization tests across crates: closure and
//! convergence of SSRmin under every daemon family, from random, corrupted,
//! adversarial and (for tiny rings) exhaustively enumerated configurations.

use ssrmin::analysis::{DaemonKind, StartKind};
use ssrmin::core::{legitimacy, RingAlgorithm, RingParams, SsrMin};
use ssrmin::daemon::daemons::{CentralFirst, Synchronous};
use ssrmin::daemon::{measure_convergence, random_config, Engine};

#[test]
fn exhaustive_convergence_tiny_ring_central() {
    // Every one of the (4K)^n = 4096 configurations of the n=3, K=4 ring
    // converges under the central daemon, and closure holds afterwards.
    let p = RingParams::new(3, 4).unwrap();
    let a = SsrMin::new(p);
    for cfg in random_config::exhaustive_ssr_configs(p) {
        let report = measure_convergence(a, cfg.clone(), &mut CentralFirst, 2_000, 3)
            .unwrap_or_else(|| panic!("no convergence from {cfg:?}"));
        // Theorem 2 envelope, generous constant: O(n^2).
        assert!(report.steps <= 200, "{} steps from {cfg:?}", report.steps);
    }
}

#[test]
fn exhaustive_convergence_tiny_ring_synchronous() {
    let p = RingParams::new(3, 4).unwrap();
    let a = SsrMin::new(p);
    for cfg in random_config::exhaustive_ssr_configs(p) {
        let report = measure_convergence(a, cfg.clone(), &mut Synchronous, 2_000, 3)
            .unwrap_or_else(|| panic!("no convergence from {cfg:?}"));
        assert!(report.steps <= 200);
    }
}

#[test]
fn all_daemon_kinds_converge_from_all_start_kinds() {
    let sizes = [5usize, 9];
    for daemon in DaemonKind::ALL {
        for start in [StartKind::Random, StartKind::Corrupted(2), StartKind::Adversarial] {
            // The sweep panics internally if convergence fails.
            let pts = ssrmin::analysis::ssrmin_convergence_sweep(&sizes, 3, daemon, start);
            assert_eq!(pts.len(), sizes.len());
            for pt in &pts {
                // Theorem 2: generous quadratic envelope.
                let bound = 40 * (pt.n as u64) * (pt.n as u64) + 1000;
                assert!(
                    pt.steps.max <= bound,
                    "daemon {} start {start:?}: {} steps on n={}",
                    daemon.label(),
                    pt.steps.max,
                    pt.n
                );
            }
        }
    }
}

#[test]
fn closure_holds_for_a_long_run_after_convergence() {
    let p = RingParams::new(10, 12).unwrap();
    let a = SsrMin::new(p);
    let initial = random_config::random_ssr_config(p, 77);
    let mut engine = Engine::new(a, initial).unwrap();
    let mut daemon = ssrmin::daemon::daemons::CentralRandom::seeded(77);
    engine.run_until(&mut daemon, 1_000_000, |alg, c| alg.is_legitimate(c)).expect("convergence");
    // 10 full circulations after convergence: legitimate at every step, and
    // the token position advances monotonically around the ring.
    let mut last_pos = legitimacy::classify(p, engine.config()).unwrap().position();
    let mut advanced = 0usize;
    for _ in 0..(3 * 10 * 10) {
        engine.step(&mut daemon).expect("no deadlock");
        let form =
            legitimacy::classify(p, engine.config()).expect("closure violated after convergence");
        let pos = form.position();
        if pos != last_pos {
            assert_eq!(pos, (last_pos + 1) % 10, "token must move to the successor");
            last_pos = pos;
            advanced += 1;
        }
    }
    assert!(advanced >= 90, "token should lap the ring ~10 times, moved {advanced}");
}

#[test]
fn convergence_report_counts_are_consistent() {
    let p = RingParams::new(6, 8).unwrap();
    let a = SsrMin::new(p);
    for seed in 0..10u64 {
        let initial = random_config::random_ssr_config(p, seed);
        let mut daemon = ssrmin::daemon::daemons::DistributedRandom::seeded(seed, 0.6);
        let r = measure_convergence(a, initial, &mut daemon, 100_000, 10).unwrap();
        assert!(r.moves >= r.steps, "distributed moves can exceed steps");
        assert!(r.dijkstra_moves <= r.moves);
        assert_eq!(r.closure_checked_steps, 10);
    }
}

#[test]
fn single_fault_recovers_quickly() {
    // Superstabilization-flavoured check: one corrupted process near a
    // legitimate configuration is healed in O(n) steps, much faster than
    // worst-case O(n^2).
    let p = RingParams::new(12, 14).unwrap();
    let a = SsrMin::new(p);
    for seed in 0..20u64 {
        let cfg = random_config::corrupted_legitimate(p, 1, seed);
        let mut daemon = ssrmin::daemon::daemons::CentralRandom::seeded(seed);
        let r = measure_convergence(a, cfg, &mut daemon, 100_000, 5).unwrap();
        // The constant is heuristic (the property under test is linearity,
        // not a tight bound) and depends on the RNG stream driving the
        // random daemon; keep it generous so the suite is stream-agnostic.
        assert!(r.steps <= 12 * 12, "single fault took {} steps to heal (seed {seed})", r.steps);
    }
}
