//! Golden-output regression tests: the rendered figures the README and
//! EXPERIMENTS.md quote are pinned here so a rendering or algorithm change
//! cannot silently drift away from the paper's tables.

use ssrmin::core::{RingAlgorithm, RingParams, SsrMin};
use ssrmin::daemon::daemons::CentralFirst;
use ssrmin::daemon::{trace, Engine};

/// Figure 4, as printed by `fig04_execution_example` (and the quickstart).
const FIGURE4_GOLDEN: &str = "\
Step  P0        P1        P2        P3        P4
   1  3.0.1PS/1 3.0.0     3.0.0     3.0.0     3.0.0
   2  3.1.0PS   3.0.0/3   3.0.0     3.0.0     3.0.0
   3  3.1.0P/2  3.0.1S    3.0.0     3.0.0     3.0.0
   4  4.0.0     3.0.1PS/1 3.0.0     3.0.0     3.0.0
   5  4.0.0     3.1.0PS   3.0.0/3   3.0.0     3.0.0
   6  4.0.0     3.1.0P/2  3.0.1S    3.0.0     3.0.0
   7  4.0.0     4.0.0     3.0.1PS/1 3.0.0     3.0.0
   8  4.0.0     4.0.0     3.1.0PS   3.0.0/3   3.0.0
   9  4.0.0     4.0.0     3.1.0P/2  3.0.1S    3.0.0
  10  4.0.0     4.0.0     4.0.0     3.0.1PS/1 3.0.0
  11  4.0.0     4.0.0     4.0.0     3.1.0PS   3.0.0/3
  12  4.0.0     4.0.0     4.0.0     3.1.0P/2  3.0.1S
  13  4.0.0     4.0.0     4.0.0     4.0.0     3.0.1PS/1
  14  4.0.0/3   4.0.0     4.0.0     4.0.0     3.1.0PS
  15  4.0.1S    4.0.0     4.0.0     4.0.0     3.1.0P/2
  16  4.0.1PS   4.0.0     4.0.0     4.0.0     4.0.0
";

#[test]
fn figure4_rendering_matches_golden() {
    let params = RingParams::new(5, 7).unwrap();
    let algo = SsrMin::new(params);
    let mut engine = Engine::new(algo, algo.legitimate_anchor(3)).unwrap();
    let mut daemon = CentralFirst;
    let t = engine.run_traced(&mut daemon, 15);
    let rendered = trace::render_ssrmin_trace(&algo, &t);
    assert_eq!(rendered, FIGURE4_GOLDEN, "Figure 4 drifted:\n{rendered}");
}

/// Figure 3's rule map, pinned cell by cell.
#[test]
fn figure3_rule_map_matches_golden() {
    use ssrmin::core::SsrRule::*;
    let algo = SsrMin::new(RingParams::new(5, 7).unwrap());
    let expected = [
        ((0u8, 0u8), vec![R1], vec![R3]),
        ((0, 1), vec![R1], vec![R5]),
        ((1, 0), vec![R2, R4], vec![R3, R5]),
        ((1, 1), vec![R1], vec![R3, R5]),
    ];
    for (flags, with_g, without_g) in expected {
        assert_eq!(algo.possible_rules(flags, true), with_g, "flags {flags:?}, G");
        assert_eq!(algo.possible_rules(flags, false), without_g, "flags {flags:?}, ¬G");
    }
}

/// The inchworm pattern of Figure 1: token-holder strings for the first
/// handover cycle.
#[test]
fn figure1_inchworm_pattern_matches_golden() {
    let params = RingParams::new(5, 7).unwrap();
    let algo = SsrMin::new(params);
    let mut cfg = algo.legitimate_anchor(0);
    let mut pattern = Vec::new();
    for _ in 0..9 {
        let row: String = (0..5)
            .map(|i| match algo.tokens_in(&cfg, i).to_string().as_str() {
                "PS" => 'B',
                "P" => 'P',
                "S" => 'S',
                _ => '.',
            })
            .collect();
        pattern.push(row);
        let e = algo.enabled_processes(&cfg);
        cfg = algo.step_process(&cfg, e[0]).unwrap();
    }
    assert_eq!(
        pattern,
        vec![
            "B....", // P0 holds both (tra phase)
            "B....", // P0 holds both (rts phase)
            "PS...", // split: P at P0, S at P1
            ".B...", // both at P1
            ".B...", ".PS..", "..B..", "..B..", "..PS.",
        ]
    );
}
