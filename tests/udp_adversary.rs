//! End-to-end adversary tests of the supervised UDP cluster: runtime state
//! corruption, rule-engine freezes, stale babble bursts and byte-level wire
//! damage, each absorbed by self-stabilization (plus, for freezes, the
//! convergence watchdog) on real sockets.
//!
//! Timing discipline matches `tests/udp_faults.rs`: assertions are about
//! *eventual* re-convergence within generous windows, never about absolute
//! speed, so a loaded single-core CI host does not flake them.

use std::net::UdpSocket;
use std::time::Duration;

use ssrmin::core::{RingParams, SsrMin, SsrState};
use ssrmin::mpnet::{FaultKind, FaultSchedule, GilbertElliott};
use ssrmin::net::{
    decode, encode, run_supervised_cluster, ssr_adversary, ssr_amnesia, ChaosConfig, ChaosProxy,
    ClusterConfig, SupervisorConfig, WatchdogConfig,
};

fn params(n: usize) -> RingParams {
    RingParams::new(n, n as u32 + 1).unwrap()
}

fn sup(seed: u64, ms: u64, schedule: FaultSchedule) -> SupervisorConfig {
    SupervisorConfig {
        cluster: ClusterConfig {
            seed,
            duration: Duration::from_millis(ms),
            warmup: Duration::from_millis(ms / 2),
            ..ClusterConfig::default()
        },
        schedule,
        watchdog: Some(WatchdogConfig::default()),
        ..SupervisorConfig::default()
    }
}

/// Acceptance: a live 5-node ring whose replica is overwritten mid-run with
/// a seeded Hoepman worst-case state re-converges to `1 <= privileged <= 2`
/// (P7), keeps at least one token held throughout (the adversarial state
/// itself carries the secondary token, P9), and the measured recovery lands
/// within the Theorem 2 `O(n^2)` stabilization envelope.
#[test]
fn corrupt_state_reconverges_within_envelope() {
    let algo = SsrMin::new(params(5));
    let schedule = FaultSchedule::new()
        .with(700, FaultKind::CorruptState { node: 2 })
        .with(1200, FaultKind::CorruptState { node: 4 });
    let report = run_supervised_cluster(
        algo,
        algo.legitimate_anchor(0),
        sup(31, 2400, schedule),
        ssr_adversary(algo.params(), 31),
    )
    .unwrap();

    assert_eq!(report.recovery.rows.len(), 2, "every injection gets a recovery row");
    assert!(
        report.reconverged(),
        "ring did not re-converge after state corruption:\n{}",
        report.recovery.to_ascii()
    );
    assert!(
        report.within_envelope(),
        "recovery exceeded the O(n^2) envelope {:?}:\n{}",
        report.envelope,
        report.recovery.to_ascii()
    );
    // The adversarial state holds the secondary token (own.tra), so the ring
    // stays covered through the poison — up to sub-tick handover transients
    // while the illegitimate configuration is being absorbed (P9 is only
    // guaranteed once legitimacy returns).
    assert!(
        report.cluster.coverage.uncovered < Duration::from_millis(10),
        "ring lost all tokens for {:?}",
        report.cluster.coverage.uncovered
    );
    // Tokens kept moving after the poison.
    assert!(report.cluster.coverage.activations >= 10);
    assert_eq!(report.panics, 0);
}

/// Acceptance: freezing a node's rule engine (the thread keeps ACKing and
/// retransmitting but never executes a rule) starves the whole ring; the
/// convergence watchdog escalates — resync, then amnesia self-restart with
/// a generation bump — each escalation recorded as a recovery row, and the
/// ring re-converges without any scheduled restart.
#[test]
fn freeze_heals_via_watchdog_escalation() {
    let algo = SsrMin::new(params(5));
    let schedule = FaultSchedule::new().with(600, FaultKind::FreezeNode { node: 2 });
    // A tight budget so escalation happens well inside the run.
    let mut cfg = sup(37, 3000, schedule);
    cfg.watchdog = Some(WatchdogConfig { scale: 4, floor: Duration::from_millis(300) });
    let report = run_supervised_cluster(
        algo,
        algo.legitimate_anchor(0),
        cfg,
        ssr_amnesia(algo.params(), 37),
    )
    .unwrap();

    assert!(
        report.watchdog_escalations() >= 1,
        "a frozen ring must trip the watchdog:\n{}",
        report.recovery.to_ascii()
    );
    assert!(report.kinds.iter().any(|k| matches!(k, FaultKind::Watchdog { .. })));
    // The escalations un-froze the ring: the last recorded event's window
    // (which extends to the end of the run) sees the invariant return.
    let last = report.recovery.rows.last().expect("freeze + escalations were recorded");
    assert!(
        last.recovery.is_some(),
        "ring never re-converged after watchdog escalation:\n{}",
        report.recovery.to_ascii()
    );
    // No scheduled restart happened — recovery was purely watchdog-driven.
    assert!(report.restarts.is_empty());
    assert_eq!(report.panics, 0);
}

/// Acceptance: a babble burst — CRC-valid frames impersonating a live node
/// with generations a million behind — is entirely absorbed by the
/// receiver-side staleness filter: stale drops rise, and the ring stays
/// converged with at most two privileged nodes.
#[test]
fn babble_is_filtered_and_harmless() {
    let algo = SsrMin::new(params(5));
    let schedule = FaultSchedule::new()
        .with(500, FaultKind::Babble { node: 1 })
        .with(900, FaultKind::Babble { node: 3 });
    let report = run_supervised_cluster(
        algo,
        algo.legitimate_anchor(0),
        sup(41, 2000, schedule),
        ssr_amnesia(algo.params(), 41),
    )
    .unwrap();

    let stale: u64 = report.cluster.metrics.rows.iter().map(|r| r.stale_drops).sum();
    assert!(stale > 0, "babbled stale-generation frames must be dropped by the filter");
    assert!(report.reconverged(), "{}", report.recovery.to_ascii());
    assert!(report.cluster.coverage.max_active <= 2, "babble must not mint extra privileges");
    assert!(report.cluster.coverage.min_active >= 1);
    assert_eq!(report.panics, 0);
}

/// Acceptance (wire damage, deterministic): with `corrupt = 1.0` every
/// datagram through the chaos proxy has one byte flipped, and *every* such
/// frame is rejected by the CRC-32 codec — the corrupted counter equals the
/// rejected count. Same for `truncate = 1.0` and the length checks.
#[test]
fn every_wire_corrupted_frame_is_rejected_by_the_codec() {
    for (label, cfg) in [
        ("corrupt", ChaosConfig { corrupt: 1.0, seed: 5, ..ChaosConfig::default() }),
        ("truncate", ChaosConfig { truncate: 1.0, seed: 6, ..ChaosConfig::default() }),
    ] {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        dst.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();

        let total = 64u64;
        for g in 0..total {
            let frame = encode(3, g as u32, &SsrState::new(2, 1, 0));
            src.send_to(&frame, proxy.addr()).unwrap();
        }

        let mut rejected = 0u64;
        let mut received = 0u64;
        let mut buf = [0u8; 256];
        while received < total {
            let Ok((len, _)) = dst.recv_from(&mut buf) else { break };
            received += 1;
            if decode::<SsrState>(&buf[..len]).is_err() {
                rejected += 1;
            }
        }
        let stats = proxy.shutdown();
        let counters = stats.counters();
        let damaged = match label {
            "corrupt" => counters.corrupted,
            _ => counters.truncated,
        };
        assert_eq!(received, total, "{label}: the proxy forwards damaged datagrams");
        assert_eq!(damaged, total, "{label}: every datagram must be damaged at probability 1");
        assert_eq!(
            rejected, damaged,
            "{label}: corrupted counter must equal the codec-rejected count"
        );
    }
}

/// Acceptance (watchdog false positives): a 7-node ring under 20% i.i.d.
/// loss *plus* Gilbert–Elliott bursts, with the default (paranoid) budget,
/// triggers **zero** escalations over a full soak — packet loss alone never
/// looks like starvation, because retransmission keeps rules firing.
#[test]
fn watchdog_has_no_false_positives_under_lossy_links() {
    let algo = SsrMin::new(params(7));
    let mut cfg = sup(43, 2500, FaultSchedule::new());
    cfg.cluster.chaos = Some(ChaosConfig {
        loss: 0.2,
        burst: Some(GilbertElliott::default()),
        ..ChaosConfig::default()
    });
    let report = run_supervised_cluster(
        algo,
        algo.legitimate_anchor(0),
        cfg,
        ssr_amnesia(algo.params(), 43),
    )
    .unwrap();

    assert_eq!(
        report.watchdog_escalations(),
        0,
        "loss must never look like starvation:\n{}",
        report.recovery.to_ascii()
    );
    assert!(report.recovery.rows.is_empty());
    assert!(report.cluster.chaos.dropped > 0, "the lossy links must have been active");
    assert!(report.cluster.coverage.max_active <= 2);
    assert!(report.cluster.coverage.activations >= 10);
    assert_eq!(report.panics, 0);
}
