//! Property-based tests (proptest) for the core invariants:
//!
//! * closure from arbitrary legitimate configurations under arbitrary
//!   (scripted-adversarial) distributed-daemon choices,
//! * convergence from arbitrary configurations,
//! * Lemma 3/4 (primary token exists, no deadlock) on arbitrary
//!   configurations,
//! * Lemma 5 (≤ 3n steps without a Dijkstra move) on arbitrary executions,
//! * daemon-independence of the legitimate cycle.

use proptest::prelude::*;

use ssrmin::core::{legitimacy, RingAlgorithm, RingParams, SsrMin, SsrState};
use ssrmin::daemon::daemons::{Daemon, EnabledProcess};
use ssrmin::daemon::{measure_convergence, Engine};

/// A distributed daemon whose choices are entirely driven by a proptest-
/// generated script: at each step, word `w` selects the subset of enabled
/// processes `{ e[j] : bit j of w is set }` (coerced non-empty).
struct ScriptedDaemon {
    script: Vec<u64>,
    pos: usize,
}

impl Daemon for ScriptedDaemon {
    fn select(&mut self, enabled: &[EnabledProcess], _step: u64) -> Vec<usize> {
        let w = self.script.get(self.pos).copied().unwrap_or(1);
        self.pos += 1;
        let mut picked: Vec<usize> = enabled
            .iter()
            .enumerate()
            .filter(|(j, _)| w & (1 << (j % 64)) != 0)
            .map(|(_, e)| e.process)
            .collect();
        if picked.is_empty() {
            picked.push(enabled[(w as usize) % enabled.len()].process);
        }
        picked
    }
    fn name(&self) -> &'static str {
        "scripted"
    }
}

fn arb_params() -> impl Strategy<Value = RingParams> {
    (3usize..9).prop_flat_map(|n| {
        ((n as u32 + 1)..(n as u32 + 6)).prop_map(move |k| RingParams::new(n, k).unwrap())
    })
}

fn arb_config(params: RingParams) -> impl Strategy<Value = Vec<SsrState>> {
    proptest::collection::vec(
        (0..params.k(), any::<bool>(), any::<bool>()).prop_map(|(x, r, t)| SsrState {
            x,
            rts: r,
            tra: t,
        }),
        params.n(),
    )
}

fn arb_legitimate(params: RingParams) -> impl Strategy<Value = Vec<SsrState>> {
    (0..params.n(), 0..params.k(), 0..3u8).prop_map(move |(i, x, phase)| {
        let form = match phase {
            0 => legitimacy::LegitimateForm::BothTra { i, x },
            1 => legitimacy::LegitimateForm::BothRts { i, x },
            _ => legitimacy::LegitimateForm::Split { i, x },
        };
        legitimacy::build(params, form)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Closure (Lemma 1): from any legitimate configuration, under ANY
    /// distributed-daemon schedule, every reached configuration is
    /// legitimate with exactly one enabled process and 1..=2 privileged.
    #[test]
    fn closure_under_arbitrary_daemon(
        params in arb_params(),
        start_seed in 0usize..1000,
        script in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let algo = SsrMin::new(params);
        // Derive a legitimate start from the seed deterministically.
        let all = legitimacy::enumerate_legitimate(params);
        let cfg = all[start_seed % all.len()].clone();
        let mut engine = Engine::new(algo, cfg).unwrap();
        let steps = script.len() as u64;
        let mut daemon = ScriptedDaemon { script, pos: 0 };
        for _ in 0..steps {
            prop_assert_eq!(engine.enabled().len(), 1, "exactly one enabled process");
            engine.step(&mut daemon).expect("no deadlock");
            prop_assert!(algo.is_legitimate(engine.config()), "closure violated");
            let holders = algo.token_holders(engine.config());
            prop_assert!((1..=2).contains(&holders.len()));
        }
    }

    /// Convergence (Lemma 6 / Theorem 2): from ANY configuration, under an
    /// arbitrary scripted daemon (cycled), SSRmin reaches a legitimate
    /// configuration within the quadratic envelope.
    #[test]
    fn convergence_from_arbitrary_config(
        cfg_script in arb_params().prop_flat_map(|p| (Just(p), arb_config(p), proptest::collection::vec(any::<u64>(), 32))),
    ) {
        let (params, cfg, script) = cfg_script;
        let algo = SsrMin::new(params);
        let n = params.n() as u64;
        let budget = 60 * n * n + 2000;
        // Cycle the script to cover the whole run.
        struct Cycled { inner: ScriptedDaemon }
        impl Daemon for Cycled {
            fn select(&mut self, enabled: &[EnabledProcess], step: u64) -> Vec<usize> {
                if self.inner.pos >= self.inner.script.len() {
                    self.inner.pos = 0;
                }
                self.inner.select(enabled, step)
            }
        }
        let mut daemon = Cycled { inner: ScriptedDaemon { script, pos: 0 } };
        let report = measure_convergence(algo, cfg, &mut daemon, budget, 5);
        prop_assert!(report.is_some(), "did not converge within the quadratic envelope");
    }

    /// Lemma 3 + Lemma 4 on arbitrary configurations: the primary token
    /// exists and some process is enabled.
    #[test]
    fn primary_exists_and_no_deadlock(
        pc in arb_params().prop_flat_map(|p| (Just(p), arb_config(p))),
    ) {
        let (params, cfg) = pc;
        let algo = SsrMin::new(params);
        prop_assert!(algo.primary_count(&cfg) >= 1, "Lemma 3 violated");
        prop_assert!(!algo.is_deadlocked(&cfg), "Lemma 4 violated");
    }

    /// Lemma 5: in any execution fragment, the number of consecutive steps
    /// without a Dijkstra move is at most 3n.
    #[test]
    fn lemma5_w24_free_runs_bounded(
        pcs in arb_params().prop_flat_map(|p| (
            Just(p),
            arb_config(p),
            proptest::collection::vec(any::<u64>(), 64..256),
        )),
    ) {
        let (params, cfg, script) = pcs;
        let algo = SsrMin::new(params);
        let mut engine = Engine::new(algo, cfg).unwrap();
        let steps = script.len() as u64;
        let mut daemon = ScriptedDaemon { script, pos: 0 };
        let records = engine.run(&mut daemon, steps);
        let longest = ssrmin::analysis::max_w24_free_run(&records);
        prop_assert!(
            longest <= 3 * params.n() as u64,
            "W24-free run of {longest} exceeds 3n = {}",
            3 * params.n()
        );
    }

    /// The legitimate cycle is daemon-independent: with exactly one process
    /// enabled at each legitimate configuration, every daemon yields the
    /// same execution.
    #[test]
    fn legitimate_execution_is_deterministic(
        pc in arb_params().prop_flat_map(|p| (Just(p), arb_legitimate(p))),
    ) {
        let (params, cfg) = pc;
        let algo = SsrMin::new(params);
        let mut e1 = Engine::new(algo, cfg.clone()).unwrap();
        let mut e2 = Engine::new(algo, cfg).unwrap();
        let mut d1 = ssrmin::daemon::daemons::CentralFirst;
        let mut d2 = ssrmin::daemon::daemons::Synchronous;
        for _ in 0..30 {
            e1.step(&mut d1);
            e2.step(&mut d2);
            prop_assert_eq!(e1.config(), e2.config());
        }
    }

    /// Round-trip: classify(build(form)) == form for arbitrary forms.
    #[test]
    fn legitimacy_roundtrip(
        params in arb_params(),
        i_raw in 0usize..64,
        x_raw in 0u32..64,
        phase in 0u8..3,
    ) {
        let i = i_raw % params.n();
        let x = x_raw % params.k();
        let form = match phase {
            0 => legitimacy::LegitimateForm::BothTra { i, x },
            1 => legitimacy::LegitimateForm::BothRts { i, x },
            _ => legitimacy::LegitimateForm::Split { i, x },
        };
        let cfg = legitimacy::build(params, form);
        prop_assert_eq!(legitimacy::classify(params, &cfg), Some(form));
    }
}
