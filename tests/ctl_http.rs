//! End-to-end tests of the live control plane: a real supervised UDP
//! cluster with an embedded `ssr-ctl` HTTP server, scraped and administered
//! over actual TCP sockets while the ring circulates.
//!
//! The GET scrapes deliberately use a raw `TcpStream` rather than the
//! `ssr_ctl::client` helpers: the exposition must be consumable by external
//! tooling (Prometheus, curl) that knows nothing about this workspace. The
//! admin POSTs then use the crate client, which is what `ssrmin ctl` runs.
//!
//! Timing discipline matches the other UDP suites: every assertion is about
//! *eventual* observation within a generous deadline, never absolute speed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use ssrmin::core::{RingParams, SsrMin};
use ssrmin::ctl::{post, CtlListener, Json};
use ssrmin::mpnet::FaultSchedule;
use ssrmin::net::{
    run_supervised_cluster_with_ctl, ssr_adversary, ssr_amnesia, ClusterConfig, SupervisorConfig,
    WatchdogConfig,
};

/// One raw HTTP/1.1 exchange; returns (status code, body).
fn raw(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("ctl server accepts");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("full response before close");
    let text = String::from_utf8(bytes).expect("response is UTF-8");
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {text}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn raw_get(addr: SocketAddr, path: &str) -> (u16, String) {
    raw(addr, &format!("GET {path} HTTP/1.1\r\nHost: ring\r\nConnection: close\r\n\r\n"))
}

/// Polls `GET /status` until `pred` accepts the parsed document.
fn wait_status(addr: SocketAddr, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut last = String::new();
    while Instant::now() < deadline {
        let (status, body) = raw_get(addr, "/status");
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).expect("status is valid JSON");
        if pred(&doc) {
            return doc;
        }
        last = body;
        thread::sleep(Duration::from_millis(25));
    }
    panic!("timed out waiting for {what}; last status: {last}");
}

fn node(doc: &Json, i: u64) -> &Json {
    doc.get("nodes")
        .and_then(Json::as_arr)
        .and_then(|nodes| nodes.iter().find(|nd| nd.get("node").and_then(Json::as_u64) == Some(i)))
        .expect("node entry present")
}

fn link(doc: &Json, from: u64, to: u64) -> &Json {
    doc.get("links")
        .and_then(Json::as_arr)
        .and_then(|links| {
            links.iter().find(|l| {
                l.get("from").and_then(Json::as_u64) == Some(from)
                    && l.get("to").and_then(Json::as_u64) == Some(to)
            })
        })
        .expect("directed link entry present")
}

/// Acceptance for the tentpole: a 5-node loopback ring serves valid
/// Prometheus text and a parseable JSON snapshot while circulating, takes a
/// runtime partition over `POST /chaos`, takes a crash and a restart over
/// `POST /faults`, and the `1 <= privileged <= 2` invariant is observed to
/// recover *through the API* — then the final report shows exactly the two
/// injected faults, both with recovery rows.
#[test]
fn ctl_plane_scrapes_and_recovers_through_the_api() {
    let params = RingParams::new(5, 6).unwrap();
    let algo = SsrMin::new(params);
    let listener = CtlListener::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = listener.local_addr();
    let url = format!("http://{addr}");

    let cfg = SupervisorConfig {
        cluster: ClusterConfig {
            seed: 29,
            duration: Duration::from_millis(8000),
            warmup: Duration::from_millis(300),
            ..ClusterConfig::default()
        },
        schedule: FaultSchedule::new(), // everything below arrives over HTTP
        ..SupervisorConfig::default()
    };
    let runner = thread::spawn(move || {
        run_supervised_cluster_with_ctl(
            algo,
            algo.legitimate_anchor(0),
            cfg,
            ssr_amnesia(algo.params(), 29),
            Some(listener),
        )
        .unwrap()
    });

    // The ring is healthy and visible: all nodes up, invariant holding.
    wait_status(addr, "healthy ring", |doc| {
        let all_up = doc
            .get("nodes")
            .and_then(Json::as_arr)
            .is_some_and(|nodes| nodes.iter().all(|nd| nd.get("up") == Some(&Json::Bool(true))));
        all_up && doc.get("token_count_ok") == Some(&Json::Bool(true))
    });

    // /metrics is a valid Prometheus text exposition with >= 10 series.
    let (status, metrics) = raw_get(addr, "/metrics");
    assert_eq!(status, 200);
    let series: Vec<&str> =
        metrics.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).collect();
    assert!(series.len() >= 10, "want >= 10 series, got {}:\n{metrics}", series.len());
    for sample in &series {
        let (_, value) = sample.rsplit_once(' ').expect("sample is `name[{labels}] value`");
        assert!(value.parse::<f64>().is_ok() || value == "NaN", "bad sample value: {sample}");
    }
    assert!(metrics.contains("# TYPE ssr_node_sends_total counter"), "{metrics}");
    assert!(metrics.contains("ssr_ring_token_invariant 1"), "{metrics}");
    assert!(metrics.contains(r#"ssr_node_up{node="4"} 1"#), "{metrics}");

    // /status is parseable JSON with one entry per node.
    let (status, body) = raw_get(addr, "/status");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("n").and_then(Json::as_u64), Some(5), "{body}");
    assert_eq!(doc.get("nodes").and_then(Json::as_arr).map(<[Json]>::len), Some(5), "{body}");
    assert_eq!(doc.get("links").and_then(Json::as_arr).map(<[Json]>::len), Some(10), "{body}");

    // /top renders the dashboard; / lists the endpoints; unknowns 404.
    let (status, top) = raw_get(addr, "/top");
    assert_eq!(status, 200);
    assert!(top.contains("invariant[1..=2]"), "{top}");
    let (status, index) = raw_get(addr, "/");
    assert_eq!(status, 200);
    assert!(index.contains("/metrics"), "{index}");
    assert_eq!(raw_get(addr, "/nope").0, 404);

    // Runtime chaos: partition a directed link, watch it block, heal it.
    let reply = post(&url, "/chaos", "partition 0 1").unwrap();
    assert!(reply.ok(), "{}: {}", reply.status, reply.body);
    wait_status(addr, "link 0->1 partitioned and blocking", |doc| {
        let l = link(doc, 0, 1);
        l.get("partitioned") == Some(&Json::Bool(true))
            && l.get("blocked").and_then(Json::as_u64).is_some_and(|b| b > 0)
    });
    let reply = post(&url, "/chaos", "heal 0 1").unwrap();
    assert!(reply.ok(), "{}: {}", reply.status, reply.body);
    wait_status(addr, "link 0->1 healed", |doc| {
        link(doc, 0, 1).get("partitioned") == Some(&Json::Bool(false))
    });

    // Admin error mapping over the wire: parse errors 400, plane errors 422.
    let reply = post(&url, "/chaos", "gibberish").unwrap();
    assert_eq!(reply.status, 400, "{}", reply.body);
    let reply = post(&url, "/chaos", "partition 0 2").unwrap();
    assert_eq!(reply.status, 422, "0->2 is not a ring link: {}", reply.body);
    let reply = post(&url, "/faults", "crash 99").unwrap();
    assert_eq!(reply.status, 422, "{}", reply.body);

    // Live fault injection: crash node 2, watch it go down...
    let reply = post(&url, "/faults", "crash 2").unwrap();
    assert!(reply.ok(), "{}: {}", reply.status, reply.body);
    assert!(reply.body.contains("queued"), "{}", reply.body);
    wait_status(addr, "node 2 down", |doc| {
        let nd = node(doc, 2);
        nd.get("up") == Some(&Json::Bool(false))
            && nd.get("privileged") == Some(&Json::Bool(false))
            && doc.get("faults_applied").and_then(Json::as_u64) == Some(1)
    });

    // ...restart it with amnesia (arbitrary state), and observe the ring
    // re-converge to 1 <= privileged <= 2 through the API itself.
    let reply = post(&url, "/faults", "restart 2").unwrap();
    assert!(reply.ok(), "{}: {}", reply.status, reply.body);
    wait_status(addr, "node 2 back up and ring re-converged", |doc| {
        node(doc, 2).get("up") == Some(&Json::Bool(true))
            && doc.get("restarts").and_then(Json::as_u64) == Some(1)
            && doc.get("token_count_ok") == Some(&Json::Bool(true))
            && doc.get("recovered").and_then(Json::as_u64) == Some(2)
            && doc.get("unrecovered").and_then(Json::as_u64) == Some(0)
    });
    let (_, metrics) = raw_get(addr, "/metrics");
    assert!(metrics.contains("ssr_supervisor_faults_applied_total 2"), "{metrics}");
    assert!(metrics.contains("ssr_recovery_recovered_total 2"), "{metrics}");

    // The final report agrees with what the API showed: exactly the two
    // injected faults (the /chaos partition is an adjustment, not a fault),
    // both windows re-established the invariant.
    let report = runner.join().unwrap();
    assert_eq!(report.recovery.rows.len(), 2, "{}", report.recovery.to_ascii());
    assert_eq!(report.kinds.len(), 2);
    assert_eq!(report.restarts.len(), 1);
    assert_eq!(report.panics, 0);
    assert!(report.reconverged(), "{}", report.recovery.to_ascii());
    assert!(report.cluster.chaos.blocked > 0, "the live partition must have blocked datagrams");
}

/// Acceptance for the adversary plane over HTTP: `POST /chaos` flips the
/// byte-corruption rate live (damage shows up in the per-link counters and
/// dies in the codec), `POST /faults` injects corrupt-state, babble and
/// freeze on the running ring, the convergence watchdog heals the freeze
/// and its escalations surface in `/status` — all while the Theorem 2
/// envelope comparison is exported.
#[test]
fn adversarial_faults_and_wire_damage_over_the_api() {
    let params = RingParams::new(5, 6).unwrap();
    let algo = SsrMin::new(params);
    let listener = CtlListener::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = listener.local_addr();
    let url = format!("http://{addr}");

    let cfg = SupervisorConfig {
        cluster: ClusterConfig {
            seed: 47,
            duration: Duration::from_millis(10_000),
            warmup: Duration::from_millis(300),
            ..ClusterConfig::default()
        },
        schedule: FaultSchedule::new(),
        watchdog: Some(WatchdogConfig { scale: 4, floor: Duration::from_millis(300) }),
        ..SupervisorConfig::default()
    };
    let runner = thread::spawn(move || {
        run_supervised_cluster_with_ctl(
            algo,
            algo.legitimate_anchor(0),
            cfg,
            ssr_adversary(algo.params(), 47),
            Some(listener),
        )
        .unwrap()
    });

    // Healthy ring first; the envelope comparison is exported from the start.
    let doc = wait_status(addr, "healthy ring", |doc| {
        doc.get("token_count_ok") == Some(&Json::Bool(true))
    });
    assert!(doc.get("envelope_ms").and_then(Json::as_u64).is_some_and(|ms| ms > 0), "{doc:?}");
    assert_eq!(doc.get("watchdog_escalations").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("envelope_ok"), Some(&Json::Bool(true)));

    // Live wire damage: a 25% byte-corruption rate on every link. Damaged
    // frames show in the per-link counters (and die in the codec — the
    // ring's invariant stays intact below).
    let reply = post(&url, "/chaos", "corrupt 0.25").unwrap();
    assert!(reply.ok(), "{}: {}", reply.status, reply.body);
    wait_status(addr, "corrupted datagrams counted", |doc| {
        doc.get("links")
            .and_then(Json::as_arr)
            .map(|links| {
                links.iter().filter_map(|l| l.get("corrupted").and_then(Json::as_u64)).sum()
            })
            .unwrap_or(0u64)
            > 0
    });
    let reply = post(&url, "/chaos", "corrupt off").unwrap();
    assert!(reply.ok(), "{}: {}", reply.status, reply.body);
    let reply = post(&url, "/chaos", "truncate 0").unwrap();
    assert!(reply.ok(), "truncate takes a plain rate too: {}", reply.body);

    // Rate validation over the wire: out-of-range is a parse error.
    assert_eq!(post(&url, "/chaos", "corrupt 1.5").unwrap().status, 400);
    assert_eq!(post(&url, "/chaos", "truncate banana").unwrap().status, 400);

    // Live adversarial state corruption, then a babble burst: each is
    // queued, applied, and the ring re-converges through the API.
    let reply = post(&url, "/faults", "corrupt-state 2").unwrap();
    assert!(reply.ok(), "{}: {}", reply.status, reply.body);
    assert!(reply.body.contains("queued"), "{}", reply.body);
    wait_status(addr, "state corruption absorbed", |doc| {
        doc.get("faults_applied").and_then(Json::as_u64) == Some(1)
            && doc.get("token_count_ok") == Some(&Json::Bool(true))
    });
    let reply = post(&url, "/faults", "babble 1").unwrap();
    assert!(reply.ok(), "{}: {}", reply.status, reply.body);
    wait_status(addr, "babble absorbed", |doc| {
        doc.get("faults_applied").and_then(Json::as_u64) == Some(2)
            && doc.get("token_count_ok") == Some(&Json::Bool(true))
    });

    // Freeze a node's rule engine: the watchdog must escalate (visible in
    // /status and /metrics) and the ring must re-converge on its own.
    let reply = post(&url, "/faults", "freeze 3").unwrap();
    assert!(reply.ok(), "{}: {}", reply.status, reply.body);
    wait_status(addr, "watchdog escalation heals the freeze", |doc| {
        doc.get("watchdog_escalations").and_then(Json::as_u64).is_some_and(|w| w > 0)
            && doc.get("token_count_ok") == Some(&Json::Bool(true))
    });
    let (_, metrics) = raw_get(addr, "/metrics");
    assert!(metrics.contains("ssr_supervisor_watchdog_total"), "{metrics}");
    assert!(metrics.contains("ssr_chaos_corrupted_total"), "{metrics}");
    assert!(metrics.contains("ssr_envelope_ms"), "{metrics}");

    // Watchdog escalations are recorded by the runtime, never injectable.
    assert_eq!(post(&url, "/faults", "watchdog 1").unwrap().status, 400);

    let report = runner.join().unwrap();
    assert_eq!(report.panics, 0);
    assert!(report.reconverged(), "{}", report.recovery.to_ascii());
    assert!(report.watchdog_escalations() >= 1);
    let has = |f: fn(&ssrmin::mpnet::FaultKind) -> bool| report.kinds.iter().any(f);
    assert!(has(|k| matches!(k, ssrmin::mpnet::FaultKind::CorruptState { .. })));
    assert!(has(|k| matches!(k, ssrmin::mpnet::FaultKind::Babble { .. })));
    assert!(has(|k| matches!(k, ssrmin::mpnet::FaultKind::FreezeNode { .. })));
    assert!(report.cluster.chaos.corrupted > 0, "live corruption must have damaged datagrams");
}

/// The CLI front-end end-to-end: `ssrmin cluster --ctl-addr 127.0.0.1:0`
/// announces its ephemeral ctl URL on stdout, `ssrmin ctl <url> metrics`
/// and `ssrmin top <url> --once` read it back, and the run shuts down
/// cleanly with the ctl server attached.
#[test]
fn ssrmin_ctl_scrapes_a_live_cluster_process() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ssrmin"))
        .args(["cluster", "--nodes", "4", "--ms", "3000", "--ctl-addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let url = line
        .trim()
        .strip_prefix("ctl listening on ")
        .unwrap_or_else(|| panic!("first line should announce the ctl URL: {line}"))
        .to_string();
    assert!(url.starts_with("http://127.0.0.1:"), "{url}");

    let scrape = Command::new(env!("CARGO_BIN_EXE_ssrmin"))
        .args(["ctl", &url, "metrics"])
        .output()
        .expect("binary runs");
    assert!(scrape.status.success(), "{}", String::from_utf8_lossy(&scrape.stderr));
    let exposition = String::from_utf8_lossy(&scrape.stdout);
    let series = exposition.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).count();
    assert!(series >= 10, "want >= 10 series from `ssrmin ctl`, got {series}:\n{exposition}");

    let top = Command::new(env!("CARGO_BIN_EXE_ssrmin"))
        .args(["top", &url, "--once"])
        .output()
        .expect("binary runs");
    assert!(top.status.success(), "{}", String::from_utf8_lossy(&top.stderr));
    assert!(
        String::from_utf8_lossy(&top.stdout).contains("invariant[1..=2]"),
        "{}",
        String::from_utf8_lossy(&top.stdout)
    );

    // Drain the remaining report output so the child never blocks on a full
    // pipe, then require a clean exit.
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    let status = child.wait().unwrap();
    assert!(status.success(), "cluster run with ctl attached must exit cleanly:\n{rest}");
    assert!(rest.contains("nodes"), "the usual cluster report still prints:\n{rest}");
}
