//! Offline stand-in for `serde_derive`: emits empty impls of the marker
//! traits in the vendored `serde`. Supports plain (non-generic) structs and
//! enums, which is all the workspace derives on.

use proc_macro::{TokenStream, TokenTree};

/// Name of the type a `struct`/`enum` item defines.
fn type_name(input: &TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    panic!("serde_derive stand-in: expected a struct or enum item");
}

/// Stand-in `#[derive(Serialize)]`: an empty marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap()
}

/// Stand-in `#[derive(Deserialize)]`: an empty marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}").parse().unwrap()
}
