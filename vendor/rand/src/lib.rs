//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors a minimal, dependency-free implementation of the
//! exact API subset it uses:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256\*\* seeded via SplitMix64),
//! * [`SeedableRng::seed_from_u64`],
//! * [`RngExt::random_range`] over half-open and inclusive integer ranges,
//! * [`RngExt::random_bool`].
//!
//! Determinism per seed is the only contract the workspace relies on
//! (experiments and tests are all seed-driven); statistical quality is that
//! of xoshiro256\*\*, which is more than adequate for simulation workloads.
//! The stream differs from the real `rand::rngs::StdRng` (ChaCha12), so
//! seeded outputs are stable *within* this repository but not comparable to
//! runs made with upstream `rand`.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed (SplitMix64
    /// expansion, as recommended by the xoshiro authors).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256\*\* — the workspace's standard deterministic generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the 64-bit seed into 256 bits of
            // state; the all-zero state is unreachable this way.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl StdRng {
        /// The raw 256-bit generator state — the RNG "cursor" captured by
        /// checkpoint files so a restored run resumes the exact stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured with
        /// [`StdRng::state`]. The all-zero state is a fixed point of
        /// xoshiro256\*\* and is rejected by falling back to the seeded
        /// expansion of 0 (a corrupt checkpoint must not wedge the stream).
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as SeedableRng>::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = widening_mod(rng.next_u64(), span);
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = widening_mod(rng.next_u64(), span);
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

/// Reduce a uniform `u64` into `[0, span)`. Uses the widening-multiply
/// technique (Lemire), which keeps the bias below 2^-64 for the span sizes
/// used in this workspace — indistinguishable from uniform for simulation.
fn widening_mod(x: u64, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        // Only reachable through u64/u128 full-width ranges; plain modulo
        // is fine there (bias ~ 2^-64).
        (x as u128) % span
    } else {
        ((x as u128) * span) >> 64
    }
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The convenience sampling methods the workspace calls on its generators
/// (the `rand 0.10` naming: `random_range` / `random_bool`).
pub trait RngExt: RngCore {
    /// Uniform sample from an integer range (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // Compare against a 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u64), b.random_range(0..1000u64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..16).map(|_| c.random_range(0..u64::MAX)).collect();
        let mut d = StdRng::seed_from_u64(7);
        let other: Vec<u64> = (0..16).map(|_| d.random_range(0..u64::MAX)).collect();
        assert_ne!(same, other, "different seeds must give different streams");
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.random_range(0..1000u64);
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1_000_000u64), b.random_range(0..1_000_000u64));
        }
        // A zeroed (corrupt) state must still yield a working generator.
        let mut z = StdRng::from_state([0; 4]);
        let vals: Vec<u64> = (0..8).map(|_| z.random_range(0..u64::MAX)).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(5..9u32);
            assert!((5..9).contains(&v));
            let w = rng.random_range(2..=4u64);
            assert!((2..=4).contains(&w));
            let z = rng.random_range(0..3usize);
            assert!(z < 3);
            let b = rng.random_range(0..2u8);
            assert!(b < 2);
        }
    }

    #[test]
    fn all_values_of_small_ranges_occur() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.random_range(0..7u32) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampler must cover 0..7: {seen:?}");
    }

    #[test]
    fn random_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
