//! `any::<T>()` for the primitive types the workspace draws.

use std::fmt;
use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{RngCore, RngExt};

use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draw an arbitrary value. Implementations bias a small fraction of
    /// draws toward edge values (min/0/1/max), which is where integer
    /// properties tend to break.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                // 1-in-16 draws land on an edge case.
                if rng.random_range(0..16u32) == 0 {
                    let edges = [<$t>::MIN, 0, 1, <$t>::MAX];
                    edges[rng.random_range(0..4usize)]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_covers_edges_and_interior() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = any::<u8>();
        let draws: Vec<u8> = (0..2000).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.contains(&0));
        assert!(draws.contains(&255));
        assert!(draws.iter().any(|&v| v != 0 && v != 255));
        let b = any::<bool>();
        let bools: Vec<bool> = (0..100).map(|_| b.generate(&mut rng)).collect();
        assert!(bools.contains(&true) && bools.contains(&false));
    }
}
