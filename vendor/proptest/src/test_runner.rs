//! The case runner behind the [`proptest!`](crate::proptest) macro.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Runner configuration (the subset of upstream's the workspace sets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to draw and run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Stable 64-bit FNV-1a hash of the test name, used as the deterministic
/// default seed so the suite cannot flake on an unlucky stream.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Draw `config.cases` inputs from `strategy` and run `body` on each.
/// On panic, reports the test name, case index, seed and the generated
/// inputs, then propagates the panic (no shrinking in this stand-in).
pub fn run_cases<S, F>(config: &ProptestConfig, name: &str, strategy: S, body: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(v) => {
            v.parse::<u64>().unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {v:?}"))
        }
        Err(_) => name_seed(name),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        let result = catch_unwind(AssertUnwindSafe(|| body(value)));
        if let Err(panic) = result {
            eprintln!(
                "proptest stand-in: property {name:?} failed at case {case}/{cases} \
                 (seed {seed}; rerun with PROPTEST_SEED={seed})\n  input: {shown}",
                cases = config.cases,
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn runs_every_case() {
        let count = std::cell::Cell::new(0u32);
        run_cases(&ProptestConfig::with_cases(17), "runs_every_case", Just(1u8), |v| {
            assert_eq!(v, 1);
            count.set(count.get() + 1);
        });
        assert_eq!(count.get(), 17);
    }

    #[test]
    fn failing_property_panics() {
        let result = std::panic::catch_unwind(|| {
            run_cases(&ProptestConfig::with_cases(5), "failing", Just(3u8), |v| {
                assert!(v > 3, "deliberate failure");
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn deterministic_without_env_override() {
        let a = std::cell::RefCell::new(Vec::new());
        let b = std::cell::RefCell::new(Vec::new());
        run_cases(&ProptestConfig::with_cases(10), "det", 0u64..1000, |v| a.borrow_mut().push(v));
        run_cases(&ProptestConfig::with_cases(10), "det", 0u64..1000, |v| b.borrow_mut().push(v));
        assert_eq!(*a.borrow(), *b.borrow());
    }
}
