//! Collection strategies: `vec`.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::RngExt;

use crate::strategy::Strategy;

/// A length specification for collection strategies: an exact length or a
/// half-open range, as in upstream proptest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            rng.random_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { lo: len, hi: len + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// Strategy for `Vec<S::Value>` with the given length specification.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = StdRng::seed_from_u64(9);
        let fixed = vec(0u32..5, 4usize);
        for _ in 0..20 {
            assert_eq!(fixed.generate(&mut rng).len(), 4);
        }
        let ranged = vec(0u32..5, 1..7);
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let v = ranged.generate(&mut rng);
            assert!((1..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            lens.insert(v.len());
        }
        assert!(lens.len() > 3, "length should vary: {lens:?}");
    }
}
