//! The [`Strategy`] trait and the combinators the workspace uses.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::RngExt;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds out of
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values satisfying `pred`, retrying a bounded number of
    /// times (panics if the predicate rejects 1000 draws in a row).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, pred }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive draws: {}", self.whence);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_map_and_flat_map_compose() {
        let mut rng = StdRng::seed_from_u64(5);
        let strat = (3usize..9).prop_flat_map(|n| (Just(n), 0u32..(n as u32)));
        for _ in 0..500 {
            let (n, v) = strat.generate(&mut rng);
            assert!((3..9).contains(&n));
            assert!((v as usize) < n);
        }
        let doubled = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn filter_retries_until_predicate_holds() {
        let mut rng = StdRng::seed_from_u64(1);
        let evens = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..200 {
            assert_eq!(evens.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn tuples_generate_elementwise() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = (0u8..2, 5u64..6, Just("x"));
        for _ in 0..50 {
            let (a, b, c) = t.generate(&mut rng);
            assert!(a < 2);
            assert_eq!(b, 5);
            assert_eq!(c, "x");
        }
    }
}
