//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of proptest it actually uses:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//!   integer-range strategies, tuple strategies (arity 1–6) and
//!   [`strategy::Just`];
//! * [`arbitrary::any`] for the primitive types the tests draw;
//! * [`collection::vec`];
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs and the
//!   seed, but is not minimized.
//! * **Deterministic seeding.** Each test's RNG seed derives from the test
//!   name (stable across runs and machines), so the tier-1 suite can never
//!   flake on a freshly unlucky seed. Set `PROPTEST_SEED=<u64>` to explore
//!   other streams; failures print the seed in effect.
//! * `.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function that draws `cases` inputs and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config($cfg) $($rest)*);
    };
    (@with_config($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategy = ( $( $strat, )+ );
                $crate::test_runner::run_cases(
                    &config,
                    stringify!($name),
                    strategy,
                    |values| {
                        let ( $( $pat, )+ ) = values;
                        $body
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// Property-test assertion (stand-in: panics like `assert!`, and the runner
/// reports the offending inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion (stand-in for upstream's).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion (stand-in for upstream's).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
