//! Offline stand-in for `serde`.
//!
//! The workspace only *declares* optional serde support (`#[cfg_attr(
//! feature = "serde", derive(serde::Serialize, serde::Deserialize))]`); no
//! in-tree code serializes anything. This stand-in keeps those attributes
//! compiling offline: the traits are markers and the derives emit empty
//! impls. Swap in real `serde` (same package name and feature set) when the
//! build environment regains registry access.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
