//! Offline stand-in for `parking_lot`: the `Mutex`/`RwLock` subset the
//! workspace uses, implemented over `std::sync` with `parking_lot`'s
//! panic-free (non-poisoning) API. A thread that panics while holding a
//! guard simply releases the lock for the next acquirer, matching
//! `parking_lot` semantics.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding the lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is simply free.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
