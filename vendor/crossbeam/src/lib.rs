//! Offline stand-in for `crossbeam`: the `channel` subset the workspace
//! uses (bounded/unbounded MPMC channels with timeouts and non-blocking
//! sends), implemented over `std::sync::{Mutex, Condvar}`.
//!
//! Semantics follow `crossbeam-channel`:
//! * `Sender` and `Receiver` are both cloneable (MPMC);
//! * a channel disconnects when all peers of the other side are dropped;
//! * `recv` on a disconnected channel still drains buffered messages first.

#![forbid(unsafe_code)]

pub mod channel;
