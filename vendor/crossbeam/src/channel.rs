//! MPMC channels with the `crossbeam-channel` API surface used by the
//! workspace: `bounded`, `unbounded`, blocking/timeout/non-blocking sends
//! and receives, and disconnect-on-drop semantics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`]: all receivers were dropped. Carries
/// the unsent message back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers were dropped.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`]: the channel is empty and all
/// senders were dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders were dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders were dropped.
    Disconnected,
}

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn is_full(inner: &Inner<T>) -> bool {
        matches!(inner.cap, Some(cap) if inner.queue.len() >= cap)
    }
}

/// The sending half of a channel. Cloneable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A channel buffering at most `cap` messages; sends block (or
/// [`Sender::try_send`] fails) when the buffer is full. `cap = 0` is
/// treated as capacity 1 (this stand-in does not implement rendezvous
/// handoff; the workspace never creates zero-capacity channels).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

/// A channel with an unbounded buffer.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
    match shared.inner.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Sender<T> {
    /// Block until the message is buffered, or fail if all receivers are
    /// gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = lock(&self.shared);
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            if !Shared::is_full(&inner) {
                inner.queue.push_back(msg);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = match self.shared.not_full.wait(inner) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Buffer the message without blocking, or report a full/disconnected
    /// channel.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = lock(&self.shared);
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if Shared::is_full(&inner) {
            return Err(TrySendError::Full(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = lock(&self.shared);
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake blocked receivers so they can observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives, or fail once the channel is empty and
    /// all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = lock(&self.shared);
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = match self.shared.not_empty.wait(inner) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Like [`Receiver::recv`] with an upper bound on the wait.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = lock(&self.shared);
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = match self.shared.not_empty.wait_timeout(inner, deadline - now) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner = guard;
        }
    }

    /// Pop a buffered message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = lock(&self.shared);
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = lock(&self.shared);
        inner.receivers -= 1;
        let last = inner.receivers == 0;
        drop(inner);
        if last {
            // Wake blocked senders so they can observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn bounded_try_send_drops_on_full() {
        let (tx, rx) = bounded::<u32>(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(tx.try_send(3).is_ok());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<u32>(4);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(7).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        h.join().unwrap();
    }

    #[test]
    fn disconnect_is_seen_after_drain() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn send_fails_when_all_receivers_dropped() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn mpmc_many_senders_many_receivers() {
        let (tx, rx) = bounded::<u64>(8);
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            producers.push(thread::spawn(move || {
                for k in 0..250u64 {
                    tx.send(p * 1000 + k).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = 0u64;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            }));
        }
        drop(rx);
        for h in producers {
            h.join().unwrap();
        }
        let total: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
