//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `bench_function` /
//! `bench_with_input`, `iter` / `iter_batched`, `Throughput`,
//! `BenchmarkId`) with a deliberately simple measurement loop: a short
//! warm-up, then timed batches until a wall-clock budget is spent, reporting
//! mean time per iteration (and derived throughput). There is no statistical
//! analysis, outlier rejection or HTML report — swap in real criterion when
//! the build environment regains registry access.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration batching hint (accepted for API compatibility; the
/// stand-in always re-runs the setup closure per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name, an optional parameter, or both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Parameter-only id (the group name provides the prefix).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Total time spent in measured closures.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher { elapsed: Duration::ZERO, iters: 0, budget }
    }

    /// Time `routine` repeatedly until the budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: a few unmeasured runs.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    /// Time `routine` over fresh state from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..2 {
            black_box(routine(setup()));
        }
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    fn per_iter_ns(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// One reported measurement, accumulated for the optional JSON sink.
struct JsonRow {
    name: String,
    ns_per_iter: f64,
    iters: u64,
    budget_ms: u64,
    rate: Option<(f64, &'static str)>,
}

/// All rows reported by this process so far; the sink rewrites the whole
/// file on every report so a partial run still leaves valid JSON behind.
static JSON_ROWS: Mutex<Vec<JsonRow>> = Mutex::new(Vec::new());

/// When `CRITERION_JSON` names a file, mirror every reported measurement
/// into it as a machine-readable document (the committed `BENCH_*.json`
/// files at the repo root are produced this way).
fn sink_json(row: JsonRow) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let mut rows = JSON_ROWS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    rows.push(row);
    let mut out = String::from("{\"schema\":\"ssr-criterion/v1\",\"results\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Names are code identifiers plus '/', but escape defensively.
        let name: String = r
            .name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c if c.is_control() => "?".chars().collect(),
                c => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"ns_per_iter\":{:.1},\"iters\":{},\"budget_ms\":{}",
            r.ns_per_iter, r.iters, r.budget_ms
        ));
        if let Some((rate, unit)) = r.rate {
            out.push_str(&format!(
                ",\"throughput_per_sec\":{rate:.1},\"throughput_unit\":\"{unit}\""
            ));
        }
        out.push('}');
    }
    out.push_str("]}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion: cannot write {path}: {e}");
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let ns = bencher.per_iter_ns();
    let mut line = format!("{label:<48} time: {:>12}   ({} iters)", human_time(ns), bencher.iters);
    let mut rate = None;
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(e) => (e as f64, "elem/s"),
            Throughput::Bytes(b) => (b as f64, "B/s"),
        };
        if ns.is_finite() && ns > 0.0 {
            let per_sec = count / (ns / 1_000_000_000.0);
            line.push_str(&format!("   thrpt: {per_sec:.3e} {unit}"));
            rate = Some((per_sec, unit));
        }
    }
    println!("{line}");
    sink_json(JsonRow {
        name: label.to_string(),
        ns_per_iter: ns,
        iters: bencher.iters,
        budget_ms: bencher.budget.as_millis() as u64,
        rate,
    });
}

/// The top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Per-benchmark wall-clock budget; overridable for quick CI runs.
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion { budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(name, &b, None);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the stand-in is time-budgeted, not
    /// sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.budget = time.min(Duration::from_secs(5));
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { budget: Duration::from_millis(5) };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(4)).sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn json_sink_writes_machine_readable_results() {
        let path = std::env::temp_dir().join(format!("criterion_sink_{}.json", std::process::id()));
        std::env::set_var("CRITERION_JSON", &path);
        let mut c = Criterion { budget: Duration::from_millis(2) };
        c.bench_function("sink_probe", |b| b.iter(|| black_box(2 + 2)));
        std::env::remove_var("CRITERION_JSON");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\"schema\":\"ssr-criterion/v1\""), "{body}");
        assert!(body.contains("\"name\":\"sink_probe\""), "{body}");
        assert!(body.contains("\"ns_per_iter\":"), "{body}");
        assert!(body.trim_end().ends_with("]}"), "{body}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
