//! Property tests for the emulator's determinism contract (satellite task
//! of the netem PR): a link's delivery schedule is a *pure function* of
//! (profile, seed, link index, offered load) — two runs agree verdict for
//! verdict — and a snapshot taken mid-stream resumes the identical
//! schedule, jitter draw for jitter draw.

use proptest::prelude::*;

use ssr_netem::{DirProfile, Jitter, NetemLink, Verdict};

fn arb_jitter() -> impl Strategy<Value = Jitter> {
    (0u8..=2, 1u64..=5_000, 1u64..=2_000, 5u32..=150).prop_map(
        |(which, max_us, median_us, centi_sigma)| match which {
            0 => Jitter::None,
            1 => Jitter::Uniform { max_us },
            _ => Jitter::LogNormal { median_us, sigma: f64::from(centi_sigma) / 100.0 },
        },
    )
}

fn arb_profile() -> impl Strategy<Value = DirProfile> {
    (1_000u64..=1_000_000_000, 0u64..=100_000, arb_jitter(), 1usize..=32).prop_map(
        |(rate_bps, latency_us, jitter, buffer_frames)| DirProfile {
            rate_bps,
            latency_us,
            jitter,
            buffer_frames,
            loss: 0.0,
        },
    )
}

/// An offered load: (inter-arrival gap µs, frame length) pairs. Gaps of
/// zero model bursts that exercise the drop-tail buffer.
fn arb_load() -> impl Strategy<Value = Vec<(u64, usize)>> {
    proptest::collection::vec((0u64..=30_000, 16usize..=1_500), 1..200)
}

fn schedule(link: &mut NetemLink, load: &[(u64, usize)], start: u64) -> Vec<Verdict> {
    let mut now = start;
    load.iter()
        .map(|&(gap, len)| {
            now += gap;
            link.offer(now, len)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed + same profile + same offered load ⇒ byte-identical
    /// delivery schedule — the property `ssrmin replay` stands on.
    #[test]
    fn equal_seed_and_profile_give_identical_schedules(
        profile in arb_profile(),
        load in arb_load(),
        seed in any::<u64>(),
        link_idx in 0usize..64,
    ) {
        let mut a = NetemLink::new(profile, seed, link_idx);
        let mut b = NetemLink::new(profile, seed, link_idx);
        prop_assert_eq!(schedule(&mut a, &load, 0), schedule(&mut b, &load, 0));
        prop_assert_eq!(a.stats().delivered, b.stats().delivered);
        prop_assert_eq!(a.stats().buffer_drops, b.stats().buffer_drops);
    }

    /// A snapshot taken after an arbitrary prefix of the load resumes the
    /// exact remaining schedule: queue occupancy, serializer state, RNG
    /// cursor and counters all survive the freeze/thaw.
    #[test]
    fn snapshot_resumes_the_exact_stream(
        profile in arb_profile(),
        load in arb_load(),
        seed in any::<u64>(),
        cut in 0usize..=200,
    ) {
        let cut = cut.min(load.len());
        let (head, tail) = load.split_at(cut);
        let mut live = NetemLink::new(profile, seed, 3);
        let head_verdicts = schedule(&mut live, head, 0);
        let resume_at = head.iter().map(|(gap, _)| gap).sum::<u64>();

        // Freeze, thaw, and race the survivor against the original.
        let frozen = live.snapshot();
        let mut thawed = NetemLink::restore(*b"test", &frozen).expect("round-trip");
        prop_assert_eq!(thawed.profile(), live.profile());
        prop_assert_eq!(thawed.stats().offered, head_verdicts.len() as u64);

        let live_tail = schedule(&mut live, tail, resume_at);
        let thawed_tail = schedule(&mut thawed, tail, resume_at);
        prop_assert_eq!(live_tail, thawed_tail);
        prop_assert_eq!(live.stats().delivered, thawed.stats().delivered);
        prop_assert_eq!(live.stats().buffer_drops, thawed.stats().buffer_drops);
    }

    /// Runtime profile swaps preserve the RNG cursor: swapping to the same
    /// profile mid-stream is a no-op for the remaining schedule.
    #[test]
    fn identity_swap_is_invisible(
        profile in arb_profile(),
        load in arb_load(),
        seed in any::<u64>(),
    ) {
        let mid = load.len() / 2;
        let mut plain = NetemLink::new(profile, seed, 0);
        let mut swapped = NetemLink::new(profile, seed, 0);
        let _ = schedule(&mut plain, &load[..mid], 0);
        let _ = schedule(&mut swapped, &load[..mid], 0);
        swapped.set_profile(profile);
        let resume_at = load[..mid].iter().map(|(gap, _)| gap).sum::<u64>();
        prop_assert_eq!(
            schedule(&mut plain, &load[mid..], resume_at),
            schedule(&mut swapped, &load[mid..], resume_at)
        );
    }
}
