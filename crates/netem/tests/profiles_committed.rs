//! The committed `profiles/*.toml` files must stay in lockstep with the
//! compiled-in profiles: a run pinned to `--profile wan` must mean the
//! same physics whether it resolves the builtin or reads the file.

use ssr_netem::{LinkProfile, BUILTIN_PROFILES};

fn repo_root() -> std::path::PathBuf {
    // crates/netem → repo root is two levels up from CARGO_MANIFEST_DIR.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
        .to_path_buf()
}

#[test]
fn every_builtin_is_committed_and_identical() {
    for name in BUILTIN_PROFILES {
        let path = repo_root().join("profiles").join(format!("{name}.toml"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let parsed =
            LinkProfile::parse(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
        let builtin = LinkProfile::builtin(name).expect("builtin exists");
        assert_eq!(parsed, builtin, "profiles/{name}.toml diverged from the builtin");
    }
}

#[test]
fn committed_profiles_validate() {
    let dir = repo_root().join("profiles");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("profiles/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable");
        let profile =
            LinkProfile::parse(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
        profile.validate().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        seen += 1;
    }
    assert!(seen >= 4, "at least lan/wan/lossy-wan/asymmetric committed, saw {seen}");
}
