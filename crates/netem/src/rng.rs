//! Per-link deterministic RNG streams and the normal sampler behind
//! lognormal jitter.
//!
//! The chaos proxy already derives per-link *loss* seeds as
//! `seed · φ + link`; netem pacing must not share that stream (a pacing
//! draw would otherwise shift every loss decision after it), so link
//! emulator streams mix the link index through a different odd constant
//! before the golden-ratio multiply. Both derivations are stable contracts:
//! checkpoints store the resulting RNG cursors, and replay must land on the
//! very same streams.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Derive the seed of directed link `link`'s netem stream from a run seed.
///
/// Distinct from the chaos-proxy loss-seed derivation (`seed · φ + link`)
/// so pacing and loss never share a stream.
pub fn link_stream_seed(seed: u64, link: usize) -> u64 {
    (seed ^ (link as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x632B_E593_04B4_CC87)
}

/// The netem RNG of directed link `link` under run seed `seed`.
pub fn link_rng(seed: u64, link: usize) -> StdRng {
    StdRng::seed_from_u64(link_stream_seed(seed, link))
}

/// One standard-normal sample via Box–Muller.
///
/// Always consumes exactly **two** RNG draws — the draw count is part of
/// the determinism contract (a data-dependent draw count would make
/// checkpointed streams diverge on replay).
pub fn standard_normal<R: RngCore>(rng: &mut R) -> f64 {
    // Two 53-bit uniforms in (0, 1]; u1 is kept away from zero so ln(u1)
    // is finite.
    let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
    let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_streams_are_distinct_and_deterministic() {
        let mut a = link_rng(7, 0);
        let mut a2 = link_rng(7, 0);
        let mut b = link_rng(7, 1);
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sa2: Vec<u64> = (0..32).map(|_| a2.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(sa, sa2, "same (seed, link) must give the same stream");
        assert_ne!(sa, sb, "different links must give different streams");
    }

    #[test]
    fn netem_stream_differs_from_chaos_loss_stream() {
        // The chaos proxy derives loss seeds as seed·φ + link; the netem
        // derivation must not collide with it for small link indices.
        for link in 0..64usize {
            let loss_seed = 7u64.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(link as u64);
            assert_ne!(link_stream_seed(7, link), loss_seed, "link {link}");
        }
    }

    #[test]
    fn standard_normal_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
        assert!(samples.iter().all(|s| s.is_finite()));
    }
}
