//! Link profiles: the configuration language of the emulator.
//!
//! A profile names the physics of one bidirectional ring edge, per
//! direction: serialization rate, propagation latency, a jitter
//! distribution, a finite drop-tail buffer, and a loss rate that is handed
//! to the existing shared loss machinery (`ssr_mpnet::loss` in the DES,
//! the chaos proxy's channel on the wire). Profiles load from a small
//! TOML-subset file or a JSON object (auto-detected), and four builtin
//! profiles — `lan`, `wan`, `lossy-wan`, `asymmetric` — are compiled in
//! and mirrored verbatim under `profiles/` at the repo root so runs are
//! reproducible without any file at all.
//!
//! ```toml
//! name = "wan"
//!
//! [forward]
//! rate = "50mbit"        # or a bare integer in bits/second
//! latency_us = 40000
//! jitter = "lognormal"   # none | uniform | lognormal
//! jitter_us = 2000       # uniform: max; lognormal: median
//! jitter_sigma = 0.4     # lognormal only
//! buffer_frames = 64
//! loss = 0.001
//!
//! # [reverse] omitted = symmetric
//! ```

use std::collections::HashMap;
use std::fmt;

use rand::RngCore;

use crate::rng::standard_normal;

/// Per-transmission jitter added on top of the propagation latency.
///
/// The number of RNG draws a sample consumes is fixed per variant —
/// `None` 0, `Uniform` 1, `LogNormal` 2 (Box–Muller) — which is part of
/// the determinism contract checkpoints rely on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Jitter {
    /// No jitter: delivery at exactly serialization + latency.
    None,
    /// Uniform jitter in `[0, max_us]` microseconds.
    Uniform {
        /// Maximum jitter in microseconds (inclusive).
        max_us: u64,
    },
    /// Lognormal jitter: `median_us · exp(sigma · Z)` with `Z` standard
    /// normal — corten's WAN jitter shape (long right tail).
    LogNormal {
        /// Median jitter in microseconds.
        median_us: u64,
        /// Log-space standard deviation (`> 0`, dimensionless).
        sigma: f64,
    },
}

impl Jitter {
    /// Sample one jitter value in microseconds.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> u64 {
        match *self {
            Jitter::None => 0,
            Jitter::Uniform { max_us } => {
                use rand::RngExt;
                if max_us == 0 {
                    // Still consume the draw: the count per variant is fixed.
                    let _ = rng.next_u64();
                    0
                } else {
                    rng.random_range(0..=max_us)
                }
            }
            Jitter::LogNormal { median_us, sigma } => {
                let z = standard_normal(rng);
                let v = median_us as f64 * (sigma * z).exp();
                // Clamp the (unbounded) right tail to something a queue can
                // survive; 64× the median is already a 10-sigma event for
                // the sigmas profiles use.
                v.clamp(0.0, median_us as f64 * 64.0) as u64
            }
        }
    }

    /// The nominal magnitude used for validation: uniform max / lognormal
    /// median (zero for no jitter).
    pub fn nominal_us(&self) -> u64 {
        match *self {
            Jitter::None => 0,
            Jitter::Uniform { max_us } => max_us,
            Jitter::LogNormal { median_us, .. } => median_us,
        }
    }
}

/// The physics of one *direction* of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirProfile {
    /// Serialization rate in bits per second (must be positive): a frame
    /// of `L` bytes occupies the serializer for `L·8·10⁶ / rate_bps` µs.
    pub rate_bps: u64,
    /// Propagation latency in microseconds.
    pub latency_us: u64,
    /// Jitter added per transmission.
    pub jitter: Jitter,
    /// Drop-tail buffer capacity in frames, *including* the frame in
    /// service (must be ≥ 1): an arrival finding the buffer full is lost.
    pub buffer_frames: usize,
    /// Loss probability applied by the existing loss machinery (not by
    /// the pacer itself, so netem buffer drops and random loss stay
    /// distinguishable in counters).
    pub loss: f64,
}

impl DirProfile {
    /// Serialization time of a `len_bytes` frame in microseconds,
    /// clamped to at least 1 µs so a frame never serializes instantly.
    pub fn serialization_us(&self, len_bytes: usize) -> u64 {
        let bits = (len_bytes as u128) * 8 * 1_000_000;
        ((bits / self.rate_bps.max(1) as u128) as u64).max(1)
    }

    /// Append the direction's binary encoding (the layout shared by
    /// `NetemLink` snapshots and cluster-checkpoint profile chunks).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.rate_bps.to_le_bytes());
        buf.extend_from_slice(&self.latency_us.to_le_bytes());
        match self.jitter {
            Jitter::None => buf.push(0),
            Jitter::Uniform { max_us } => {
                buf.push(1);
                buf.extend_from_slice(&max_us.to_le_bytes());
            }
            Jitter::LogNormal { median_us, sigma } => {
                buf.push(2);
                buf.extend_from_slice(&median_us.to_le_bytes());
                buf.extend_from_slice(&sigma.to_bits().to_le_bytes());
            }
        }
        buf.extend_from_slice(&(self.buffer_frames as u64).to_le_bytes());
        buf.extend_from_slice(&self.loss.to_bits().to_le_bytes());
    }

    /// Read an encoding produced by [`DirProfile::encode_into`] from a
    /// checkpoint cursor.
    pub fn decode(
        c: &mut crate::checkpoint::Cursor<'_>,
        tag: [u8; 4],
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        let rate_bps = c.u64()?;
        let latency_us = c.u64()?;
        let jitter = match c.u8()? {
            0 => Jitter::None,
            1 => Jitter::Uniform { max_us: c.u64()? },
            2 => Jitter::LogNormal { median_us: c.u64()?, sigma: c.f64()? },
            _ => return Err(crate::checkpoint::CheckpointError::BadChunk { tag }),
        };
        let buffer_frames = c.u64()? as usize;
        let loss = c.f64()?;
        Ok(DirProfile { rate_bps, latency_us, jitter, buffer_frames, loss })
    }

    /// Validate the direction's fields, naming the direction in errors.
    pub fn validate(&self, dir: &'static str) -> Result<(), ProfileError> {
        if self.rate_bps == 0 {
            return Err(ProfileError::ZeroRate { dir });
        }
        if self.buffer_frames < 1 {
            return Err(ProfileError::BufferTooSmall { dir });
        }
        let jitter_us = self.jitter.nominal_us();
        if jitter_us > self.latency_us {
            return Err(ProfileError::JitterExceedsLatency {
                dir,
                jitter_us,
                latency_us: self.latency_us,
            });
        }
        if let Jitter::LogNormal { sigma, .. } = self.jitter {
            if !(sigma.is_finite() && sigma > 0.0 && sigma <= 4.0) {
                return Err(ProfileError::BadSigma { dir, sigma });
            }
        }
        if !(self.loss.is_finite() && (0.0..=1.0).contains(&self.loss)) {
            return Err(ProfileError::LossOutOfRange { dir, loss: self.loss });
        }
        Ok(())
    }
}

/// A named bidirectional link profile. `forward` is the ring direction
/// `i → succ(i)`; `reverse` is `i → pred(i)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    /// Profile name (`lan`, `wan`, …) — the handle used by `POST /chaos
    /// netem <name>` and `ssrmin --profile <name>`.
    pub name: String,
    /// Physics of the `i → succ(i)` direction.
    pub forward: DirProfile,
    /// Physics of the `i → pred(i)` direction.
    pub reverse: DirProfile,
}

/// Names of the compiled-in profiles (mirrored under `profiles/`).
pub const BUILTIN_PROFILES: &[&str] = &["lan", "wan", "lossy-wan", "asymmetric"];

impl LinkProfile {
    /// A profile with identical physics in both directions.
    pub fn symmetric(name: &str, dir: DirProfile) -> Self {
        LinkProfile { name: name.to_string(), forward: dir, reverse: dir }
    }

    /// The compiled-in profile of that name, if any.
    pub fn builtin(name: &str) -> Option<Self> {
        let sym = |dir| Some(LinkProfile::symmetric(name, dir));
        match name {
            // Switched gigabit LAN: fat pipe, sub-millisecond latency.
            "lan" => sym(DirProfile {
                rate_bps: 1_000_000_000,
                latency_us: 100,
                jitter: Jitter::Uniform { max_us: 20 },
                buffer_frames: 128,
                loss: 0.0,
            }),
            // Continental WAN: 50 Mbit/s, 40 ms, lognormal jitter, light loss.
            "wan" => sym(DirProfile {
                rate_bps: 50_000_000,
                latency_us: 40_000,
                jitter: Jitter::LogNormal { median_us: 2_000, sigma: 0.4 },
                buffer_frames: 64,
                loss: 0.001,
            }),
            // Congested / wireless WAN: thin, far, jittery, 5% loss.
            "lossy-wan" => sym(DirProfile {
                rate_bps: 10_000_000,
                latency_us: 60_000,
                jitter: Jitter::LogNormal { median_us: 5_000, sigma: 0.6 },
                buffer_frames: 32,
                loss: 0.05,
            }),
            // ADSL-shaped asymmetry: fast down, thin jittery up.
            "asymmetric" => Some(LinkProfile {
                name: name.to_string(),
                forward: DirProfile {
                    rate_bps: 100_000_000,
                    latency_us: 10_000,
                    jitter: Jitter::Uniform { max_us: 500 },
                    buffer_frames: 64,
                    loss: 0.0,
                },
                reverse: DirProfile {
                    rate_bps: 5_000_000,
                    latency_us: 30_000,
                    jitter: Jitter::Uniform { max_us: 5_000 },
                    buffer_frames: 16,
                    loss: 0.01,
                },
            }),
            _ => None,
        }
    }

    /// Parse a profile from text: a JSON object if the first non-blank
    /// byte is `{`, the TOML subset otherwise.
    pub fn parse(text: &str) -> Result<Self, ProfileError> {
        let sections = if text.trim_start().starts_with('{') {
            parse_json_sections(text)?
        } else {
            parse_toml_sections(text)?
        };
        Self::from_sections(sections)
    }

    /// Resolve a profile by name or path: a builtin name first, then
    /// `profiles/<name>.toml` relative to the working directory, then
    /// `name` taken as a literal file path.
    pub fn resolve(name: &str) -> Result<Self, ProfileError> {
        if let Some(p) = Self::builtin(name) {
            return Ok(p);
        }
        for candidate in [format!("profiles/{name}.toml"), name.to_string()] {
            if let Ok(text) = std::fs::read_to_string(&candidate) {
                return Self::parse(&text);
            }
        }
        Err(ProfileError::UnknownProfile(name.to_string()))
    }

    /// Validate both directions.
    pub fn validate(&self) -> Result<(), ProfileError> {
        self.forward.validate("forward")?;
        self.reverse.validate("reverse")
    }

    fn from_sections(sections: Sections) -> Result<Self, ProfileError> {
        let name = match sections.get("").and_then(|top| top.get("name")) {
            Some(Value::Str(s)) => s.clone(),
            Some(_) => return Err(ProfileError::parse("`name` must be a string")),
            None => return Err(ProfileError::parse("missing top-level `name`")),
        };
        let forward = match sections.get("forward") {
            Some(map) => dir_from_map(map)?,
            None => return Err(ProfileError::parse("missing [forward] section")),
        };
        let reverse = match sections.get("reverse") {
            Some(map) => dir_from_map(map)?,
            None => forward,
        };
        for key in sections.keys() {
            if !matches!(key.as_str(), "" | "forward" | "reverse") {
                return Err(ProfileError::UnknownKey(format!("[{key}]")));
            }
        }
        let profile = LinkProfile { name, forward, reverse };
        profile.validate()?;
        Ok(profile)
    }
}

impl fmt::Display for LinkProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = |d: &DirProfile| {
            format!(
                "{} bit/s, {} µs latency, jitter {:?}, buffer {} frames, loss {}",
                d.rate_bps, d.latency_us, d.jitter, d.buffer_frames, d.loss
            )
        };
        write!(f, "{}: fwd {}; rev {}", self.name, dir(&self.forward), dir(&self.reverse))
    }
}

/// Why a profile failed to load or validate.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// `rate_bps` is zero (a link that never transmits).
    ZeroRate {
        /// Offending direction (`forward` / `reverse`).
        dir: &'static str,
    },
    /// `buffer_frames` is zero — the buffer must hold at least the frame
    /// in service.
    BufferTooSmall {
        /// Offending direction.
        dir: &'static str,
    },
    /// The nominal jitter exceeds the propagation latency (deliveries
    /// would routinely reorder against the profile's own intent).
    JitterExceedsLatency {
        /// Offending direction.
        dir: &'static str,
        /// Nominal jitter (uniform max / lognormal median) in µs.
        jitter_us: u64,
        /// Configured latency in µs.
        latency_us: u64,
    },
    /// Lognormal sigma not in `(0, 4]`.
    BadSigma {
        /// Offending direction.
        dir: &'static str,
        /// The rejected value.
        sigma: f64,
    },
    /// Loss probability outside `[0, 1]`.
    LossOutOfRange {
        /// Offending direction.
        dir: &'static str,
        /// The rejected value.
        loss: f64,
    },
    /// The text did not parse (bad syntax, wrong type, bad rate suffix).
    Parse(String),
    /// A key or section the schema does not define.
    UnknownKey(String),
    /// Neither a builtin profile nor a readable file.
    UnknownProfile(String),
}

impl ProfileError {
    fn parse(msg: impl Into<String>) -> Self {
        ProfileError::Parse(msg.into())
    }
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::ZeroRate { dir } => write!(f, "netem {dir}: rate must be positive"),
            ProfileError::BufferTooSmall { dir } => {
                write!(f, "netem {dir}: buffer must hold at least 1 frame")
            }
            ProfileError::JitterExceedsLatency { dir, jitter_us, latency_us } => {
                write!(f, "netem {dir}: jitter {jitter_us} µs exceeds latency {latency_us} µs")
            }
            ProfileError::BadSigma { dir, sigma } => {
                write!(f, "netem {dir}: lognormal sigma {sigma} not in (0, 4]")
            }
            ProfileError::LossOutOfRange { dir, loss } => {
                write!(f, "netem {dir}: loss {loss} not a probability")
            }
            ProfileError::Parse(msg) => write!(f, "netem profile parse error: {msg}"),
            ProfileError::UnknownKey(k) => write!(f, "netem profile: unknown key {k}"),
            ProfileError::UnknownProfile(name) => write!(
                f,
                "unknown netem profile {name:?} (builtins: lan, wan, lossy-wan, asymmetric; \
                 or a profiles/<name>.toml path)"
            ),
        }
    }
}

impl std::error::Error for ProfileError {}

// ---------------------------------------------------------------------
// The shared intermediate form: section name → key → scalar value. The
// TOML subset and the JSON object syntax both lower to this.

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
}

type Sections = HashMap<String, HashMap<String, Value>>;

fn dir_from_map(map: &HashMap<String, Value>) -> Result<DirProfile, ProfileError> {
    for key in map.keys() {
        if !matches!(
            key.as_str(),
            "rate"
                | "latency_us"
                | "jitter"
                | "jitter_us"
                | "jitter_sigma"
                | "buffer_frames"
                | "loss"
        ) {
            return Err(ProfileError::UnknownKey(key.clone()));
        }
    }
    let rate_bps = match map.get("rate") {
        Some(Value::Str(s)) => parse_rate(s)?,
        Some(Value::Num(n)) => as_u64("rate", *n)?,
        None => return Err(ProfileError::parse("missing `rate`")),
    };
    let latency_us = match map.get("latency_us") {
        Some(Value::Num(n)) => as_u64("latency_us", *n)?,
        Some(Value::Str(_)) => return Err(ProfileError::parse("`latency_us` must be a number")),
        None => return Err(ProfileError::parse("missing `latency_us`")),
    };
    let jitter_kind = match map.get("jitter") {
        Some(Value::Str(s)) => s.as_str(),
        Some(Value::Num(_)) => return Err(ProfileError::parse("`jitter` must be a string")),
        None => "none",
    };
    let jitter_us = match map.get("jitter_us") {
        Some(Value::Num(n)) => as_u64("jitter_us", *n)?,
        Some(Value::Str(_)) => return Err(ProfileError::parse("`jitter_us` must be a number")),
        None => 0,
    };
    let jitter_sigma = match map.get("jitter_sigma") {
        Some(Value::Num(n)) => *n,
        Some(Value::Str(_)) => return Err(ProfileError::parse("`jitter_sigma` must be a number")),
        None => 0.0,
    };
    let jitter = match jitter_kind {
        "none" => Jitter::None,
        "uniform" => Jitter::Uniform { max_us: jitter_us },
        "lognormal" => Jitter::LogNormal { median_us: jitter_us, sigma: jitter_sigma },
        other => return Err(ProfileError::parse(format!("unknown jitter kind {other:?}"))),
    };
    let buffer_frames = match map.get("buffer_frames") {
        Some(Value::Num(n)) => as_u64("buffer_frames", *n)? as usize,
        Some(Value::Str(_)) => return Err(ProfileError::parse("`buffer_frames` must be a number")),
        None => return Err(ProfileError::parse("missing `buffer_frames`")),
    };
    let loss = match map.get("loss") {
        Some(Value::Num(n)) => *n,
        Some(Value::Str(_)) => return Err(ProfileError::parse("`loss` must be a number")),
        None => 0.0,
    };
    Ok(DirProfile { rate_bps, latency_us, jitter, buffer_frames, loss })
}

fn as_u64(key: &str, n: f64) -> Result<u64, ProfileError> {
    if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
        Ok(n as u64)
    } else {
        Err(ProfileError::parse(format!("`{key}` must be a non-negative integer, got {n}")))
    }
}

/// Parse a rate string: a bare integer in bits/second or an integer with a
/// `kbit` / `mbit` / `gbit` suffix (decimal multipliers, like `tc`).
fn parse_rate(s: &str) -> Result<u64, ProfileError> {
    let s = s.trim().to_ascii_lowercase();
    let (digits, mult) = if let Some(d) = s.strip_suffix("kbit") {
        (d, 1_000u64)
    } else if let Some(d) = s.strip_suffix("mbit") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix("gbit") {
        (d, 1_000_000_000)
    } else {
        (s.as_str(), 1)
    };
    digits
        .trim()
        .parse::<u64>()
        .ok()
        .and_then(|v| v.checked_mul(mult))
        .ok_or_else(|| ProfileError::parse(format!("bad rate {s:?}")))
}

// ---------------------------------------------------------------------
// TOML subset: `key = value` lines, `[section]` headers, `#` comments.

fn parse_toml_sections(text: &str) -> Result<Sections, ProfileError> {
    let mut sections = Sections::new();
    let mut current = String::new();
    sections.entry(current.clone()).or_default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            current = inner.trim().to_string();
            sections.entry(current.clone()).or_default();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ProfileError::parse(format!("line {}: expected key = value", lineno + 1)));
        };
        let value = parse_scalar(value.trim())
            .ok_or_else(|| ProfileError::parse(format!("line {}: bad value", lineno + 1)))?;
        sections
            .get_mut(&current)
            .expect("section entry exists")
            .insert(key.trim().to_string(), value);
    }
    Ok(sections)
}

/// Strip a `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(s: &str) -> Option<Value> {
    if let Some(inner) = s.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        if inner.contains('"') {
            return None;
        }
        return Some(Value::Str(inner.to_string()));
    }
    s.replace('_', "").parse::<f64>().ok().filter(|n| n.is_finite()).map(Value::Num)
}

// ---------------------------------------------------------------------
// JSON subset: one object of scalars and one level of nested objects.

fn parse_json_sections(text: &str) -> Result<Sections, ProfileError> {
    let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
    let mut sections = Sections::new();
    sections.entry(String::new()).or_default();
    p.ws();
    p.expect(b'{')?;
    loop {
        p.ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        if p.peek() == Some(b'{') {
            p.expect(b'{')?;
            let map = sections.entry(key).or_default();
            loop {
                p.ws();
                if p.eat(b'}') {
                    break;
                }
                let k = p.string()?;
                p.ws();
                p.expect(b':')?;
                p.ws();
                map.insert(k, p.scalar()?);
                p.ws();
                if !p.eat(b',') {
                    p.ws();
                    p.expect(b'}')?;
                    break;
                }
            }
        } else {
            let v = p.scalar()?;
            sections.get_mut("").expect("top section exists").insert(key, v);
        }
        p.ws();
        if !p.eat(b',') {
            p.ws();
            p.expect(b'}')?;
            break;
        }
    }
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(ProfileError::parse("trailing bytes after JSON object"));
    }
    Ok(sections)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }
    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }
    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn expect(&mut self, b: u8) -> Result<(), ProfileError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(ProfileError::parse(format!("expected {:?} at byte {}", b as char, self.pos)))
        }
    }
    fn string(&mut self) -> Result<String, ProfileError> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| ProfileError::parse("non-UTF-8 string"))?;
                if s.contains('\\') {
                    return Err(ProfileError::parse("escape sequences unsupported"));
                }
                self.pos += 1;
                return Ok(s.to_string());
            }
            self.pos += 1;
        }
        Err(ProfileError::parse("unterminated string"))
    }
    fn scalar(&mut self) -> Result<Value, ProfileError> {
        if self.peek() == Some(b'"') {
            return self.string().map(Value::Str);
        }
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Value::Num)
            .ok_or_else(|| ProfileError::parse(format!("bad scalar at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builtins_exist_and_validate() {
        for name in BUILTIN_PROFILES {
            let p = LinkProfile::builtin(name).unwrap_or_else(|| panic!("builtin {name}"));
            assert_eq!(p.name, *name);
            p.validate().unwrap();
        }
        assert!(LinkProfile::builtin("dialup").is_none());
    }

    #[test]
    fn toml_roundtrip_matches_builtin() {
        let text = r#"
name = "wan"

[forward]
rate = "50mbit"     # 50 Mbit/s
latency_us = 40000
jitter = "lognormal"
jitter_us = 2000
jitter_sigma = 0.4
buffer_frames = 64
loss = 0.001
"#;
        let parsed = LinkProfile::parse(text).unwrap();
        assert_eq!(parsed, LinkProfile::builtin("wan").unwrap());
    }

    #[test]
    fn json_parses_per_direction() {
        let text = r#"{"name":"adsl",
            "forward": {"rate":"100mbit","latency_us":10000,"jitter":"uniform",
                        "jitter_us":500,"buffer_frames":64},
            "reverse": {"rate":"5mbit","latency_us":30000,"jitter":"uniform",
                        "jitter_us":5000,"buffer_frames":16,"loss":0.01}}"#;
        let parsed = LinkProfile::parse(text).unwrap();
        let builtin = LinkProfile::builtin("asymmetric").unwrap();
        assert_eq!(parsed.forward, builtin.forward);
        assert_eq!(parsed.reverse, builtin.reverse);
    }

    #[test]
    fn reverse_defaults_to_forward() {
        let p = LinkProfile::parse(
            "name = \"x\"\n[forward]\nrate = 1000000\nlatency_us = 10\nbuffer_frames = 4\n",
        )
        .unwrap();
        assert_eq!(p.forward, p.reverse);
        assert_eq!(p.forward.jitter, Jitter::None);
    }

    #[test]
    fn typed_validation_errors() {
        let mk = |rate, buffer, jitter, latency| {
            LinkProfile::symmetric(
                "t",
                DirProfile {
                    rate_bps: rate,
                    latency_us: latency,
                    jitter,
                    buffer_frames: buffer,
                    loss: 0.0,
                },
            )
            .validate()
        };
        assert_eq!(mk(0, 4, Jitter::None, 10), Err(ProfileError::ZeroRate { dir: "forward" }));
        assert_eq!(
            mk(1000, 0, Jitter::None, 10),
            Err(ProfileError::BufferTooSmall { dir: "forward" })
        );
        assert_eq!(
            mk(1000, 4, Jitter::Uniform { max_us: 50 }, 10),
            Err(ProfileError::JitterExceedsLatency {
                dir: "forward",
                jitter_us: 50,
                latency_us: 10
            })
        );
        assert!(matches!(
            mk(1000, 4, Jitter::LogNormal { median_us: 5, sigma: -1.0 }, 10),
            Err(ProfileError::BadSigma { .. })
        ));
        let mut bad_loss = LinkProfile::builtin("lan").unwrap();
        bad_loss.reverse.loss = 1.5;
        assert_eq!(
            bad_loss.validate(),
            Err(ProfileError::LossOutOfRange { dir: "reverse", loss: 1.5 })
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(LinkProfile::parse("nonsense"), Err(ProfileError::Parse(_))));
        assert!(matches!(
            LinkProfile::parse(
                "name = \"x\"\n[forward]\nrate = \"fast\"\nlatency_us = 1\nbuffer_frames = 1\n"
            ),
            Err(ProfileError::Parse(_))
        ));
        assert!(matches!(
            LinkProfile::parse("name = \"x\"\n[forward]\nrate = 1\nlatency_us = 1\nbuffer_frames = 1\nwombat = 3\n"),
            Err(ProfileError::UnknownKey(_))
        ));
        assert!(matches!(
            LinkProfile::parse("name = \"x\"\n[sideways]\nrate = 1\n"),
            Err(ProfileError::Parse(_)) | Err(ProfileError::UnknownKey(_))
        ));
        assert!(matches!(
            LinkProfile::resolve("no-such-profile-anywhere"),
            Err(ProfileError::UnknownProfile(_))
        ));
    }

    #[test]
    fn rate_suffixes() {
        assert_eq!(parse_rate("250kbit").unwrap(), 250_000);
        assert_eq!(parse_rate("10mbit").unwrap(), 10_000_000);
        assert_eq!(parse_rate("1gbit").unwrap(), 1_000_000_000);
        assert_eq!(parse_rate("123456").unwrap(), 123_456);
        assert!(parse_rate("fast").is_err());
    }

    #[test]
    fn serialization_time_scales_with_length_and_rate() {
        let d = LinkProfile::builtin("lan").unwrap().forward;
        // 1 Gbit/s: 125 bytes = 1000 bits = 1 µs.
        assert_eq!(d.serialization_us(125), 1);
        assert_eq!(d.serialization_us(1250), 10);
        let slow = DirProfile { rate_bps: 1_000_000, ..d };
        assert_eq!(slow.serialization_us(125), 1000);
        assert_eq!(slow.serialization_us(0), 1, "clamped to 1 µs");
    }

    #[test]
    fn jitter_draw_counts_are_fixed() {
        // Each variant must consume a fixed number of draws regardless of
        // outcome — the determinism contract of checkpointed streams.
        let drained = |j: Jitter, n: usize| {
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..n {
                j.sample(&mut rng);
            }
            rng.state()
        };
        let after = |draws: usize| {
            let mut r = StdRng::seed_from_u64(9);
            for _ in 0..draws {
                let _ = rand::RngCore::next_u64(&mut r);
            }
            r.state()
        };
        assert_eq!(drained(Jitter::None, 10), after(0));
        assert_eq!(drained(Jitter::Uniform { max_us: 7 }, 10), after(10));
        assert_eq!(drained(Jitter::Uniform { max_us: 0 }, 10), after(10));
        assert_eq!(drained(Jitter::LogNormal { median_us: 5, sigma: 0.5 }, 10), after(20));
    }

    #[test]
    fn lognormal_jitter_has_a_long_but_bounded_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let j = Jitter::LogNormal { median_us: 2_000, sigma: 0.6 };
        let samples: Vec<u64> = (0..10_000).map(|_| j.sample(&mut rng)).collect();
        let over_median = samples.iter().filter(|&&s| s > 2_000).count();
        assert!((4000..6000).contains(&over_median), "median property: {over_median}");
        assert!(samples.iter().all(|&s| s <= 2_000 * 64), "tail clamp");
        assert!(samples.iter().any(|&s| s > 6_000), "tail exists");
    }
}
