//! # ssr-netem — realistic link models and deterministic checkpointing
//!
//! Every envelope measured before this crate existed assumed lossy-but-
//! instant links: the chaos proxy drops, delays, duplicates and corrupts,
//! but a link had no bandwidth, no queue, and the same delay in both
//! directions. This crate adds the missing physics as a *seeded, std-only*
//! emulator shared by the discrete-event simulator (`ssr-mpnet`) and the
//! UDP chaos proxy (`ssr-net`):
//!
//! * [`profile`] — link profiles: per-direction rate (serialization
//!   delay), propagation latency, jitter distribution (uniform or
//!   lognormal), a finite drop-tail buffer and a loss rate, parsed from a
//!   TOML-subset or JSON profile file (`profiles/*.toml` at the repo root)
//!   with builtin `lan` / `wan` / `lossy-wan` / `asymmetric` profiles;
//! * [`link`] — [`NetemLink`], the virtual-time emulator core: offered a
//!   frame at time *t*, it either tail-drops (buffer full) or answers the
//!   exact microsecond the frame finishes serializing, propagating and
//!   jittering. The DES consumes the verdict in simulated ticks; the UDP
//!   proxy maps the same arithmetic onto wall-clock instants — one model,
//!   two clocks;
//! * [`rng`] — per-link deterministic RNG streams (independent of the
//!   loss-channel streams) plus the Box–Muller normal sampler behind
//!   lognormal jitter;
//! * [`checkpoint`] — the versioned, CRC-32-sealed chunk codec used by
//!   cluster checkpoints: a whole run (replica states, in-flight frames,
//!   RNG cursors, fault cursors) serializes to one file that `ssrmin
//!   replay` restores for a byte-identical re-run.
//!
//! Everything here is deterministic by construction: the number of RNG
//! draws a verdict consumes is part of each type's documented contract, so
//! same seed + same profile ⇒ the same delivery schedule, and a restored
//! checkpoint resumes the exact streams the original run would have drawn.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod link;
pub mod profile;
pub mod rng;

pub use checkpoint::{CheckpointError, ChunkReader, ChunkWriter, Cursor};
pub use link::{NetemLink, NetemStats, Verdict};
pub use profile::{DirProfile, Jitter, LinkProfile, ProfileError, BUILTIN_PROFILES};
pub use rng::{link_rng, link_stream_seed, standard_normal};
