//! [`NetemLink`] — the virtual-time emulator core of one *direction* of a
//! link: a FlowForge-style rate + latency + finite-buffer model with a
//! seeded jitter stream.
//!
//! The model is a single-server FIFO queue in front of a propagation
//! delay. Offered a frame at time `t` (microseconds on whatever clock the
//! caller runs — simulated ticks in the DES, elapsed wall-clock in the
//! UDP proxy):
//!
//! 1. frames whose serialization finished before `t` have left the
//!    buffer; if the remaining occupancy is `buffer_frames`, the new
//!    frame is **tail-dropped** (no RNG draw — drops must not desync the
//!    jitter stream);
//! 2. otherwise the frame departs the serializer at
//!    `max(t, busy_until) + len·8/rate`, and
//! 3. is delivered at `depart + latency + jitter`, with jitter drawn from
//!    the link's own RNG stream (draw count fixed per jitter kind).
//!
//! Deliveries can reorder when jitter is large relative to spacing —
//! exactly like real datagrams — but serialization itself is FIFO.
//! The whole state (profile, RNG cursor, queue, counters) serializes into
//! a checkpoint chunk and restores bit-exactly.

use std::collections::VecDeque;

use rand::rngs::StdRng;

use crate::checkpoint::{put_bytes, CheckpointError, Cursor};
use crate::profile::DirProfile;
use crate::rng::link_rng;

/// The emulator's answer to an offered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The frame fits: it is delivered at this absolute time (µs).
    DeliverAt(u64),
    /// The drop-tail buffer was full; the frame is lost.
    Dropped,
}

/// Monotonic counters of one emulated link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetemStats {
    /// Frames offered to the link.
    pub offered: u64,
    /// Frames tail-dropped by the finite buffer.
    pub buffer_drops: u64,
    /// Frames scheduled for delivery.
    pub delivered: u64,
}

/// One direction of an emulated link (see the module docs for the model).
#[derive(Debug, Clone, PartialEq)]
pub struct NetemLink {
    profile: DirProfile,
    rng: StdRng,
    /// Time the serializer frees up (µs).
    busy_until: u64,
    /// Departure times of frames still occupying the buffer (FIFO:
    /// monotonically non-decreasing), including the frame in service.
    departures: VecDeque<u64>,
    stats: NetemStats,
}

impl NetemLink {
    /// A fresh link under `profile`, with the jitter stream derived from
    /// the run seed and the directed link index (see
    /// [`crate::rng::link_stream_seed`]).
    pub fn new(profile: DirProfile, seed: u64, link: usize) -> Self {
        NetemLink {
            profile,
            rng: link_rng(seed, link),
            busy_until: 0,
            departures: VecDeque::new(),
            stats: NetemStats::default(),
        }
    }

    /// The profile in force.
    pub fn profile(&self) -> &DirProfile {
        &self.profile
    }

    /// Counters so far.
    pub fn stats(&self) -> &NetemStats {
        &self.stats
    }

    /// Frames currently occupying the buffer as of time `now`.
    pub fn queue_depth(&self, now: u64) -> usize {
        self.departures.iter().filter(|&&d| d > now).count()
    }

    /// Offer a `len_bytes` frame at absolute time `now_us`.
    pub fn offer(&mut self, now_us: u64, len_bytes: usize) -> Verdict {
        self.stats.offered += 1;
        while matches!(self.departures.front(), Some(&d) if d <= now_us) {
            self.departures.pop_front();
        }
        if self.departures.len() >= self.profile.buffer_frames {
            self.stats.buffer_drops += 1;
            return Verdict::Dropped;
        }
        let depart = now_us.max(self.busy_until) + self.profile.serialization_us(len_bytes);
        self.busy_until = depart;
        self.departures.push_back(depart);
        let jitter = self.profile.jitter.sample(&mut self.rng);
        self.stats.delivered += 1;
        Verdict::DeliverAt(depart + self.profile.latency_us + jitter)
    }

    /// Swap the profile at runtime (a `POST /chaos netem <name>` flip).
    /// In-queue frames keep their old departure times; the RNG stream and
    /// counters continue uninterrupted.
    pub fn set_profile(&mut self, profile: DirProfile) {
        self.profile = profile;
    }

    // -- checkpointing ------------------------------------------------

    /// Serialize the full link state (profile, RNG cursor, queue,
    /// counters) into a checkpoint chunk payload.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(96 + 8 * self.departures.len());
        self.profile.encode_into(&mut buf);
        for w in self.rng.state() {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        buf.extend_from_slice(&self.busy_until.to_le_bytes());
        let mut queue = Vec::with_capacity(8 * self.departures.len());
        for &d in &self.departures {
            queue.extend_from_slice(&d.to_le_bytes());
        }
        put_bytes(&mut buf, &queue);
        buf.extend_from_slice(&self.stats.offered.to_le_bytes());
        buf.extend_from_slice(&self.stats.buffer_drops.to_le_bytes());
        buf.extend_from_slice(&self.stats.delivered.to_le_bytes());
        buf
    }

    /// Restore a link from a [`NetemLink::snapshot`] payload.
    pub fn restore(tag: [u8; 4], bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut c = Cursor::new(tag, bytes);
        let profile = DirProfile::decode(&mut c, tag)?;
        let rng_state = [c.u64()?, c.u64()?, c.u64()?, c.u64()?];
        let busy_until = c.u64()?;
        let queue_bytes = c.bytes()?;
        if queue_bytes.len() % 8 != 0 {
            return Err(CheckpointError::BadChunk { tag });
        }
        let departures: VecDeque<u64> = queue_bytes
            .chunks_exact(8)
            .map(|w| u64::from_le_bytes(w.try_into().expect("8 bytes")))
            .collect();
        let stats = NetemStats { offered: c.u64()?, buffer_drops: c.u64()?, delivered: c.u64()? };
        c.finish()?;
        Ok(NetemLink { profile, rng: StdRng::from_state(rng_state), busy_until, departures, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Jitter, LinkProfile};

    fn lan() -> DirProfile {
        LinkProfile::builtin("lan").unwrap().forward
    }

    #[test]
    fn delivery_time_is_serialization_plus_latency_plus_jitter() {
        let mut p = lan();
        p.jitter = Jitter::None;
        let mut link = NetemLink::new(p, 1, 0);
        // 125 bytes at 1 Gbit/s = 1 µs serialization; latency 100 µs.
        assert_eq!(link.offer(1_000, 125), Verdict::DeliverAt(1_101));
        // Next frame queues behind the first: departs at 1002.
        assert_eq!(link.offer(1_000, 125), Verdict::DeliverAt(1_102));
        assert_eq!(link.queue_depth(1_000), 2);
        assert_eq!(link.queue_depth(1_001), 1);
        assert_eq!(link.queue_depth(1_002), 0);
    }

    #[test]
    fn serializer_idles_then_resumes() {
        let mut p = lan();
        p.jitter = Jitter::None;
        let mut link = NetemLink::new(p, 1, 0);
        assert_eq!(link.offer(10, 125), Verdict::DeliverAt(111));
        // Long gap: serializer is idle again, no queueing.
        assert_eq!(link.offer(5_000, 125), Verdict::DeliverAt(5_101));
    }

    #[test]
    fn drop_tail_when_buffer_full() {
        let mut p = lan();
        p.jitter = Jitter::None;
        p.rate_bps = 1_000_000; // 1 Mbit/s: 125 bytes = 1 ms each
        p.buffer_frames = 2;
        let mut link = NetemLink::new(p, 1, 0);
        assert!(matches!(link.offer(0, 125), Verdict::DeliverAt(_)));
        assert!(matches!(link.offer(0, 125), Verdict::DeliverAt(_)));
        assert_eq!(link.offer(0, 125), Verdict::Dropped, "third frame finds the buffer full");
        assert_eq!(link.stats().buffer_drops, 1);
        // After the first frame drains, one slot frees up.
        assert!(matches!(link.offer(1_500, 125), Verdict::DeliverAt(_)));
        assert_eq!(link.stats().offered, 4);
        assert_eq!(link.stats().delivered, 3);
    }

    #[test]
    fn drops_consume_no_rng_draw() {
        let mut p = lan();
        p.rate_bps = 1_000_000;
        p.buffer_frames = 1;
        p.jitter = Jitter::Uniform { max_us: 10 };
        let mut with_drop = NetemLink::new(p, 7, 3);
        let mut without = NetemLink::new(p, 7, 3);
        let a1 = with_drop.offer(0, 125);
        assert_eq!(with_drop.offer(0, 125), Verdict::Dropped);
        let a2 = with_drop.offer(10_000, 125);
        assert_eq!(without.offer(0, 125), a1);
        assert_eq!(without.offer(10_000, 125), a2, "a drop must not shift the jitter stream");
    }

    #[test]
    fn deterministic_per_seed_and_link() {
        let p = LinkProfile::builtin("wan").unwrap().forward;
        let run = |seed, link| {
            let mut l = NetemLink::new(p, seed, link);
            (0..200u64).map(|i| l.offer(i * 50, 64)).collect::<Vec<_>>()
        };
        assert_eq!(run(5, 2), run(5, 2));
        assert_ne!(run(5, 2), run(5, 3), "different links draw different jitter");
        assert_ne!(run(5, 2), run(6, 2), "different seeds draw different jitter");
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let p = LinkProfile::builtin("lossy-wan").unwrap().forward;
        let mut original = NetemLink::new(p, 11, 4);
        for i in 0..57u64 {
            original.offer(i * 200, 80);
        }
        let snap = original.snapshot();
        let mut restored = NetemLink::restore(*b"test", &snap).unwrap();
        assert_eq!(restored, original);
        for i in 57..200u64 {
            assert_eq!(original.offer(i * 200, 80), restored.offer(i * 200, 80), "offer {i}");
        }
        assert_eq!(original.stats(), restored.stats());
    }

    #[test]
    fn restore_rejects_damage() {
        let snap = NetemLink::new(lan(), 1, 0).snapshot();
        assert!(NetemLink::restore(*b"test", &snap[..snap.len() - 1]).is_err());
        let mut extra = snap.clone();
        extra.push(0);
        assert!(NetemLink::restore(*b"test", &extra).is_err());
        let mut bad_jitter = snap.clone();
        bad_jitter[16] = 9; // jitter kind byte
        assert!(NetemLink::restore(*b"test", &bad_jitter).is_err());
    }

    #[test]
    fn runtime_profile_swap_keeps_stream_and_queue() {
        let mut link = NetemLink::new(lan(), 3, 1);
        let v = link.offer(0, 125);
        assert!(matches!(v, Verdict::DeliverAt(_)));
        let wan = LinkProfile::builtin("wan").unwrap().forward;
        link.set_profile(wan);
        assert_eq!(link.profile(), &wan);
        match link.offer(10, 125) {
            Verdict::DeliverAt(at) => assert!(at >= wan.latency_us, "wan latency applies"),
            Verdict::Dropped => panic!("buffer cannot be full"),
        }
        assert_eq!(link.stats().offered, 2);
    }
}
