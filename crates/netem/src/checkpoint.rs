//! The versioned, CRC-32-sealed chunk codec behind cluster checkpoints.
//!
//! A checkpoint file is a flat sequence of tagged chunks:
//!
//! ```text
//! offset  len  field
//! 0       4    magic "SSRC"
//! 4       2    format version (u16 LE)
//! 6       2    writer-defined kind (u16 LE) — what the chunks describe
//! 8       …    chunks: [tag [u8;4]] [len u32 LE] [payload]
//! end     4    CRC-32 (IEEE) over everything before it
//! ```
//!
//! The CRC-32 is the same `ssr_core::crc32` already sealing wire frames
//! and replica snapshots, so a checkpoint corrupted at rest fails closed
//! exactly like a corrupted snapshot does. Repeated tags are allowed (one
//! `node` chunk per ring node, say) and order is preserved; readers that
//! encounter an unknown tag skip it, which is what makes the format
//! versionable — new writers may add chunks without breaking old readers
//! of the same version.

use std::fmt;

use ssr_core::crc32;

/// Magic bytes opening every checkpoint file.
pub const MAGIC: [u8; 4] = *b"SSRC";

/// Current checkpoint format version.
pub const VERSION: u16 = 1;

/// Why a byte sequence failed to parse as a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Fewer bytes than the minimal header + CRC.
    TooShort {
        /// Observed length.
        len: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// The observed bytes.
        found: [u8; 4],
    },
    /// Unsupported format version.
    BadVersion {
        /// Version stored in the file.
        found: u16,
    },
    /// The file describes a different kind of run than the reader expects
    /// (e.g. a DES checkpoint fed to a tool expecting something else).
    WrongKind {
        /// Kind stored in the file.
        found: u16,
        /// Kind the reader expected.
        expected: u16,
    },
    /// CRC-32 over the body does not match the stored checksum.
    BadChecksum {
        /// Computed over the stored bytes.
        computed: u32,
        /// Stored in the file.
        stored: u32,
    },
    /// A chunk length points past the end of the file.
    Truncated,
    /// A chunk the reader requires is absent.
    MissingChunk {
        /// The required tag.
        tag: [u8; 4],
    },
    /// A chunk payload did not decode (wrong length, bad enum tag, …).
    BadChunk {
        /// The offending tag.
        tag: [u8; 4],
    },
}

fn tag_str(tag: &[u8; 4]) -> String {
    tag.iter().map(|&b| if b.is_ascii_graphic() { b as char } else { '?' }).collect()
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::TooShort { len } => write!(f, "checkpoint too short: {len} bytes"),
            CheckpointError::BadMagic { found } => {
                write!(f, "bad checkpoint magic {found:02x?}")
            }
            CheckpointError::BadVersion { found } => {
                write!(f, "unsupported checkpoint version {found} (expected {VERSION})")
            }
            CheckpointError::WrongKind { found, expected } => {
                write!(f, "checkpoint kind {found} does not match expected kind {expected}")
            }
            CheckpointError::BadChecksum { computed, stored } => write!(
                f,
                "checkpoint checksum mismatch: computed {computed:#010x}, stored {stored:#010x}"
            ),
            CheckpointError::Truncated => write!(f, "checkpoint truncated mid-chunk"),
            CheckpointError::MissingChunk { tag } => {
                write!(f, "checkpoint missing required chunk {:?}", tag_str(tag))
            }
            CheckpointError::BadChunk { tag } => {
                write!(f, "checkpoint chunk {:?} did not decode", tag_str(tag))
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Incremental checkpoint writer.
#[derive(Debug)]
pub struct ChunkWriter {
    buf: Vec<u8>,
}

impl ChunkWriter {
    /// Start a checkpoint of the given writer-defined kind.
    pub fn new(kind: u16) -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&kind.to_le_bytes());
        ChunkWriter { buf }
    }

    /// Append one tagged chunk.
    pub fn chunk(&mut self, tag: [u8; 4], payload: &[u8]) {
        self.buf.extend_from_slice(&tag);
        self.buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
    }

    /// Seal the checkpoint with its CRC-32 and return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

/// A parsed checkpoint: verified header + chunk directory.
#[derive(Debug)]
pub struct ChunkReader<'a> {
    kind: u16,
    chunks: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> ChunkReader<'a> {
    /// Parse and verify a checkpoint produced by [`ChunkWriter`].
    pub fn parse(bytes: &'a [u8]) -> Result<Self, CheckpointError> {
        const HEADER: usize = 8;
        const CRC: usize = 4;
        if bytes.len() < HEADER + CRC {
            return Err(CheckpointError::TooShort { len: bytes.len() });
        }
        let found: [u8; 4] = bytes[..4].try_into().expect("4 bytes");
        if found != MAGIC {
            return Err(CheckpointError::BadMagic { found });
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(CheckpointError::BadVersion { found: version });
        }
        let kind = u16::from_le_bytes([bytes[6], bytes[7]]);
        let body = &bytes[..bytes.len() - CRC];
        let stored = u32::from_le_bytes(
            bytes[bytes.len() - CRC..].try_into().expect("exactly 4 bytes remain"),
        );
        let computed = crc32(body);
        if computed != stored {
            return Err(CheckpointError::BadChecksum { computed, stored });
        }
        let mut chunks = Vec::new();
        let mut pos = HEADER;
        while pos < body.len() {
            if body.len() - pos < 8 {
                return Err(CheckpointError::Truncated);
            }
            let tag: [u8; 4] = body[pos..pos + 4].try_into().expect("4 bytes");
            let len =
                u32::from_le_bytes(body[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
            pos += 8;
            if body.len() - pos < len {
                return Err(CheckpointError::Truncated);
            }
            chunks.push((tag, &body[pos..pos + len]));
            pos += len;
        }
        Ok(ChunkReader { kind, chunks })
    }

    /// Parse, additionally requiring the writer-defined kind.
    pub fn parse_kind(bytes: &'a [u8], expected: u16) -> Result<Self, CheckpointError> {
        let reader = Self::parse(bytes)?;
        if reader.kind != expected {
            return Err(CheckpointError::WrongKind { found: reader.kind, expected });
        }
        Ok(reader)
    }

    /// The writer-defined kind stored in the header.
    pub fn kind(&self) -> u16 {
        self.kind
    }

    /// First chunk with `tag`, if present.
    pub fn find(&self, tag: [u8; 4]) -> Option<&'a [u8]> {
        self.chunks.iter().find(|(t, _)| *t == tag).map(|(_, p)| *p)
    }

    /// First chunk with `tag`, or a typed error.
    pub fn require(&self, tag: [u8; 4]) -> Result<&'a [u8], CheckpointError> {
        self.find(tag).ok_or(CheckpointError::MissingChunk { tag })
    }

    /// All chunks with `tag`, in file order.
    pub fn all(&self, tag: [u8; 4]) -> impl Iterator<Item = &'a [u8]> + '_ {
        self.chunks.iter().filter(move |(t, _)| *t == tag).map(|(_, p)| *p)
    }
}

/// A little-endian read cursor over one chunk payload, with every read
/// returning a typed error tied to the chunk's tag.
#[derive(Debug)]
pub struct Cursor<'a> {
    tag: [u8; 4],
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over `bytes`, attributing failures to chunk `tag`.
    pub fn new(tag: [u8; 4], bytes: &'a [u8]) -> Self {
        Cursor { tag, bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.bytes.len() - self.pos < n {
            return Err(CheckpointError::BadChunk { tag: self.tag });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32` LE.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a `u64` LE.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read an `f64` from its LE bit pattern.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u32`-length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Require that the chunk is fully consumed.
    pub fn finish(self) -> Result<(), CheckpointError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(CheckpointError::BadChunk { tag: self.tag })
        }
    }
}

/// Append a `u32`-length-prefixed byte slice (the writer-side dual of
/// [`Cursor::bytes`]).
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_chunks_and_order() {
        let mut w = ChunkWriter::new(7);
        w.chunk(*b"head", &[1, 2, 3]);
        w.chunk(*b"node", &[4]);
        w.chunk(*b"node", &[5, 6]);
        let bytes = w.finish();
        let r = ChunkReader::parse_kind(&bytes, 7).unwrap();
        assert_eq!(r.kind(), 7);
        assert_eq!(r.find(*b"head"), Some(&[1u8, 2, 3][..]));
        let nodes: Vec<&[u8]> = r.all(*b"node").collect();
        assert_eq!(nodes, vec![&[4u8][..], &[5, 6][..]]);
        assert_eq!(r.find(*b"none"), None);
        assert_eq!(r.require(*b"none"), Err(CheckpointError::MissingChunk { tag: *b"none" }));
    }

    #[test]
    fn every_corruption_is_detected() {
        let mut w = ChunkWriter::new(1);
        w.chunk(*b"data", &[9; 32]);
        let good = w.finish();
        // Flip each byte in turn: parse must fail (magic, version, kind,
        // body and CRC corruption are all caught — kind flips fail the
        // checksum, not the kind check, which is fine: fail closed).
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(ChunkReader::parse_kind(&bad, 1).is_err(), "byte {i} undetected");
        }
        // Truncations too.
        for len in 0..good.len() {
            assert!(ChunkReader::parse(&good[..len]).is_err(), "truncation to {len} undetected");
        }
    }

    #[test]
    fn wrong_kind_and_version_are_typed() {
        let bytes = ChunkWriter::new(3).finish();
        assert!(matches!(
            ChunkReader::parse_kind(&bytes, 4),
            Err(CheckpointError::WrongKind { found: 3, expected: 4 })
        ));
        let mut versioned = bytes.clone();
        versioned[4] = 0xEE;
        // Recompute the CRC so only the version differs.
        let body_len = versioned.len() - 4;
        let crc = ssr_core::crc32(&versioned[..body_len]);
        versioned[body_len..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            ChunkReader::parse(&versioned),
            Err(CheckpointError::BadVersion { found }) if found == u16::from_le_bytes([0xEE, 0])
        ));
    }

    #[test]
    fn cursor_reads_and_rejects_leftovers() {
        let mut buf = Vec::new();
        buf.push(7u8);
        buf.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        buf.extend_from_slice(&42u64.to_le_bytes());
        buf.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        put_bytes(&mut buf, b"hi");
        let mut c = Cursor::new(*b"test", &buf);
        assert_eq!(c.u8().unwrap(), 7);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), 42);
        assert_eq!(c.f64().unwrap(), 1.5);
        assert_eq!(c.bytes().unwrap(), b"hi");
        c.finish().unwrap();

        let mut under = Cursor::new(*b"test", &[1]);
        assert_eq!(under.u32(), Err(CheckpointError::BadChunk { tag: *b"test" }));
        let over = Cursor::new(*b"test", &[1, 2]);
        assert_eq!(over.finish(), Err(CheckpointError::BadChunk { tag: *b"test" }));
    }

    #[test]
    fn checkpoint_error_messages_name_the_problem() {
        let msgs = [
            CheckpointError::TooShort { len: 3 }.to_string(),
            CheckpointError::BadMagic { found: [0; 4] }.to_string(),
            CheckpointError::BadVersion { found: 9 }.to_string(),
            CheckpointError::WrongKind { found: 1, expected: 2 }.to_string(),
            CheckpointError::BadChecksum { computed: 1, stored: 2 }.to_string(),
            CheckpointError::Truncated.to_string(),
            CheckpointError::MissingChunk { tag: *b"rng " }.to_string(),
            CheckpointError::BadChunk { tag: *b"node" }.to_string(),
        ];
        for m in msgs {
            assert!(m.contains("checkpoint"), "{m}");
        }
    }
}
