//! The simulator is generic over protocols; these tests drive every
//! algorithm in the workspace through it and check protocol-independent
//! invariants: determinism, valid ground configurations, conservation of
//! event causality (stats consistency), and the Definition 3 comparison.

use ssr_core::{Dijkstra4, DualSsToken, MultiSsToken, RingAlgorithm, RingParams, SsToken, SsrMin};
use ssr_mpnet::{CstSim, DelayModel, SimConfig};

fn cfg(seed: u64, loss: f64) -> SimConfig {
    SimConfig {
        seed,
        delay: DelayModel::Uniform { min: 2, max: 7 },
        loss,
        timer_interval: 30,
        send_on_receipt: true,
        exec_delay: 2,
        burst: None,
    }
}

fn drive_and_check<A: RingAlgorithm + Clone>(
    algo: A,
    initial: Vec<A::State>,
    seed: u64,
    loss: f64,
) {
    let run = |s: u64| {
        let mut sim = CstSim::new(algo.clone(), initial.clone(), cfg(s, loss)).unwrap();
        sim.run_until(15_000);
        // Ground config must stay valid under the algorithm's own rules.
        algo.validate_config(&sim.ground_config()).expect("valid ground config");
        let stats = sim.stats();
        assert!(stats.transmissions > 0);
        assert!(stats.losses <= stats.transmissions);
        (sim.ground_config(), stats)
    };
    // Determinism per seed; divergence across seeds is not asserted (some
    // algorithms quiesce identically).
    assert_eq!(run(seed).1, run(seed).1);
}

#[test]
fn all_algorithms_simulate_deterministically() {
    let p = RingParams::new(6, 8).unwrap();
    let ssr = SsrMin::new(p);
    drive_and_check(ssr, ssr.legitimate_anchor(1), 3, 0.1);

    let dij = SsToken::new(p);
    drive_and_check(dij, dij.uniform_config(2), 4, 0.1);

    let dual = DualSsToken::new(p);
    drive_and_check(dual, dual.config_with_tokens_at(1, 4, 0), 5, 0.1);

    let multi = MultiSsToken::new(p, 3).unwrap();
    drive_and_check(multi, multi.config_with_tokens_at(&[0, 2, 4], 0), 6, 0.1);

    let d4 = Dijkstra4::new(6).unwrap();
    drive_and_check(d4, d4.quiescent_config(false), 7, 0.1);
}

#[test]
fn four_state_machine_circulates_under_cst() {
    // The 4-state chain also runs through the transform: the privilege
    // bounces up and down, and (being a plain mutual-exclusion ring) shows
    // zero-token instants in the message-passing model, like SSToken.
    let d4 = Dijkstra4::new(5).unwrap();
    let mut sim = CstSim::new(d4, d4.quiescent_config(false), cfg(1, 0.0)).unwrap();
    sim.run_until(30_000);
    assert!(sim.stats().rules_executed > 20, "the privilege must keep moving");
    let s = sim.timeline().summary(0).unwrap();
    assert_eq!(s.min_privileged, 0, "model gap: the 4-state machine is not gap tolerant");
    assert!(s.zero_privileged_time > 0);
}

#[test]
fn definition3_gap_statistics_separate_the_algorithms() {
    // Sample Definition 3 at many instants: SSRmin's two sides must agree
    // at every probe; Dijkstra's must disagree at a large fraction of them.
    let p = RingParams::new(5, 7).unwrap();

    let ssr = SsrMin::new(p);
    let mut sim = CstSim::new(ssr, ssr.legitimate_anchor(0), cfg(2, 0.0)).unwrap();
    let mut agree = 0u32;
    let mut total = 0u32;
    for t in 1..=300u64 {
        sim.run_until(t * 50);
        total += 1;
        if sim.definition3_check().holds() {
            agree += 1;
        }
    }
    assert_eq!(agree, total, "SSRmin must be model gap tolerant at every probe");

    let dij = SsToken::new(p);
    let mut sim = CstSim::new(dij, dij.uniform_config(0), cfg(2, 0.0)).unwrap();
    let mut disagree = 0u32;
    for t in 1..=300u64 {
        sim.run_until(t * 50);
        if !sim.definition3_check().holds() {
            disagree += 1;
        }
    }
    assert!(disagree > 100, "Dijkstra should show the model gap frequently, saw {disagree}/300");
}

#[test]
fn pause_and_per_link_delay_compose() {
    let p = RingParams::new(5, 7).unwrap();
    let ssr = SsrMin::new(p);
    let mut sim = CstSim::new(ssr, ssr.legitimate_anchor(0), cfg(9, 0.05)).unwrap();
    sim.set_link_delay(1, 2, DelayModel::Fixed(25));
    sim.schedule_pause(3, 5_000, 7_000);
    sim.schedule_corruption(9_000, 4, "2.1.1".parse().unwrap());
    sim.run_until(40_000);
    // The composite fault load must still leave a functioning ring: rules
    // keep firing and the post-fault window has no zero-privileged time.
    assert!(sim.stats().rules_executed > 100);
    let tail = sim.timeline().summary(25_000).unwrap();
    assert_eq!(tail.zero_privileged_time, 0, "{tail:?}");
}
