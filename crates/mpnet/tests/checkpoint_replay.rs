//! Property tests for the cluster checkpoint/replay contract on the DES:
//! whatever seed, ring size, netem profile, fault schedule and cut point
//! are drawn, (a) two fresh runs with equal inputs produce byte-identical
//! transcripts, and (b) a checkpoint taken mid-run, restored and run to
//! the same end time reproduces the original's transcript, statistics and
//! final configuration exactly — the property `ssrmin replay` ships.

use proptest::prelude::*;

use ssr_core::{RingParams, SsrMin, SsrState};
use ssr_mpnet::{CstSim, SimConfig};
use ssr_netem::{LinkProfile, BUILTIN_PROFILES};

const TIMER: u64 = 5_000;
const T_END: u64 = 2_000_000;

/// One faulted, netem-paced simulation: legitimate start, `faults` seeded
/// corruptions spread over the run.
fn build(n: usize, seed: u64, profile_idx: usize, faults: usize) -> CstSim<SsrMin> {
    let k = n as u32 + 2;
    let algo = SsrMin::new(RingParams::new(n, k).unwrap());
    let cfg = SimConfig { seed, timer_interval: TIMER, ..SimConfig::default() };
    let mut sim = CstSim::new(algo, algo.legitimate_anchor(0), cfg).unwrap();
    let profile = LinkProfile::builtin(BUILTIN_PROFILES[profile_idx]).unwrap();
    sim.set_netem(&profile, seed);
    for f in 0..faults {
        let at = (f as u64 + 1) * T_END / (faults as u64 + 1);
        let victim = (seed as usize).wrapping_add(f) % n;
        let poison = SsrState::new((seed as u32).wrapping_add(f as u32) % k, 1, (f as u8) & 1);
        sim.schedule_corruption(at, victim, poison);
    }
    sim
}

proptest! {
    // Each case drives full DES runs; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed + same profile ⇒ identical delivery schedule: two fresh
    /// simulators with equal inputs agree event for event.
    #[test]
    fn equal_seeds_and_profiles_replay_identically(
        seed in any::<u64>(),
        n in 3usize..=6,
        profile_idx in 0usize..4,
        faults in 0usize..=3,
    ) {
        let mut a = build(n, seed, profile_idx, faults);
        let mut b = build(n, seed, profile_idx, faults);
        a.enable_transcript(8192);
        b.enable_transcript(8192);
        a.run_until(T_END);
        b.run_until(T_END);
        prop_assert_eq!(a.transcript().unwrap().render(), b.transcript().unwrap().render());
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.netem_buffer_drops(), b.netem_buffer_drops());
        prop_assert_eq!(a.ground_config(), b.ground_config());
    }

    /// Checkpoint → restore → replay reproduces the original transcript
    /// exactly, wherever the cut lands relative to the fault schedule.
    #[test]
    fn checkpoint_restore_replays_byte_identically(
        seed in any::<u64>(),
        n in 3usize..=6,
        profile_idx in 0usize..4,
        faults in 0usize..=3,
        cut_tenths in 1u64..=9,
    ) {
        let t_cut = T_END * cut_tenths / 10;
        let mut original = build(n, seed, profile_idx, faults);
        original.run_until(t_cut);
        let bytes = original.checkpoint(b"replay-meta");

        // Original finishes, recording the post-cut stretch.
        original.enable_transcript(8192);
        original.run_until(T_END);

        let k = n as u32 + 2;
        let algo = SsrMin::new(RingParams::new(n, k).unwrap());
        let (mut replay, meta) = CstSim::restore(algo, &bytes).unwrap();
        prop_assert_eq!(meta.as_slice(), b"replay-meta" as &[u8]);
        replay.enable_transcript(8192);
        replay.run_until(T_END);

        prop_assert_eq!(
            original.transcript().unwrap().render(),
            replay.transcript().unwrap().render()
        );
        prop_assert_eq!(original.stats(), replay.stats());
        prop_assert_eq!(original.netem_buffer_drops(), replay.netem_buffer_drops());
        prop_assert_eq!(original.ground_config(), replay.ground_config());
        prop_assert_eq!(original.local_privileged(), replay.local_privileged());
    }
}
