//! Property tests for membership churn on the DES: whatever seeded
//! join/leave interleaving [`ssr_mpnet::FaultSchedule::churn`] draws, the
//! simulated ring eventually re-stabilizes to a legitimate configuration
//! holding exactly one primary token — self-stabilization absorbs live
//! resizing just like transient state faults.

use proptest::prelude::*;

use ssr_core::{RingParams, SsrMin, SsrState};
use ssr_mpnet::{ChurnPlan, CstSim, FaultKind, FaultSchedule, SimConfig};

fn params(n: usize, k: u32) -> RingParams {
    RingParams::new(n, k).unwrap()
}

/// A graceful SSRmin joiner: adopt the predecessor's counter, hold no token
/// bits (mirrors the UDP re-splice handshake).
fn graceful_joiner(sim: &CstSim<SsrMin>) -> SsrState {
    let tail = sim.ground_config().len() - 1;
    SsrState::new(sim.node(tail).own.x, 0, 0)
}

proptest! {
    // Each case drives a full DES run; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded join/leave interleaving preserves "eventually exactly one
    /// privileged node": after the schedule drains, the ring re-converges to
    /// a stably legitimate configuration with a single primary token.
    #[test]
    fn any_churn_interleaving_restabilizes_to_one_token(
        seed in any::<u64>(),
        n0 in 4usize..=6,
        rate_x10 in 5u64..=60,
        loss_pct in 0u32..=15,
    ) {
        let k = 12; // max_n = 9 < K keeps every drawn join sound
        let plan = ChurnPlan {
            rate: rate_x10 as f64 / 10.0,
            window: (400, 3_400),
            min_n: 3,
            max_n: 9,
        };
        let schedule = FaultSchedule::churn(n0, &plan, seed).unwrap();
        let a = SsrMin::new(params(n0, k));
        let cfg = SimConfig { seed, loss: f64::from(loss_pct) / 100.0, ..SimConfig::default() };
        let timer_interval = cfg.timer_interval;
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), cfg).unwrap();
        for ev in schedule.events() {
            sim.run_until(ev.at);
            let n = sim.ground_config().len();
            match ev.kind {
                FaultKind::Join { node } => {
                    prop_assert_eq!(node, n, "churn joins splice at the tail");
                    let own = graceful_joiner(&sim);
                    sim.splice_join(SsrMin::new(params(n + 1, k)), own);
                }
                FaultKind::Leave { node } => {
                    prop_assert!(node > 0 && node < n, "leave {} out of ring", node);
                    sim.splice_leave(SsrMin::new(params(n - 1, k)), node);
                }
                ref other => prop_assert!(false, "non-membership event {} in churn", other),
            }
        }
        // Generous post-churn budget: the Theorem 2 O(n^2) envelope for the
        // final ring size, from the last event.
        let n_end = sim.ground_config().len();
        let envelope = 4 * (n_end as u64) * (n_end as u64) * timer_interval;
        let t0 = sim.now();
        let since = sim.run_until_stably_legitimate(t0 + 4 * envelope, 200);
        prop_assert!(
            since.is_some(),
            "seed {} never restabilized after {} churn events (final n = {})",
            seed,
            schedule.events().len(),
            n_end
        );
        let ground = sim.ground_config();
        prop_assert_eq!(
            sim.algorithm().primary_count(&ground),
            1,
            "a stably legitimate ring holds exactly one primary token"
        );
    }
}
