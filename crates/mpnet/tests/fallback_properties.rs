//! Property tests for the degraded-mode fallback DES twin: whatever seeded
//! break/heal interleaving is drawn, the segment keeps a single token
//! authority (walker while broken, handshake token otherwise), hands back
//! cleanly once every hole closes, and the handover audit finds no
//! exclusivity violation across any mode switch.

use proptest::prelude::*;

use ssr_mpnet::fallback::{cover_time_envelope, FallbackSim, GrantMode, HANDSHAKE_DOMAIN};

/// Drive one op against the sim: `true` breaks the node, `false` heals it.
/// Refusals (already down, already up, last live node) are no-ops by
/// construction, which is exactly the API contract under test.
fn apply(sim: &mut FallbackSim, node: usize, brk: bool) {
    if brk {
        sim.break_node(node);
    } else {
        sim.heal_node(node);
    }
}

proptest! {
    // Each case replays a full interleaving; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any break/heal interleaving — including overlapping holes, breaking
    /// the token holder, and healing in arbitrary order — ends with the
    /// handshake back in charge, a token present, and a clean audit.
    #[test]
    fn any_break_heal_interleaving_hands_back_cleanly(
        seed in any::<u64>(),
        n in 4usize..=9,
        ops in proptest::collection::vec((0usize..9, any::<bool>(), 1u64..=120), 1..24),
    ) {
        let mut sim = FallbackSim::new(n, seed, 1_000);
        sim.run(10);
        for &(node, brk, gap) in &ops {
            apply(&mut sim, node % n, brk);
            sim.run(gap);
        }
        // Close every hole, then give the segment a settling window.
        for node in 0..n {
            sim.heal_node(node);
        }
        sim.run(20);
        prop_assert!(sim.mode_normal(), "all holes closed but still degraded");
        prop_assert_eq!(sim.live(), n);
        prop_assert_eq!(sim.segments(), 1, "a fully healed ring is one service domain");
        prop_assert!(sim.token().is_some(), "hand-back lost the token");
        let violations = sim.audit();
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
        let stats = sim.stats();
        prop_assert_eq!(stats.entries, stats.exits, "unbalanced degraded holds");
        // Merge-ledger sanity over the whole interleaving: a merge always
        // retires a walker other than its survivor, and the committed
        // ledger is what the stats report.
        for m in sim.merges() {
            prop_assert_ne!(m.survivor, m.retired, "a merge cannot retire its survivor");
            prop_assert_ne!(m.survivor, HANDSHAKE_DOMAIN);
            prop_assert_ne!(m.retired, HANDSHAKE_DOMAIN);
        }
        prop_assert_eq!(stats.merges, sim.merges().len() as u64);
    }

    /// Two non-adjacent holes split the ring into two arcs; each arc's
    /// walker covers every live node of its own segment within a generous
    /// multiple of its per-segment cover envelope, and no walker ever
    /// grants outside its segment — the Dastidar–Herman separation holds
    /// under the split.
    #[test]
    fn split_ring_covers_every_arc_separately(
        seed in any::<u64>(),
        n in 5usize..=9,
        first in 0usize..9,
        spread in 2usize..=4,
    ) {
        // Holes are non-adjacent iff their ring gap is in [2, n - 2]; fold
        // the drawn spread into that range so every case is valid.
        let a = first % n;
        let gap = 2 + (spread - 2) % (n - 3);
        let b = (a + gap) % n;
        let step_us = 1_000u64;
        let mut sim = FallbackSim::new(n, seed, step_us);
        sim.run(5);
        prop_assert!(sim.break_node(a));
        prop_assert!(sim.break_node(b));
        let detail = sim.segment_detail();
        prop_assert_eq!(detail.len(), 2, "two non-adjacent holes cut two arcs");
        let split_at = sim.windows().len();
        // 20x the larger per-segment envelope, in ticks.
        let m = detail.iter().map(|s| s.positions.len()).max().unwrap();
        let envelope_ticks =
            cover_time_envelope(m, std::time::Duration::from_micros(step_us)).as_micros() as u64
                / step_us;
        sim.run(20 * envelope_ticks.max(1));
        for seg in &detail {
            let mut visited = vec![false; n];
            for w in sim.windows()[split_at..]
                .iter()
                .filter(|w| w.mode == GrantMode::Walker && w.domain == seg.domain)
            {
                prop_assert!(
                    seg.positions.contains(&w.node),
                    "domain {} granted node {} outside its arc {:?}",
                    seg.domain, w.node, seg.positions
                );
                visited[w.node] = true;
            }
            for &p in &seg.positions {
                prop_assert!(
                    visited[p],
                    "segment node {} starved in 20x its cover envelope (arc {:?})",
                    p, seg.positions
                );
            }
        }
        sim.heal_node(a);
        prop_assert_eq!(sim.segments(), 1, "the first heal re-joins the arcs");
        prop_assert_eq!(sim.merges().len(), 1, "one merge per re-joined pair");
        sim.heal_node(b);
        sim.run(10);
        prop_assert!(sim.mode_normal());
        prop_assert_eq!(sim.merges().len(), 1, "the closing heal hands back, it does not merge");
        let violations = sim.audit();
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }

    /// During a single-hole break the walker serves every live node within
    /// a generous multiple of the cover-time envelope — the degraded
    /// segment starves nobody.
    #[test]
    fn walker_covers_every_live_node_during_a_break(
        seed in any::<u64>(),
        n in 4usize..=8,
        victim in 0usize..8,
    ) {
        let victim = victim % n;
        let step_us = 1_000u64;
        let mut sim = FallbackSim::new(n, seed, step_us);
        sim.run(5);
        prop_assert!(sim.break_node(victim));
        // 20x the envelope in ticks: the cover bound is on the expectation,
        // so leave astronomical headroom for unlucky neighbour draws.
        let envelope_ticks =
            cover_time_envelope(n - 1, std::time::Duration::from_micros(step_us)).as_micros()
                as u64
                / step_us;
        sim.run(20 * envelope_ticks.max(1));
        let mut visited = vec![false; n];
        for w in sim.windows().iter().filter(|w| w.mode == GrantMode::Walker) {
            visited[w.node] = true;
        }
        for (node, &v) in visited.iter().enumerate() {
            prop_assert!(
                v || node == victim,
                "live node {} never granted in 20x the cover envelope (n = {}, victim {})",
                node, n, victim
            );
        }
        prop_assert!(!visited[victim], "the walker granted a dead node");
        sim.heal_node(victim);
        sim.run(5);
        let violations = sim.audit();
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }

    /// The whole arrangement is deterministic per seed: identical op
    /// scripts replay to identical grant ledgers and mode histories.
    #[test]
    fn fallback_runs_are_deterministic_per_seed(
        seed in any::<u64>(),
        n in 4usize..=7,
        ops in proptest::collection::vec((0usize..7, any::<bool>(), 1u64..=60), 1..12),
    ) {
        let run = || {
            let mut sim = FallbackSim::new(n, seed, 500);
            sim.run(8);
            for &(node, brk, gap) in &ops {
                apply(&mut sim, node % n, brk);
                sim.run(gap);
            }
            (sim.windows().to_vec(), sim.merges().to_vec(), sim.stats())
        };
        let (windows_a, merges_a, stats_a) = run();
        let (windows_b, merges_b, stats_b) = run();
        prop_assert_eq!(windows_a, windows_b);
        prop_assert_eq!(merges_a, merges_b, "the merge ledger must replay identically");
        prop_assert_eq!(stats_a, stats_b);
    }

    /// Breaking the token holder itself loses the handshake token with its
    /// host; the reloading wave regenerates a walker token, and the final
    /// heal hands a token back to the handshake regardless.
    #[test]
    fn token_loss_is_always_recovered(
        seed in any::<u64>(),
        n in 4usize..=8,
    ) {
        let mut sim = FallbackSim::new(n, seed, 1_000);
        sim.run(7);
        let holder = sim.token().expect("normal mode holds a token");
        prop_assert!(sim.break_node(holder));
        prop_assert!(sim.token().is_none(), "token should die with its host");
        sim.run(200);
        let stats = sim.stats();
        prop_assert!(stats.regenerations >= 1, "reloading wave never ran");
        prop_assert!(stats.grants > 0, "walker served nothing during the break");
        sim.heal_node(holder);
        sim.run(10);
        prop_assert!(sim.token().is_some(), "no token after the hand-back");
        let violations = sim.audit();
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }
}
