//! Property tests for the degraded-mode fallback DES twin: whatever seeded
//! break/heal interleaving is drawn, the segment keeps a single token
//! authority (walker while broken, handshake token otherwise), hands back
//! cleanly once every hole closes, and the handover audit finds no
//! exclusivity violation across any mode switch.

use proptest::prelude::*;

use ssr_mpnet::fallback::{cover_time_envelope, FallbackSim, GrantMode};

/// Drive one op against the sim: `true` breaks the node, `false` heals it.
/// Refusals (already down, already up, last live node) are no-ops by
/// construction, which is exactly the API contract under test.
fn apply(sim: &mut FallbackSim, node: usize, brk: bool) {
    if brk {
        sim.break_node(node);
    } else {
        sim.heal_node(node);
    }
}

proptest! {
    // Each case replays a full interleaving; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any break/heal interleaving — including overlapping holes, breaking
    /// the token holder, and healing in arbitrary order — ends with the
    /// handshake back in charge, a token present, and a clean audit.
    #[test]
    fn any_break_heal_interleaving_hands_back_cleanly(
        seed in any::<u64>(),
        n in 4usize..=9,
        ops in proptest::collection::vec((0usize..9, any::<bool>(), 1u64..=120), 1..24),
    ) {
        let mut sim = FallbackSim::new(n, seed, 1_000);
        sim.run(10);
        for &(node, brk, gap) in &ops {
            apply(&mut sim, node % n, brk);
            sim.run(gap);
        }
        // Close every hole, then give the segment a settling window.
        for node in 0..n {
            sim.heal_node(node);
        }
        sim.run(20);
        prop_assert!(sim.mode_normal(), "all holes closed but still degraded");
        prop_assert_eq!(sim.live(), n);
        prop_assert!(sim.token().is_some(), "hand-back lost the token");
        let violations = sim.audit();
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
        let stats = sim.stats();
        prop_assert_eq!(stats.entries, stats.exits, "unbalanced degraded holds");
    }

    /// During a single-hole break the walker serves every live node within
    /// a generous multiple of the cover-time envelope — the degraded
    /// segment starves nobody.
    #[test]
    fn walker_covers_every_live_node_during_a_break(
        seed in any::<u64>(),
        n in 4usize..=8,
        victim in 0usize..8,
    ) {
        let victim = victim % n;
        let step_us = 1_000u64;
        let mut sim = FallbackSim::new(n, seed, step_us);
        sim.run(5);
        prop_assert!(sim.break_node(victim));
        // 20x the envelope in ticks: the cover bound is on the expectation,
        // so leave astronomical headroom for unlucky neighbour draws.
        let envelope_ticks =
            cover_time_envelope(n - 1, std::time::Duration::from_micros(step_us)).as_micros()
                as u64
                / step_us;
        sim.run(20 * envelope_ticks.max(1));
        let mut visited = vec![false; n];
        for w in sim.windows().iter().filter(|w| w.mode == GrantMode::Walker) {
            visited[w.node] = true;
        }
        for (node, &v) in visited.iter().enumerate() {
            prop_assert!(
                v || node == victim,
                "live node {} never granted in 20x the cover envelope (n = {}, victim {})",
                node, n, victim
            );
        }
        prop_assert!(!visited[victim], "the walker granted a dead node");
        sim.heal_node(victim);
        sim.run(5);
        let violations = sim.audit();
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }

    /// The whole arrangement is deterministic per seed: identical op
    /// scripts replay to identical grant ledgers and mode histories.
    #[test]
    fn fallback_runs_are_deterministic_per_seed(
        seed in any::<u64>(),
        n in 4usize..=7,
        ops in proptest::collection::vec((0usize..7, any::<bool>(), 1u64..=60), 1..12),
    ) {
        let run = || {
            let mut sim = FallbackSim::new(n, seed, 500);
            sim.run(8);
            for &(node, brk, gap) in &ops {
                apply(&mut sim, node % n, brk);
                sim.run(gap);
            }
            (sim.windows().to_vec(), sim.stats())
        };
        let (windows_a, stats_a) = run();
        let (windows_b, stats_b) = run();
        prop_assert_eq!(windows_a, windows_b);
        prop_assert_eq!(stats_a, stats_b);
    }

    /// Breaking the token holder itself loses the handshake token with its
    /// host; the reloading wave regenerates a walker token, and the final
    /// heal hands a token back to the handshake regardless.
    #[test]
    fn token_loss_is_always_recovered(
        seed in any::<u64>(),
        n in 4usize..=8,
    ) {
        let mut sim = FallbackSim::new(n, seed, 1_000);
        sim.run(7);
        let holder = sim.token().expect("normal mode holds a token");
        prop_assert!(sim.break_node(holder));
        prop_assert!(sim.token().is_none(), "token should die with its host");
        sim.run(200);
        let stats = sim.stats();
        prop_assert!(stats.regenerations >= 1, "reloading wave never ran");
        prop_assert!(stats.grants > 0, "walker served nothing during the break");
        sim.heal_node(holder);
        sim.run(10);
        prop_assert!(sim.token().is_some(), "no token after the hand-back");
        let violations = sim.audit();
        prop_assert!(violations.is_empty(), "audit violations: {:?}", violations);
    }
}
