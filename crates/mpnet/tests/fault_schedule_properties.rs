//! Property tests for [`ssr_mpnet::FaultSchedule`]: seeded generation is a
//! pure function of its inputs (equal seeds ⇒ identical fault decisions),
//! every generated schedule is valid and time-sorted, and the builders
//! preserve validity.

use proptest::prelude::*;

use ssr_mpnet::{FaultKind, FaultPlan, FaultSchedule, RestartMode};

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (0usize..5, 0usize..4, 0u32..=100, 0usize..3, 0usize..3, 0usize..3).prop_map(
        |(crashes, partitions, pct, corrupts, freezes, babbles)| FaultPlan {
            crashes,
            partitions,
            snapshot_ratio: f64::from(pct) / 100.0,
            corrupts,
            freezes,
            babbles,
            ..FaultPlan::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The determinism contract the soak harness and CI rely on: replaying
    /// a seed replays the exact fault script, event for event.
    #[test]
    fn equal_seeds_draw_identical_schedules(
        seed in any::<u64>(),
        n in 3usize..9,
        plan in arb_plan(),
    ) {
        let a = FaultSchedule::random(n, &plan, seed);
        let b = FaultSchedule::random(n, &plan, seed);
        prop_assert_eq!(a, b);
    }

    /// Whatever the seed, a generated schedule is executable: indices in
    /// range, partitions on real ring links, crash/restart pairs and
    /// partition/heal pairs consistently ordered.
    #[test]
    fn random_schedules_always_validate(
        seed in any::<u64>(),
        n in 3usize..9,
        plan in arb_plan(),
    ) {
        let schedule = FaultSchedule::random(n, &plan, seed);
        prop_assert!(schedule.validate(n).is_ok(), "{:?}", schedule);
    }

    /// Events come out time-sorted, and every crash precedes its restart.
    #[test]
    fn random_schedules_are_sorted_and_paired(
        seed in any::<u64>(),
        n in 3usize..9,
        plan in arb_plan(),
    ) {
        let schedule = FaultSchedule::random(n, &plan, seed);
        let events = schedule.events();
        prop_assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        let crashes = events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Crash { .. }))
            .count();
        let restarts = events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Restart { .. }))
            .count();
        prop_assert_eq!(crashes, restarts, "every crash needs a restart");
        let partitions = events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Partition { .. }))
            .count();
        let heals = events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Heal { .. }))
            .count();
        prop_assert_eq!(partitions, heals, "every partition needs a heal");
    }

    /// The builder API keeps hand-written schedules valid and sorted too.
    #[test]
    fn builders_preserve_validity(
        n in 3usize..9,
        node in 0usize..9,
        at in 0u64..500,
        downtime in 1u64..200,
        part_at in 0u64..500,
        part_len in 1u64..200,
    ) {
        let node = node % n;
        let schedule = FaultSchedule::new()
            .crash_restart(node, RestartMode::Snapshot, at, at + downtime)
            .partition_window(node, (node + 1) % n, part_at, part_at + part_len);
        prop_assert!(schedule.validate(n).is_ok());
        prop_assert!(schedule.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    /// Snapshot ratio at the extremes pins every restart mode.
    #[test]
    fn snapshot_ratio_extremes_pin_modes(seed in any::<u64>(), n in 3usize..9) {
        for (ratio, want) in [(0.0, RestartMode::Amnesia), (1.0, RestartMode::Snapshot)] {
            let plan = FaultPlan { crashes: 3, partitions: 0, snapshot_ratio: ratio, ..FaultPlan::default() };
            let schedule = FaultSchedule::random(n, &plan, seed);
            for ev in schedule.events() {
                if let FaultKind::Crash { restart, .. } = ev.kind {
                    prop_assert_eq!(restart, want);
                }
            }
        }
    }
}
