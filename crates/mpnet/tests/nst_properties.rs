//! Property tests for the neighbourhood-synchronized transform: loss-free
//! exactness (its defining theorem), determinism, and stabilization.

use proptest::prelude::*;

use ssr_core::{RingAlgorithm, RingParams, SsToken, SsrMin, SsrState};
use ssr_mpnet::{DelayModel, NstConfig, NstSim};

fn arb_setup() -> impl Strategy<Value = (RingParams, Vec<SsrState>, u64)> {
    (3usize..8).prop_flat_map(|n| {
        let params = RingParams::minimal(n).unwrap();
        let k = params.k();
        (
            Just(params),
            proptest::collection::vec(
                (0..k, any::<bool>(), any::<bool>()).prop_map(|(x, rts, tra)| SsrState {
                    x,
                    rts,
                    tra,
                }),
                n,
            ),
            any::<u64>(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Loss-free NST is an exact emulation: every executed move saw the
    /// true neighbour states, from ANY initial configuration.
    #[test]
    fn lossfree_nst_is_exact((params, initial, seed) in arb_setup()) {
        let algo = SsrMin::new(params);
        let cfg = NstConfig {
            seed,
            delay: DelayModel::Uniform { min: 1, max: 6 },
            loss: 0.0,
            timer_interval: 40,
            request_timeout: 50,
        };
        let mut sim = NstSim::new(algo, initial, cfg).unwrap();
        sim.run_until(40_000);
        let st = sim.stats();
        prop_assert_eq!(st.stale_moves, 0, "exactness violated: {:?}", st);
        prop_assert!(st.moves > 0, "the system must make progress");
        // Exact emulation + self-stabilization ⇒ the ground configuration
        // stabilizes into the legitimate cycle.
        prop_assert!(
            algo.is_legitimate(&sim.ground_config()),
            "not stabilized after 40k ticks: {:?}",
            sim.ground_config().iter().map(|s| s.to_string()).collect::<Vec<_>>()
        );
    }

    /// NST runs are bit-deterministic per seed.
    #[test]
    fn nst_is_deterministic((params, initial, seed) in arb_setup()) {
        let algo = SsrMin::new(params);
        let run = || {
            let cfg = NstConfig { seed, ..NstConfig::default() };
            let mut sim = NstSim::new(algo, initial.clone(), cfg).unwrap();
            sim.run_until(8_000);
            (sim.ground_config(), sim.stats())
        };
        prop_assert_eq!(run(), run());
    }
}

/// The exactness property also holds for the plain Dijkstra ring (whose
/// moves are the ones SSRmin's Rules 2/4 inherit).
#[test]
fn lossfree_exactness_for_dijkstra() {
    let p = RingParams::new(6, 8).unwrap();
    let a = SsToken::new(p);
    for seed in 0..8u64 {
        let cfg = NstConfig { seed, ..NstConfig::default() };
        let mut sim = NstSim::new(a, a.uniform_config((seed % 8) as u32), cfg).unwrap();
        sim.run_until(30_000);
        let st = sim.stats();
        assert_eq!(st.stale_moves, 0, "seed {seed}: {st:?}");
        assert!(a.is_legitimate(&sim.ground_config()));
        // Mutual exclusion is preserved: at most one privileged at every
        // recorded instant.
        let s = sim.timeline().summary(0).unwrap();
        assert!(s.max_privileged <= 1, "seed {seed}: {s:?}");
    }
}
