//! Degraded-mode token service: random-walk circulation for broken rings.
//!
//! SSRmin's graceful handover (Theorem 2) assumes an intact bidirectional
//! ring. The membership layer routinely breaks that assumption on purpose —
//! mid-splice parks, crashed members awaiting a restart or the liveness
//! reaper — and during those windows the handshake protocol simply stalls
//! at the hole. Bernard, Bui & Sohier's self-stabilizing random-walk token
//! circulation needs no ring at all: a single walker token is forwarded to
//! a uniformly random live neighbour, and a *reloading wave* regenerates
//! the token when it is lost with a crashed host. This module is the shared
//! model of that fallback, used by both the live UDP membership host
//! (`ssr-net`) and the DES twin below:
//!
//! * [`RandomWalker`] — the walker itself: a seeded position on the ring's
//!   liveness view, stepping to a uniformly random live neighbour (edges
//!   across a dead position are unusable, so a one-hole ring walks a path
//!   and reflects at the hole), regenerating at the first live position
//!   when its own host dies.
//! * [`FallbackArbiter`] — the mode state machine (`Normal` ⇄ `Degraded`)
//!   plus the grant ledger: every critical-section grant — walker-mode or
//!   handshake-mode — is a [`GrantWindow`], every mode switch a
//!   [`ModeSwitch`], and [`FallbackArbiter::audit`] proves after the fact
//!   that exclusivity was never violated across a mode switch: walker
//!   grants are pairwise disjoint, confined to degraded intervals (after
//!   the quiesce margin that lets any in-flight handshake CS dwell end),
//!   and never overlapped by a handshake grant.
//! * [`FallbackSim`] — a discrete-event twin of the whole arrangement, so
//!   the break/heal interleaving space can be explored at scales (and
//!   event rates) the socket layer cannot reach.
//!
//! The walker's progress guarantee is the cover-time envelope
//! ([`cover_time_envelope`]): on the path left by a broken ring the
//! worst-case expected hitting time is `(m-1)^2` steps for `m` live nodes,
//! and the envelope applies the same 4x slack the Theorem 2 wall-clock
//! envelope uses.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which protocol granted a critical-section window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantMode {
    /// Degraded mode: the random walker visited the node.
    Walker,
    /// Normal mode: SSRmin's handshake privileged the node.
    Handshake,
}

/// One critical-section grant, microseconds from the arbiter's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantWindow {
    /// Granted node (a stable slot id on the live host, a ring index in
    /// the DES twin).
    pub node: usize,
    /// Who granted it.
    pub mode: GrantMode,
    /// Grant open, µs since epoch.
    pub from_us: u64,
    /// Grant close, µs since epoch.
    pub to_us: u64,
}

/// One mode transition of the fallback state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeSwitch {
    /// When, µs since the arbiter's epoch.
    pub at_us: u64,
    /// True: entered degraded mode. False: handed back to the handshake.
    pub degraded: bool,
}

/// Monotonic counters of the fallback service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FallbackStats {
    /// Times the ring entered degraded mode.
    pub entries: u64,
    /// Times it handed back to the handshake protocol.
    pub exits: u64,
    /// Walker forwarding steps taken (one logical message each).
    pub steps: u64,
    /// Critical-section grants issued by the walker.
    pub grants: u64,
    /// Reloading-wave token regenerations (walker lost with its host).
    pub regenerations: u64,
}

/// The Bernard–Bui–Sohier walker over a ring liveness view.
///
/// Positions index the view vector (ring order); an edge between adjacent
/// positions is usable only when both endpoints are live, so a dead member
/// leaves a hole the walker reflects at rather than crosses.
#[derive(Debug, Clone)]
pub struct RandomWalker {
    rng: StdRng,
    pos: usize,
    /// Forwarding steps taken.
    pub steps: u64,
    /// Reloading-wave regenerations performed.
    pub regenerations: u64,
}

impl RandomWalker {
    /// A walker starting at ring position `pos`, drawing neighbour choices
    /// from a deterministic stream seeded with `seed`.
    pub fn new(seed: u64, pos: usize) -> RandomWalker {
        RandomWalker { rng: StdRng::seed_from_u64(seed), pos, steps: 0, regenerations: 0 }
    }

    /// Current ring position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Move the walker to ring position `pos` without stepping — used when
    /// degraded mode takes over from the handshake, so the walker is
    /// minted where the handshake token last was (possibly on a now-dead
    /// host, in which case the next step runs the reloading wave).
    pub fn reposition(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Forward the walker one step over the liveness view `up` (indexed by
    /// ring position). Returns the position granted this step, or `None`
    /// when no position is live. If the walker's own host is dead the
    /// reloading wave regenerates it at the first live position; otherwise
    /// it moves to a uniformly random live neighbour (staying put only when
    /// both neighbouring edges are broken).
    pub fn step(&mut self, up: &[bool]) -> Option<usize> {
        let m = up.len();
        let first_live = up.iter().position(|&u| u)?;
        if self.pos >= m || !up[self.pos] {
            // Reloading wave: the token died with its host; mint a fresh
            // one at the lowest live ring position (nearest the anchor).
            self.pos = first_live;
            self.regenerations += 1;
            self.steps += 1;
            return Some(self.pos);
        }
        let succ = (self.pos + 1) % m;
        let pred = (self.pos + m - 1) % m;
        let mut choices = [0usize; 2];
        let mut live_deg = 0;
        if m > 1 && up[succ] {
            choices[live_deg] = succ;
            live_deg += 1;
        }
        if m > 2 && pred != succ && up[pred] {
            choices[live_deg] = pred;
            live_deg += 1;
        }
        if live_deg > 0 {
            self.pos = choices[self.rng.random_range(0..live_deg)];
        }
        self.steps += 1;
        Some(self.pos)
    }
}

/// Cover-time envelope of the walker on a broken ring with `live` live
/// members: the worst case (a path) has expected hitting time `(m-1)^2`
/// steps, and the envelope applies the same 4x slack as the Theorem 2
/// wall-clock envelope. Any degraded window in which consecutive walker
/// grants (or the window edges) gap by more than this is a stall.
pub fn cover_time_envelope(live: usize, step: Duration) -> Duration {
    let m = live.max(2) as u32;
    step.saturating_mul(4 * (m - 1) * (m - 1))
}

/// The fallback state machine plus grant ledger shared by the live host
/// and the DES twin. Degraded holds are counted, not boolean: overlapping
/// causes (a crash during a splice) keep the ring degraded until every
/// hold is released.
#[derive(Debug, Clone)]
pub struct FallbackArbiter {
    walker: RandomWalker,
    /// Liveness per ring position, paired with the stable node label grants
    /// are recorded under.
    view: Vec<(usize, bool)>,
    holds: u32,
    /// Epoch µs when the current degraded interval became grant-eligible.
    eligible_us: u64,
    quiesce_us: u64,
    windows: Vec<GrantWindow>,
    switches: Vec<ModeSwitch>,
    stats: FallbackStats,
}

impl FallbackArbiter {
    /// An arbiter whose walker draws from `seed` and whose degraded
    /// intervals only issue grants `quiesce_us` after entry — the margin
    /// that lets any handshake CS dwell in flight at the break finish
    /// before the walker's first grant.
    pub fn new(seed: u64, quiesce_us: u64) -> FallbackArbiter {
        FallbackArbiter {
            walker: RandomWalker::new(seed, 0),
            view: Vec::new(),
            holds: 0,
            eligible_us: 0,
            quiesce_us,
            windows: Vec::new(),
            switches: Vec::new(),
            stats: FallbackStats::default(),
        }
    }

    /// Replace the liveness view: `(node label, up)` in ring order.
    pub fn set_view(&mut self, view: Vec<(usize, bool)>) {
        self.view = view;
    }

    /// Mint the walker at ring position `pos` — where the handshake token
    /// last was when the break opened. A dead `pos` makes the walker's
    /// first step a reloading-wave regeneration.
    pub fn seed_walker(&mut self, pos: usize) {
        self.walker.reposition(pos);
    }

    /// Whether the ring is currently degraded.
    pub fn degraded(&self) -> bool {
        self.holds > 0
    }

    /// Take one degraded hold (crash opened, splice began, ...). The first
    /// hold switches the mode.
    pub fn enter(&mut self, now_us: u64) {
        self.holds += 1;
        if self.holds == 1 {
            self.stats.entries += 1;
            self.eligible_us = now_us.saturating_add(self.quiesce_us);
            self.switches.push(ModeSwitch { at_us: now_us, degraded: true });
        }
    }

    /// Release one degraded hold; releasing the last one hands the segment
    /// back to the handshake protocol.
    pub fn exit(&mut self, now_us: u64) {
        debug_assert!(self.holds > 0, "fallback exit without a matching enter");
        self.holds = self.holds.saturating_sub(1);
        if self.holds == 0 {
            self.stats.exits += 1;
            self.switches.push(ModeSwitch { at_us: now_us, degraded: false });
        }
    }

    /// One walker tick at `now_us`: in degraded mode (past the quiesce
    /// margin) forward the walker over the current view and grant its
    /// position a CS window of `dwell_us`. Returns the granted node label.
    pub fn tick(&mut self, now_us: u64, dwell_us: u64) -> Option<usize> {
        if self.holds == 0 || now_us < self.eligible_us {
            return None;
        }
        let up: Vec<bool> = self.view.iter().map(|&(_, u)| u).collect();
        let pos = self.walker.step(&up)?;
        self.stats.steps = self.walker.steps;
        self.stats.regenerations = self.walker.regenerations;
        let node = self.view[pos].0;
        self.stats.grants += 1;
        self.windows.push(GrantWindow {
            node,
            mode: GrantMode::Walker,
            from_us: now_us,
            to_us: now_us.saturating_add(dwell_us),
        });
        Some(node)
    }

    /// Record a handshake-mode grant (the DES twin's token dwell; the live
    /// host derives these from its activity trace instead).
    pub fn grant_handshake(&mut self, node: usize, from_us: u64, to_us: u64) {
        self.windows.push(GrantWindow { node, mode: GrantMode::Handshake, from_us, to_us });
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FallbackStats {
        let mut stats = self.stats;
        stats.steps = self.walker.steps;
        stats.regenerations = self.walker.regenerations;
        stats
    }

    /// Every grant issued so far, in issue order.
    pub fn windows(&self) -> &[GrantWindow] {
        &self.windows
    }

    /// Every mode switch so far, in time order.
    pub fn switches(&self) -> &[ModeSwitch] {
        &self.switches
    }

    /// The handover audit: prove that exclusivity survived every mode
    /// switch. Returns human-readable violations (empty = clean):
    ///
    /// 1. mode switches alternate enter/exit in nondecreasing time order;
    /// 2. walker grants never overlap any other grant (walker or
    ///    handshake) — the walker is the sole CS authority while it runs;
    /// 3. every walker grant lies inside a degraded interval, at or after
    ///    the quiesce margin;
    /// 4. no handshake grant intrudes into the grant-eligible part of a
    ///    degraded interval.
    pub fn audit(&self) -> Vec<String> {
        audit_handover(&self.windows, &self.switches, self.quiesce_us)
    }
}

/// Degraded intervals `[enter, exit)` reconstructed from a switch list; an
/// unclosed interval extends to `u64::MAX`.
fn degraded_intervals(switches: &[ModeSwitch]) -> Vec<(u64, u64)> {
    let mut intervals = Vec::new();
    let mut open: Option<u64> = None;
    for s in switches {
        match (s.degraded, open) {
            (true, None) => open = Some(s.at_us),
            (false, Some(from)) => {
                intervals.push((from, s.at_us));
                open = None;
            }
            _ => {}
        }
    }
    if let Some(from) = open {
        intervals.push((from, u64::MAX));
    }
    intervals
}

/// The standalone handover audit over a grant ledger and a mode-switch
/// history (see [`FallbackArbiter::audit`]).
pub fn audit_handover(
    windows: &[GrantWindow],
    switches: &[ModeSwitch],
    quiesce_us: u64,
) -> Vec<String> {
    let mut violations = Vec::new();

    // 1. Switches must alternate and be time-ordered.
    let mut last_at = 0u64;
    let mut degraded = false;
    for s in switches {
        if s.at_us < last_at {
            violations.push(format!("mode switch at {}us precedes {}us", s.at_us, last_at));
        }
        if s.degraded == degraded {
            violations.push(format!(
                "mode switch at {}us repeats {} state",
                s.at_us,
                if degraded { "degraded" } else { "normal" }
            ));
        }
        degraded = s.degraded;
        last_at = s.at_us;
    }

    // 2. No overlap involving a walker grant. Handshake grants may overlap
    // each other: SSRmin's (1,2)-CS allows two privileged nodes.
    let mut sorted: Vec<GrantWindow> = windows.to_vec();
    sorted.sort_by_key(|w| (w.from_us, w.to_us));
    for pair in sorted.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let walker_involved = a.mode == GrantMode::Walker || b.mode == GrantMode::Walker;
        if walker_involved && b.from_us < a.to_us {
            violations.push(format!(
                "grant overlap across modes: node {} [{}..{}us, {:?}] vs node {} \
                 [{}..{}us, {:?}]",
                a.node, a.from_us, a.to_us, a.mode, b.node, b.from_us, b.to_us, b.mode
            ));
        }
    }

    // 3 + 4. Containment against degraded intervals.
    let intervals = degraded_intervals(switches);
    for w in windows {
        let eligible = intervals
            .iter()
            .find(|&&(from, to)| w.from_us >= from.saturating_add(quiesce_us) && w.to_us <= to);
        let intrudes = intervals
            .iter()
            .any(|&(from, to)| w.from_us < to && w.to_us > from.saturating_add(quiesce_us));
        match w.mode {
            GrantMode::Walker if eligible.is_none() => violations.push(format!(
                "walker grant to node {} [{}..{}us] outside any quiesced degraded interval",
                w.node, w.from_us, w.to_us
            )),
            GrantMode::Handshake if intrudes => violations.push(format!(
                "handshake grant to node {} [{}..{}us] inside a degraded interval",
                w.node, w.from_us, w.to_us
            )),
            _ => {}
        }
    }
    violations
}

/// Discrete-event twin of the degraded-mode arrangement: an `n`-ring whose
/// token circulates one position per tick in normal mode (the handshake,
/// abstracted to its grant schedule), with seeded break/heal events that
/// switch the segment to the random walker and back. Time is µs; every
/// tick advances `step_us`.
#[derive(Debug, Clone)]
pub struct FallbackSim {
    n: usize,
    step_us: u64,
    now_us: u64,
    up: Vec<bool>,
    /// Ring position of the handshake token (None while degraded or lost).
    token: Option<usize>,
    arb: FallbackArbiter,
}

impl FallbackSim {
    /// A healthy `n`-ring with its token at the anchor. The walker's
    /// quiesce margin is one tick, matching the live host's dwell bound.
    pub fn new(n: usize, seed: u64, step_us: u64) -> FallbackSim {
        let step_us = step_us.max(1);
        let mut arb = FallbackArbiter::new(seed, step_us);
        arb.set_view((0..n).map(|i| (i, true)).collect());
        FallbackSim { n, step_us, now_us: 0, up: vec![true; n], token: Some(0), arb }
    }

    /// Current simulated time, µs.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Whether the sim is in normal (handshake) mode.
    pub fn mode_normal(&self) -> bool {
        !self.arb.degraded()
    }

    /// The handshake token's position, if it exists.
    pub fn token(&self) -> Option<usize> {
        self.token
    }

    /// Live-node count.
    pub fn live(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }

    /// Crash ring position `node`. Refused (returning false) when it is
    /// already down or when it is the last live node — the walker needs a
    /// segment to serve.
    pub fn break_node(&mut self, node: usize) -> bool {
        if node >= self.n || !self.up[node] || self.live() <= 1 {
            return false;
        }
        self.up[node] = false;
        self.arb.set_view((0..self.n).map(|i| (i, self.up[i])).collect());
        if !self.arb.degraded() {
            // Mint the walker where the handshake token last was; if the
            // token died with this very host the walker's first step runs
            // the reloading wave.
            self.arb.seed_walker(self.token.unwrap_or(0));
        }
        if self.token == Some(node) {
            self.token = None;
        }
        self.arb.enter(self.now_us);
        true
    }

    /// Heal ring position `node`. When the last hole closes the segment
    /// hands back to the handshake: the token resumes at the walker's last
    /// position (graceful handover), or regenerates at the anchor if the
    /// walker never ran.
    pub fn heal_node(&mut self, node: usize) -> bool {
        if node >= self.n || self.up[node] {
            return false;
        }
        self.up[node] = true;
        self.arb.set_view((0..self.n).map(|i| (i, self.up[i])).collect());
        self.arb.exit(self.now_us);
        if !self.arb.degraded() {
            let resume = self.arb.windows().iter().rev().find(|w| w.mode == GrantMode::Walker);
            self.token = Some(match (resume, self.token) {
                (Some(w), _) => w.node,
                (None, Some(t)) => t,
                (None, None) => 0,
            });
        }
        true
    }

    /// One simulation tick: the walker steps in degraded mode, the token
    /// advances to the next live position in normal mode; either way the
    /// visited node gets a half-tick CS grant.
    pub fn tick(&mut self) {
        let dwell = self.step_us / 2;
        if self.arb.degraded() {
            self.arb.tick(self.now_us, dwell.max(1));
        } else if let Some(at) = self.token {
            let next = (1..=self.n).map(|d| (at + d) % self.n).find(|&p| self.up[p]).unwrap_or(at);
            self.token = Some(next);
            self.arb.grant_handshake(next, self.now_us, self.now_us + dwell.max(1));
        }
        self.now_us += self.step_us;
    }

    /// Run `ticks` simulation ticks.
    pub fn run(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.tick();
        }
    }

    /// Counter snapshot of the fallback service.
    pub fn stats(&self) -> FallbackStats {
        self.arb.stats()
    }

    /// The grant ledger.
    pub fn windows(&self) -> &[GrantWindow] {
        self.arb.windows()
    }

    /// The handover audit over everything this sim has done.
    pub fn audit(&self) -> Vec<String> {
        self.arb.audit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_reflects_at_the_hole_and_covers_the_path() {
        // Ring of 6 with position 3 dead: the walker lives on the path
        // 4-5-0-1-2 and must visit every live node well within the cover
        // envelope.
        let up = [true, true, true, false, true, true];
        let mut w = RandomWalker::new(7, 0);
        let mut visited = [false; 6];
        let budget = 4 * 5 * 5; // cover_time_envelope in steps for m=6 live... generous
        for _ in 0..budget {
            let pos = w.step(&up).unwrap();
            assert_ne!(pos, 3, "the walker crossed a dead position");
            visited[pos] = true;
        }
        for (i, &v) in visited.iter().enumerate() {
            assert!(v || i == 3, "position {i} never visited in {budget} steps");
        }
        assert_eq!(w.regenerations, 0);
    }

    #[test]
    fn reloading_wave_regenerates_a_lost_token() {
        let mut up = [true; 4];
        let mut w = RandomWalker::new(3, 2);
        up[2] = false;
        // First live position after the dead host is 0.
        let pos = w.step(&up).unwrap();
        assert_eq!(pos, 0);
        assert_eq!(w.regenerations, 1);
        // A fully dead view yields no grant at all.
        assert!(w.step(&[false, false]).is_none());
    }

    #[test]
    fn walker_is_deterministic_per_seed() {
        let up = [true, true, false, true, true];
        let runs: Vec<Vec<usize>> = (0..2)
            .map(|_| {
                let mut w = RandomWalker::new(99, 0);
                (0..64).map(|_| w.step(&up).unwrap()).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn arbiter_confines_walker_grants_to_quiesced_degraded_intervals() {
        let mut arb = FallbackArbiter::new(1, 10);
        arb.set_view(vec![(0, true), (1, true), (2, false), (3, true)]);
        assert!(arb.tick(0, 5).is_none(), "no grants in normal mode");
        arb.enter(100);
        assert!(arb.tick(105, 5).is_none(), "no grants inside the quiesce margin");
        assert!(arb.tick(110, 5).is_some());
        assert!(arb.tick(120, 5).is_some());
        arb.exit(130);
        assert!(arb.tick(140, 5).is_none(), "no grants after hand-back");
        arb.grant_handshake(1, 150, 155);
        assert!(arb.audit().is_empty(), "{:?}", arb.audit());
        let stats = arb.stats();
        assert_eq!((stats.entries, stats.exits, stats.grants), (1, 1, 2));
    }

    #[test]
    fn audit_flags_cross_mode_overlap_and_stray_grants() {
        let switches =
            [ModeSwitch { at_us: 100, degraded: true }, ModeSwitch { at_us: 200, degraded: false }];
        // A handshake grant overlapping a walker grant inside the window.
        let windows = [
            GrantWindow { node: 1, mode: GrantMode::Walker, from_us: 120, to_us: 130 },
            GrantWindow { node: 2, mode: GrantMode::Handshake, from_us: 125, to_us: 135 },
        ];
        let v = audit_handover(&windows, &switches, 10);
        assert!(v.iter().any(|m| m.contains("overlap")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("inside a degraded interval")), "{v:?}");

        // A walker grant outside any degraded interval.
        let stray = [GrantWindow { node: 0, mode: GrantMode::Walker, from_us: 300, to_us: 310 }];
        let v = audit_handover(&stray, &switches, 10);
        assert!(v.iter().any(|m| m.contains("outside any quiesced")), "{v:?}");

        // Unbalanced switches.
        let bad =
            [ModeSwitch { at_us: 10, degraded: true }, ModeSwitch { at_us: 20, degraded: true }];
        assert!(!audit_handover(&[], &bad, 0).is_empty());
    }

    #[test]
    fn sim_breaks_heal_and_hand_back_with_a_clean_audit() {
        let mut sim = FallbackSim::new(6, 42, 1_000);
        sim.run(20);
        assert!(sim.mode_normal());
        assert!(sim.break_node(3));
        assert!(!sim.break_node(3), "already down");
        sim.run(200);
        assert!(!sim.mode_normal());
        assert!(sim.stats().grants > 0, "walker never granted during the break");
        assert!(sim.heal_node(3));
        sim.run(20);
        assert!(sim.mode_normal());
        assert!(sim.token().is_some());
        assert!(sim.audit().is_empty(), "{:?}", sim.audit());
        let s = sim.stats();
        assert_eq!((s.entries, s.exits), (1, 1));
    }

    #[test]
    fn sim_token_loss_triggers_the_reloading_wave() {
        let mut sim = FallbackSim::new(5, 9, 1_000);
        sim.run(3);
        let at = sim.token().unwrap();
        assert!(sim.break_node(at), "break the token holder itself");
        assert!(sim.token().is_none(), "token died with its host");
        sim.run(100);
        assert!(sim.stats().regenerations >= 1, "reloading wave never ran");
        sim.heal_node(at);
        sim.run(10);
        assert!(sim.token().is_some());
        assert!(sim.audit().is_empty(), "{:?}", sim.audit());
    }

    #[test]
    fn sim_scales_to_large_rings() {
        let mut sim = FallbackSim::new(1_000, 5, 100);
        sim.run(50);
        sim.break_node(500);
        sim.run(2_000);
        sim.heal_node(500);
        sim.run(50);
        assert!(sim.mode_normal());
        assert!(sim.audit().is_empty(), "{:?}", sim.audit());
        assert!(sim.stats().grants > 0);
    }

    #[test]
    fn cover_envelope_grows_quadratically_with_the_live_segment() {
        let step = Duration::from_millis(1);
        assert_eq!(cover_time_envelope(2, step), Duration::from_millis(4));
        assert_eq!(cover_time_envelope(5, step), Duration::from_millis(64));
        assert!(cover_time_envelope(1, step) >= Duration::from_millis(4));
    }
}
