//! Degraded-mode token service: random-walk circulation for broken rings.
//!
//! SSRmin's graceful handover (Theorem 2) assumes an intact bidirectional
//! ring. The membership layer routinely breaks that assumption on purpose —
//! mid-splice parks, crashed members awaiting a restart or the liveness
//! reaper — and during those windows the handshake protocol simply stalls
//! at the hole. Bernard, Bui & Sohier's self-stabilizing random-walk token
//! circulation needs no ring at all: a single walker token is forwarded to
//! a uniformly random live neighbour, and a *reloading wave* regenerates
//! the token when it is lost with a crashed host. This module is the shared
//! model of that fallback, used by both the live UDP membership host
//! (`ssr-net`) and the DES twin below:
//!
//! * [`RandomWalker`] — the walker itself: a seeded position on the ring's
//!   liveness view, stepping to a uniformly random live neighbour (edges
//!   across a dead position are unusable, so a one-hole ring walks a path
//!   and reflects at the hole), regenerating at the first live position
//!   when its own host dies.
//! * [`live_segments`] — the partition geometry: holes cut the ring into
//!   maximal live arcs, and every arc is a first-class degraded-service
//!   *domain* with its own walker. Following Dastidar & Herman's separation
//!   of circulating tokens, concurrently live walkers are provably disjoint
//!   because their domains never share a position.
//! * [`FallbackArbiter`] — the mode state machine (`Normal` ⇄ `Degraded`)
//!   plus the grant ledger: every critical-section grant — walker-mode or
//!   handshake-mode — is a [`GrantWindow`] stamped with its domain, every
//!   mode switch a [`ModeSwitch`], and every merge-on-heal a [`MergeEvent`].
//!   When two arcs re-join, the walker with the lower `(generation, slot)`
//!   anchor survives and the other is retired under a quiesced hand-over.
//!   [`FallbackArbiter::audit`] proves after the fact that exclusivity was
//!   never violated across any split/merge interleaving: ≤ 1 open walker
//!   grant per domain at every instant, no node granted by two domains at
//!   once, retired domains silent after their merge, walker grants confined
//!   to quiesced degraded intervals and never overlapped by a handshake
//!   grant.
//! * [`FallbackSim`] — a discrete-event twin of the whole arrangement, so
//!   the break/heal interleaving space can be explored at scales (and
//!   event rates) the socket layer cannot reach.
//!
//! The walker's progress guarantee is per segment: the cover-time envelope
//! ([`cover_time_envelope`]) of a walker on its own arc of `m` live nodes
//! is `4·(m-1)²` steps — the worst-case expected hitting time on a path
//! with the same 4x slack the Theorem 2 wall-clock envelope uses.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Domain label of handshake grants in the ledger. Walker domains are the
/// walker ids, which start at 1.
pub const HANDSHAKE_DOMAIN: u64 = 0;

/// Which protocol granted a critical-section window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantMode {
    /// Degraded mode: the random walker visited the node.
    Walker,
    /// Normal mode: SSRmin's handshake privileged the node.
    Handshake,
}

/// One critical-section grant, microseconds from the arbiter's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantWindow {
    /// Granted node (a stable slot id on the live host, a ring index in
    /// the DES twin).
    pub node: usize,
    /// Who granted it.
    pub mode: GrantMode,
    /// Service domain: the id of the segment walker that issued a walker
    /// grant, or [`HANDSHAKE_DOMAIN`] for handshake grants. Two degraded
    /// segments are distinct domains over disjoint arcs, so their grants
    /// may legitimately overlap in time.
    pub domain: u64,
    /// Grant open, µs since epoch.
    pub from_us: u64,
    /// Grant close, µs since epoch.
    pub to_us: u64,
}

/// One mode transition of the fallback state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeSwitch {
    /// When, µs since the arbiter's epoch.
    pub at_us: u64,
    /// True: entered degraded mode. False: handed back to the handshake.
    pub degraded: bool,
}

/// One merge-on-heal: two live arcs re-joined and the higher-anchor walker
/// retired into the lower-anchor survivor under a quiesced hand-over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeEvent {
    /// When, µs since the arbiter's epoch.
    pub at_us: u64,
    /// Walker id that keeps serving the merged domain.
    pub survivor: u64,
    /// Walker id retired by this merge; it must never grant again.
    pub retired: u64,
    /// The surviving walker's `(generation, slot)` anchor — the lower of
    /// the two by the merge tie-break.
    pub anchor: (u64, usize),
}

/// A snapshot of one live degraded-service domain: the segment's walker,
/// its arc, and its anchor identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// The walker id — the domain label its grants carry.
    pub domain: u64,
    /// Ring positions of the arc, in arc order (may wrap position 0).
    pub positions: Vec<usize>,
    /// The segment's `(generation, slot)` anchor: the minimum over its
    /// live members, the identity merges tie-break on.
    pub anchor: (u64, usize),
    /// The walker's current ring position.
    pub position: usize,
    /// Forwarding steps this walker has taken.
    pub steps: u64,
}

/// Monotonic counters of the fallback service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FallbackStats {
    /// Times the ring entered degraded mode.
    pub entries: u64,
    /// Times it handed back to the handshake protocol.
    pub exits: u64,
    /// Walker forwarding steps taken (one logical message each), summed
    /// over every walker this arbiter ever ran.
    pub steps: u64,
    /// Critical-section grants issued by walkers.
    pub grants: u64,
    /// Reloading-wave token regenerations (walker lost with its host).
    pub regenerations: u64,
    /// Segment walkers minted over the arbiter's lifetime.
    pub walkers: u64,
    /// Merge-on-heal retirements: walkers absorbed into a lower-anchor
    /// survivor when two live arcs re-joined.
    pub merges: u64,
}

/// The Bernard–Bui–Sohier walker over a ring liveness view.
///
/// Positions index the view vector (ring order); an edge between adjacent
/// positions is usable only when both endpoints are live, so a dead member
/// leaves a hole the walker reflects at rather than crosses.
#[derive(Debug, Clone)]
pub struct RandomWalker {
    rng: StdRng,
    pos: usize,
    /// Forwarding steps taken.
    pub steps: u64,
    /// Reloading-wave regenerations performed.
    pub regenerations: u64,
}

impl RandomWalker {
    /// A walker starting at ring position `pos`, drawing neighbour choices
    /// from a deterministic stream seeded with `seed`.
    pub fn new(seed: u64, pos: usize) -> RandomWalker {
        RandomWalker { rng: StdRng::seed_from_u64(seed), pos, steps: 0, regenerations: 0 }
    }

    /// Current ring position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Move the walker to ring position `pos` without stepping — used when
    /// degraded mode takes over from the handshake, so the walker is
    /// minted where the handshake token last was (possibly on a now-dead
    /// host, in which case the next step runs the reloading wave).
    pub fn reposition(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Forward the walker one step over the liveness view `up` (indexed by
    /// ring position). Returns the position granted this step, or `None`
    /// when no position is live. If the walker's own host is dead the
    /// reloading wave regenerates it at the first live position; otherwise
    /// it moves to a uniformly random live neighbour (staying put only when
    /// both neighbouring edges are broken).
    pub fn step(&mut self, up: &[bool]) -> Option<usize> {
        let m = up.len();
        let first_live = up.iter().position(|&u| u)?;
        if self.pos >= m || !up[self.pos] {
            // Reloading wave: the token died with its host; mint a fresh
            // one at the lowest live ring position (nearest the anchor).
            self.pos = first_live;
            self.regenerations += 1;
            self.steps += 1;
            return Some(self.pos);
        }
        let succ = (self.pos + 1) % m;
        let pred = (self.pos + m - 1) % m;
        let mut choices = [0usize; 2];
        let mut live_deg = 0;
        if m > 1 && up[succ] {
            choices[live_deg] = succ;
            live_deg += 1;
        }
        if m > 2 && pred != succ && up[pred] {
            choices[live_deg] = pred;
            live_deg += 1;
        }
        if live_deg > 0 {
            self.pos = choices[self.rng.random_range(0..live_deg)];
        }
        self.steps += 1;
        Some(self.pos)
    }
}

/// Cover-time envelope of one segment walker on its arc of `live` live
/// members: the worst case (a path) has expected hitting time `(m-1)^2`
/// steps, and the envelope applies the same 4x slack as the Theorem 2
/// wall-clock envelope. Any degraded window in which consecutive walker
/// grants of the segment (or the window edges) gap by more than this is a
/// stall.
pub fn cover_time_envelope(live: usize, step: Duration) -> Duration {
    let m = live.max(2) as u32;
    step.saturating_mul(4 * (m - 1) * (m - 1))
}

/// The maximal live arcs of a broken ring: holes partition the circular
/// position space into segments, each returned in arc order (an arc may
/// wrap past position 0). An intact view is one segment covering the whole
/// ring; a fully dead view has none.
pub fn live_segments(up: &[bool]) -> Vec<Vec<usize>> {
    let n = up.len();
    let live = up.iter().filter(|&&u| u).count();
    if live == 0 {
        return Vec::new();
    }
    if live == n {
        return vec![(0..n).collect()];
    }
    let first_hole = up.iter().position(|&u| !u).expect("live < n");
    let mut segments = Vec::new();
    let mut run: Vec<usize> = Vec::new();
    for d in 1..=n {
        let p = (first_hole + d) % n;
        if up[p] {
            run.push(p);
        } else if !run.is_empty() {
            segments.push(std::mem::take(&mut run));
        }
    }
    if !run.is_empty() {
        segments.push(run);
    }
    segments.sort_by_key(|s| s[0].min(*s.last().expect("non-empty run")));
    segments
}

/// One degraded-service domain: a walker bound to a live arc, carrying the
/// arc's `(generation, slot)` anchor and its own grant-eligibility time
/// (fresh and freshly merged domains re-quiesce before granting).
#[derive(Debug, Clone)]
struct SegmentWalker {
    id: u64,
    walker: RandomWalker,
    positions: Vec<usize>,
    anchor: (u64, usize),
    eligible_us: u64,
}

/// The fallback state machine plus grant ledger shared by the live host
/// and the DES twin. Degraded holds are counted, not boolean: overlapping
/// causes (a crash during a splice) keep the ring degraded until every
/// hold is released. Every live arc of the current view owns one walker;
/// view changes split, spawn, merge and retire walkers as arcs break and
/// re-join.
#[derive(Debug, Clone)]
pub struct FallbackArbiter {
    seed: u64,
    walkers: Vec<SegmentWalker>,
    next_walker: u64,
    /// Per ring position: (stable node label, generation, up).
    view: Vec<(usize, u64, bool)>,
    holds: u32,
    /// Epoch µs when the current degraded interval became grant-eligible.
    eligible_us: u64,
    quiesce_us: u64,
    windows: Vec<GrantWindow>,
    switches: Vec<ModeSwitch>,
    merges: Vec<MergeEvent>,
    /// Steps / regenerations of walkers already retired or dropped.
    retired_steps: u64,
    retired_regens: u64,
    stats: FallbackStats,
}

impl FallbackArbiter {
    /// An arbiter whose walkers draw from streams derived from `seed` and
    /// whose degraded intervals only issue grants `quiesce_us` after entry
    /// — the margin that lets any handshake CS dwell in flight at the
    /// break finish before the first walker grant. The same margin re-arms
    /// per segment at every merge-on-heal.
    pub fn new(seed: u64, quiesce_us: u64) -> FallbackArbiter {
        FallbackArbiter {
            seed,
            walkers: Vec::new(),
            next_walker: 1,
            view: Vec::new(),
            holds: 0,
            eligible_us: 0,
            quiesce_us,
            windows: Vec::new(),
            switches: Vec::new(),
            merges: Vec::new(),
            retired_steps: 0,
            retired_regens: 0,
            stats: FallbackStats::default(),
        }
    }

    /// Replace the liveness view: `(node label, up)` in ring order, all
    /// generations zero (the DES twin's shape — anchors tie-break on the
    /// slot label alone). `now_us` timestamps any resulting merge.
    pub fn set_view(&mut self, view: Vec<(usize, bool)>, now_us: u64) {
        self.set_view_full(view.into_iter().map(|(label, up)| (label, 0, up)).collect(), now_us);
    }

    /// Replace the liveness view with full `(node label, generation, up)`
    /// triples in ring order — the live host's shape, where a relaunched
    /// slot's generation floor ranks its anchor below nobody it outlived.
    /// Segments are re-derived immediately: new arcs get fresh walkers,
    /// re-joined arcs merge under the `(generation, slot)` anchor
    /// tie-break, and fully dead arcs drop their walker.
    pub fn set_view_full(&mut self, view: Vec<(usize, u64, bool)>, now_us: u64) {
        self.view = view;
        self.sync_segments(now_us);
    }

    /// Re-derive the walker population from the current view.
    fn sync_segments(&mut self, now_us: u64) {
        let up: Vec<bool> = self.view.iter().map(|v| v.2).collect();
        let segments = live_segments(&up);
        let walkers = std::mem::take(&mut self.walkers);
        let mut buckets: Vec<Vec<SegmentWalker>> =
            (0..segments.len()).map(|_| Vec::new()).collect();
        for w in walkers {
            // A walker follows its current position into the new geometry;
            // if its host died, it follows any still-live member of its old
            // arc. A walker whose whole arc died has nothing to hand over.
            let target =
                segments.iter().position(|s| s.contains(&w.walker.position())).or_else(|| {
                    segments.iter().position(|s| w.positions.iter().any(|p| s.contains(p)))
                });
            match target {
                Some(t) => buckets[t].push(w),
                None => {
                    self.retired_steps += w.walker.steps;
                    self.retired_regens += w.walker.regenerations;
                }
            }
        }
        for (segment, mut bucket) in segments.into_iter().zip(buckets) {
            let anchor = self.segment_anchor(&segment);
            if bucket.is_empty() {
                let id = self.next_walker;
                self.next_walker += 1;
                self.stats.walkers += 1;
                let seed = self.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                self.walkers.push(SegmentWalker {
                    id,
                    walker: RandomWalker::new(seed, segment[0]),
                    positions: segment,
                    anchor,
                    eligible_us: now_us.saturating_add(self.quiesce_us),
                });
                continue;
            }
            // Merge-on-heal: the walker with the lowest (generation, slot)
            // anchor survives; the rest retire. The survivor re-quiesces
            // before its first grant over the merged domain, so a retired
            // walker's open dwell can never overlap it.
            bucket.sort_by_key(|w| (w.anchor, w.id));
            let mut survivor = bucket.remove(0);
            for retired in bucket {
                self.merges.push(MergeEvent {
                    at_us: now_us,
                    survivor: survivor.id,
                    retired: retired.id,
                    anchor: survivor.anchor,
                });
                self.stats.merges += 1;
                self.retired_steps += retired.walker.steps;
                self.retired_regens += retired.walker.regenerations;
                survivor.eligible_us =
                    survivor.eligible_us.max(now_us.saturating_add(self.quiesce_us));
            }
            survivor.anchor = anchor;
            survivor.positions = segment;
            self.walkers.push(survivor);
        }
        self.walkers.sort_by_key(|w| w.id);
    }

    /// The `(generation, slot)` anchor of a segment: the minimum over its
    /// members.
    fn segment_anchor(&self, segment: &[usize]) -> (u64, usize) {
        segment.iter().map(|&p| (self.view[p].1, self.view[p].0)).min().unwrap_or((0, 0))
    }

    /// Mint the walker serving ring position `pos` there — where the
    /// handshake token last was when the break opened. A dead `pos` makes
    /// that walker's first step a reloading-wave regeneration.
    pub fn seed_walker(&mut self, pos: usize) {
        let at = self.walkers.iter().position(|w| w.positions.contains(&pos)).unwrap_or(0);
        if let Some(w) = self.walkers.get_mut(at) {
            w.walker.reposition(pos);
        }
    }

    /// Whether the ring is currently degraded.
    pub fn degraded(&self) -> bool {
        self.holds > 0
    }

    /// Number of live degraded-service domains (arcs with a walker).
    pub fn segment_count(&self) -> usize {
        self.walkers.len()
    }

    /// Snapshot of every live segment: domain id, arc, anchor, walker
    /// position and step count.
    pub fn segments(&self) -> Vec<SegmentInfo> {
        self.walkers
            .iter()
            .map(|w| SegmentInfo {
                domain: w.id,
                positions: w.positions.clone(),
                anchor: w.anchor,
                position: w.walker.position(),
                steps: w.walker.steps,
            })
            .collect()
    }

    /// Every merge-on-heal so far, in time order.
    pub fn merges(&self) -> &[MergeEvent] {
        &self.merges
    }

    /// Take one degraded hold (crash opened, splice began, ...). The first
    /// hold switches the mode.
    pub fn enter(&mut self, now_us: u64) {
        self.holds += 1;
        if self.holds == 1 {
            self.stats.entries += 1;
            self.eligible_us = now_us.saturating_add(self.quiesce_us);
            self.switches.push(ModeSwitch { at_us: now_us, degraded: true });
        }
    }

    /// Release one degraded hold; releasing the last one hands the segment
    /// back to the handshake protocol.
    pub fn exit(&mut self, now_us: u64) {
        debug_assert!(self.holds > 0, "fallback exit without a matching enter");
        self.holds = self.holds.saturating_sub(1);
        if self.holds == 0 {
            self.stats.exits += 1;
            self.switches.push(ModeSwitch { at_us: now_us, degraded: false });
        }
    }

    /// One walker tick at `now_us`: in degraded mode (past the quiesce
    /// margin) every eligible segment walker forwards over its own arc and
    /// grants its position a CS window of `dwell_us`. Returns the granted
    /// node labels — one per served segment, pairwise distinct because
    /// arcs are disjoint.
    pub fn tick(&mut self, now_us: u64, dwell_us: u64) -> Vec<usize> {
        let mut granted = Vec::new();
        if self.holds == 0 || now_us < self.eligible_us {
            return granted;
        }
        let up: Vec<bool> = self.view.iter().map(|v| v.2).collect();
        let mut masked = vec![false; up.len()];
        for i in 0..self.walkers.len() {
            if now_us < self.walkers[i].eligible_us {
                continue;
            }
            // Each walker steps over its arc alone: the mask keeps the
            // reloading wave from regenerating into a foreign segment.
            masked.iter_mut().for_each(|m| *m = false);
            for &p in &self.walkers[i].positions {
                masked[p] = up[p];
            }
            let Some(pos) = self.walkers[i].walker.step(&masked) else { continue };
            let node = self.view[pos].0;
            self.stats.grants += 1;
            self.windows.push(GrantWindow {
                node,
                mode: GrantMode::Walker,
                domain: self.walkers[i].id,
                from_us: now_us,
                to_us: now_us.saturating_add(dwell_us),
            });
            granted.push(node);
        }
        granted
    }

    /// Record a handshake-mode grant (the DES twin's token dwell; the live
    /// host derives these from its activity trace instead).
    pub fn grant_handshake(&mut self, node: usize, from_us: u64, to_us: u64) {
        self.windows.push(GrantWindow {
            node,
            mode: GrantMode::Handshake,
            domain: HANDSHAKE_DOMAIN,
            from_us,
            to_us,
        });
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FallbackStats {
        let mut stats = self.stats;
        stats.steps = self.retired_steps + self.walkers.iter().map(|w| w.walker.steps).sum::<u64>();
        stats.regenerations =
            self.retired_regens + self.walkers.iter().map(|w| w.walker.regenerations).sum::<u64>();
        stats
    }

    /// Every grant issued so far, in issue order.
    pub fn windows(&self) -> &[GrantWindow] {
        &self.windows
    }

    /// Every mode switch so far, in time order.
    pub fn switches(&self) -> &[ModeSwitch] {
        &self.switches
    }

    /// The handover audit: prove that exclusivity survived every mode
    /// switch and every split/merge. See [`audit_handover`].
    pub fn audit(&self) -> Vec<String> {
        audit_handover(&self.windows, &self.switches, &self.merges, self.quiesce_us)
    }
}

/// Degraded intervals `[enter, exit)` reconstructed from a switch list; an
/// unclosed interval extends to `u64::MAX`.
fn degraded_intervals(switches: &[ModeSwitch]) -> Vec<(u64, u64)> {
    let mut intervals = Vec::new();
    let mut open: Option<u64> = None;
    for s in switches {
        match (s.degraded, open) {
            (true, None) => open = Some(s.at_us),
            (false, Some(from)) => {
                intervals.push((from, s.at_us));
                open = None;
            }
            _ => {}
        }
    }
    if let Some(from) = open {
        intervals.push((from, u64::MAX));
    }
    intervals
}

/// The standalone handover audit over a grant ledger, a mode-switch
/// history and a merge ledger (see [`FallbackArbiter::audit`]). Returns
/// human-readable violations (empty = clean):
///
/// 1. mode switches alternate enter/exit in nondecreasing time order;
/// 2. walker grants of one domain are pairwise disjoint (≤ 1 grantor per
///    domain at every instant), overlapping walker grants of *different*
///    domains never grant the same node (domains are disjoint arcs), and a
///    walker grant never overlaps a handshake grant — no (1,2)-CS
///    violation survives any split/merge interleaving;
/// 3. every walker grant lies inside a degraded interval, at or after
///    the quiesce margin;
/// 4. no handshake grant intrudes into the grant-eligible part of a
///    degraded interval;
/// 5. a retired walker domain issues no grant at or after its merge.
pub fn audit_handover(
    windows: &[GrantWindow],
    switches: &[ModeSwitch],
    merges: &[MergeEvent],
    quiesce_us: u64,
) -> Vec<String> {
    let mut violations = Vec::new();

    // 1. Switches must alternate and be time-ordered.
    let mut last_at = 0u64;
    let mut degraded = false;
    for s in switches {
        if s.at_us < last_at {
            violations.push(format!("mode switch at {}us precedes {}us", s.at_us, last_at));
        }
        if s.degraded == degraded {
            violations.push(format!(
                "mode switch at {}us repeats {} state",
                s.at_us,
                if degraded { "degraded" } else { "normal" }
            ));
        }
        degraded = s.degraded;
        last_at = s.at_us;
    }

    // 2. Overlap sweep. Handshake grants may overlap each other: SSRmin's
    // (1,2)-CS allows two privileged nodes. Walker grants of different
    // domains may overlap each other (disjoint arcs), but never the same
    // node; within one domain the walker is the sole CS authority.
    let mut sorted: Vec<GrantWindow> = windows.to_vec();
    sorted.sort_by_key(|w| (w.from_us, w.to_us));
    for i in 0..sorted.len() {
        let a = sorted[i];
        for &b in sorted[i + 1..].iter().take_while(|b| b.from_us < a.to_us) {
            match (a.mode, b.mode) {
                (GrantMode::Handshake, GrantMode::Handshake) => {}
                (GrantMode::Walker, GrantMode::Walker) if a.domain == b.domain => {
                    violations.push(format!(
                        "two walker grants overlap in domain {}: node {} [{}..{}us] vs \
                         node {} [{}..{}us]",
                        a.domain, a.node, a.from_us, a.to_us, b.node, b.from_us, b.to_us
                    ));
                }
                (GrantMode::Walker, GrantMode::Walker) => {
                    if a.node == b.node {
                        violations.push(format!(
                            "node {} granted by walker domains {} and {} at once \
                             [{}..{}us vs {}..{}us]",
                            a.node, a.domain, b.domain, a.from_us, a.to_us, b.from_us, b.to_us
                        ));
                    }
                }
                _ => violations.push(format!(
                    "grant overlap across modes: node {} [{}..{}us, {:?}] vs node {} \
                     [{}..{}us, {:?}]",
                    a.node, a.from_us, a.to_us, a.mode, b.node, b.from_us, b.to_us, b.mode
                )),
            }
        }
    }

    // 3 + 4. Containment against degraded intervals.
    let intervals = degraded_intervals(switches);
    for w in windows {
        let eligible = intervals
            .iter()
            .find(|&&(from, to)| w.from_us >= from.saturating_add(quiesce_us) && w.to_us <= to);
        let intrudes = intervals
            .iter()
            .any(|&(from, to)| w.from_us < to && w.to_us > from.saturating_add(quiesce_us));
        match w.mode {
            GrantMode::Walker if eligible.is_none() => violations.push(format!(
                "walker grant to node {} [{}..{}us] outside any quiesced degraded interval",
                w.node, w.from_us, w.to_us
            )),
            GrantMode::Handshake if intrudes => violations.push(format!(
                "handshake grant to node {} [{}..{}us] inside a degraded interval",
                w.node, w.from_us, w.to_us
            )),
            _ => {}
        }
    }

    // 5. Retired domains are silent from their merge onward.
    for m in merges {
        for w in windows {
            if w.mode == GrantMode::Walker && w.domain == m.retired && w.from_us >= m.at_us {
                violations.push(format!(
                    "retired walker domain {} granted node {} at {}us, after its merge \
                     into domain {} at {}us",
                    m.retired, w.node, w.from_us, m.survivor, m.at_us
                ));
            }
        }
    }
    violations
}

/// Discrete-event twin of the degraded-mode arrangement: an `n`-ring whose
/// token circulates one position per tick in normal mode (the handshake,
/// abstracted to its grant schedule), with seeded break/heal events that
/// switch service to per-segment random walkers and back. An arbitrarily
/// broken ring is served arc by arc: every live segment owns a walker, and
/// heals merge walkers under the anchor tie-break. Time is µs; every tick
/// advances `step_us`.
#[derive(Debug, Clone)]
pub struct FallbackSim {
    n: usize,
    step_us: u64,
    now_us: u64,
    up: Vec<bool>,
    /// Ring position of the handshake token (None while degraded or lost).
    token: Option<usize>,
    arb: FallbackArbiter,
}

impl FallbackSim {
    /// A healthy `n`-ring with its token at the anchor. The walker's
    /// quiesce margin is one tick, matching the live host's dwell bound.
    pub fn new(n: usize, seed: u64, step_us: u64) -> FallbackSim {
        let step_us = step_us.max(1);
        let mut arb = FallbackArbiter::new(seed, step_us);
        arb.set_view((0..n).map(|i| (i, true)).collect(), 0);
        FallbackSim { n, step_us, now_us: 0, up: vec![true; n], token: Some(0), arb }
    }

    /// Current simulated time, µs.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Whether the sim is in normal (handshake) mode.
    pub fn mode_normal(&self) -> bool {
        !self.arb.degraded()
    }

    /// The handshake token's position, if it exists.
    pub fn token(&self) -> Option<usize> {
        self.token
    }

    /// Live-node count.
    pub fn live(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }

    /// Number of live degraded-service domains.
    pub fn segments(&self) -> usize {
        self.arb.segment_count()
    }

    /// Snapshot of every live segment.
    pub fn segment_detail(&self) -> Vec<SegmentInfo> {
        self.arb.segments()
    }

    /// Every merge-on-heal so far.
    pub fn merges(&self) -> &[MergeEvent] {
        self.arb.merges()
    }

    /// Crash ring position `node`. Refused (returning false) when it is
    /// already down or when it is the last live node — the walkers need a
    /// segment to serve.
    pub fn break_node(&mut self, node: usize) -> bool {
        if node >= self.n || !self.up[node] || self.live() <= 1 {
            return false;
        }
        self.up[node] = false;
        let entering = !self.arb.degraded();
        self.arb.set_view((0..self.n).map(|i| (i, self.up[i])).collect(), self.now_us);
        if entering {
            // Mint the walker where the handshake token last was; if the
            // token died with this very host the walker's first step runs
            // the reloading wave.
            self.arb.seed_walker(self.token.unwrap_or(0));
        }
        if self.token == Some(node) {
            self.token = None;
        }
        self.arb.enter(self.now_us);
        true
    }

    /// Heal ring position `node`. Re-joined arcs merge their walkers under
    /// the anchor tie-break; when the last hole closes the segment hands
    /// back to the handshake: the token resumes at the last walker grant's
    /// position (graceful handover), or regenerates at the anchor if no
    /// walker ever ran.
    pub fn heal_node(&mut self, node: usize) -> bool {
        if node >= self.n || self.up[node] {
            return false;
        }
        self.up[node] = true;
        self.arb.set_view((0..self.n).map(|i| (i, self.up[i])).collect(), self.now_us);
        self.arb.exit(self.now_us);
        if !self.arb.degraded() {
            let resume = self.arb.windows().iter().rev().find(|w| w.mode == GrantMode::Walker);
            self.token = Some(match (resume, self.token) {
                (Some(w), _) => w.node,
                (None, Some(t)) => t,
                (None, None) => 0,
            });
        }
        true
    }

    /// One simulation tick: every segment walker steps in degraded mode,
    /// the token advances to the next live position in normal mode; either
    /// way the visited nodes get a half-tick CS grant.
    pub fn tick(&mut self) {
        let dwell = self.step_us / 2;
        if self.arb.degraded() {
            self.arb.tick(self.now_us, dwell.max(1));
        } else if let Some(at) = self.token {
            let next = (1..=self.n).map(|d| (at + d) % self.n).find(|&p| self.up[p]).unwrap_or(at);
            self.token = Some(next);
            self.arb.grant_handshake(next, self.now_us, self.now_us + dwell.max(1));
        }
        self.now_us += self.step_us;
    }

    /// Run `ticks` simulation ticks.
    pub fn run(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.tick();
        }
    }

    /// Counter snapshot of the fallback service.
    pub fn stats(&self) -> FallbackStats {
        self.arb.stats()
    }

    /// The grant ledger.
    pub fn windows(&self) -> &[GrantWindow] {
        self.arb.windows()
    }

    /// The handover audit over everything this sim has done.
    pub fn audit(&self) -> Vec<String> {
        self.arb.audit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_reflects_at_the_hole_and_covers_the_path() {
        // Ring of 6 with position 3 dead: the walker lives on the path
        // 4-5-0-1-2 and must visit every live node well within the cover
        // envelope.
        let up = [true, true, true, false, true, true];
        let mut w = RandomWalker::new(7, 0);
        let mut visited = [false; 6];
        let budget = 4 * 5 * 5; // cover_time_envelope in steps for m=6 live... generous
        for _ in 0..budget {
            let pos = w.step(&up).unwrap();
            assert_ne!(pos, 3, "the walker crossed a dead position");
            visited[pos] = true;
        }
        for (i, &v) in visited.iter().enumerate() {
            assert!(v || i == 3, "position {i} never visited in {budget} steps");
        }
        assert_eq!(w.regenerations, 0);
    }

    #[test]
    fn reloading_wave_regenerates_a_lost_token() {
        let mut up = [true; 4];
        let mut w = RandomWalker::new(3, 2);
        up[2] = false;
        // First live position after the dead host is 0.
        let pos = w.step(&up).unwrap();
        assert_eq!(pos, 0);
        assert_eq!(w.regenerations, 1);
        // A fully dead view yields no grant at all.
        assert!(w.step(&[false, false]).is_none());
    }

    #[test]
    fn walker_is_deterministic_per_seed() {
        let up = [true, true, false, true, true];
        let runs: Vec<Vec<usize>> = (0..2)
            .map(|_| {
                let mut w = RandomWalker::new(99, 0);
                (0..64).map(|_| w.step(&up).unwrap()).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn segments_partition_the_ring_at_its_holes() {
        assert_eq!(live_segments(&[true; 5]), vec![vec![0, 1, 2, 3, 4]]);
        assert!(live_segments(&[false; 3]).is_empty());
        // One hole: one arc, wrapping past the anchor.
        assert_eq!(live_segments(&[true, true, false, true]), vec![vec![3, 0, 1]]);
        // Two holes: two arcs.
        let segs = live_segments(&[true, true, false, true, true, false, true, true, true]);
        assert_eq!(segs, vec![vec![6, 7, 8, 0, 1], vec![3, 4]]);
        // Adjacent holes collapse into one.
        assert_eq!(live_segments(&[true, false, false, true]), vec![vec![3, 0]]);
    }

    #[test]
    fn arbiter_confines_walker_grants_to_quiesced_degraded_intervals() {
        let mut arb = FallbackArbiter::new(1, 10);
        arb.set_view(vec![(0, true), (1, true), (2, false), (3, true)], 0);
        assert!(arb.tick(0, 5).is_empty(), "no grants in normal mode");
        arb.enter(100);
        assert!(arb.tick(105, 5).is_empty(), "no grants inside the quiesce margin");
        assert!(!arb.tick(110, 5).is_empty());
        assert!(!arb.tick(120, 5).is_empty());
        arb.exit(130);
        assert!(arb.tick(140, 5).is_empty(), "no grants after hand-back");
        arb.grant_handshake(1, 150, 155);
        assert!(arb.audit().is_empty(), "{:?}", arb.audit());
        let stats = arb.stats();
        assert_eq!((stats.entries, stats.exits, stats.grants), (1, 1, 2));
    }

    #[test]
    fn every_live_arc_gets_its_own_walker_and_grants() {
        // Ring of 9 with holes at 2 and 6: arcs {3,4,5} and {7,8,0,1}.
        let mut arb = FallbackArbiter::new(5, 10);
        let up = |p: usize| p != 2 && p != 6;
        arb.set_view((0..9).map(|p| (p, up(p))).collect(), 0);
        assert_eq!(arb.segment_count(), 2);
        arb.enter(0);
        let mut granted: Vec<Vec<usize>> = vec![Vec::new(); 2];
        for t in 0..200u64 {
            arb.tick(10 + t * 10, 4);
        }
        for w in arb.windows() {
            assert_eq!(w.mode, GrantMode::Walker);
            let arc = if [3, 4, 5].contains(&w.node) { 1 } else { 0 };
            granted[arc].push(w.node);
        }
        assert!(!granted[0].is_empty(), "the wrapping arc starved");
        assert!(!granted[1].is_empty(), "the inner arc starved");
        // Both domains served on the same ticks: overlapping grants across
        // domains are legitimate and the audit must accept them.
        arb.exit(10_000);
        assert!(arb.audit().is_empty(), "{:?}", arb.audit());
    }

    #[test]
    fn merge_on_heal_retires_the_higher_anchor_walker() {
        let mut arb = FallbackArbiter::new(9, 10);
        // Holes at 2 and 6 → two domains.
        let broken: Vec<(usize, bool)> = (0..9).map(|p| (p, p != 2 && p != 6)).collect();
        arb.set_view(broken, 0);
        arb.enter(0);
        assert_eq!(arb.segment_count(), 2);
        let before = arb.segments();
        // Heal position 2: arcs {3,4,5} and {7,8,0,1} join into one.
        arb.set_view((0..9).map(|p| (p, p != 6)).collect(), 500);
        arb.exit(500);
        assert_eq!(arb.segment_count(), 1);
        let merges = arb.merges();
        assert_eq!(merges.len(), 1);
        let low = before.iter().map(|s| s.anchor).min().unwrap();
        let survivor_id = before.iter().find(|s| s.anchor == low).map(|s| s.domain).unwrap();
        assert_eq!(merges[0].survivor, survivor_id, "lower anchor must survive");
        assert_eq!(arb.segments()[0].anchor, (0, 0), "merged arc contains the anchor slot");
        assert_eq!(arb.stats().merges, 1);
        assert!(arb.audit().is_empty(), "{:?}", arb.audit());
    }

    #[test]
    fn generation_ranks_anchors_before_slot_labels() {
        let mut arb = FallbackArbiter::new(4, 10);
        // Slots 0 and 4 have been relaunched (generation 7); slot 2 never
        // has. The arc holding slot 2 owns the lower anchor despite the
        // higher slot label.
        let view: Vec<(usize, u64, bool)> =
            vec![(0, 7, true), (1, 0, false), (2, 0, true), (3, 0, false), (4, 7, true)];
        arb.set_view_full(view, 0);
        assert_eq!(arb.segment_count(), 2);
        arb.enter(0);
        // Heal position 3 → arcs {2} ∪ {4,0} join.
        arb.set_view_full(
            vec![(0, 7, true), (1, 0, false), (2, 0, true), (3, 0, true), (4, 7, true)],
            100,
        );
        arb.exit(100);
        let merges = arb.merges();
        assert_eq!(merges.len(), 1);
        assert_eq!(merges[0].anchor, (0, 2), "generation outranks the slot label");
    }

    #[test]
    fn audit_flags_cross_mode_overlap_and_stray_grants() {
        let switches =
            [ModeSwitch { at_us: 100, degraded: true }, ModeSwitch { at_us: 200, degraded: false }];
        // A handshake grant overlapping a walker grant inside the window.
        let windows = [
            GrantWindow { node: 1, mode: GrantMode::Walker, domain: 1, from_us: 120, to_us: 130 },
            GrantWindow {
                node: 2,
                mode: GrantMode::Handshake,
                domain: HANDSHAKE_DOMAIN,
                from_us: 125,
                to_us: 135,
            },
        ];
        let v = audit_handover(&windows, &switches, &[], 10);
        assert!(v.iter().any(|m| m.contains("overlap")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("inside a degraded interval")), "{v:?}");

        // A walker grant outside any degraded interval.
        let stray =
            [GrantWindow { node: 0, mode: GrantMode::Walker, domain: 1, from_us: 300, to_us: 310 }];
        let v = audit_handover(&stray, &switches, &[], 10);
        assert!(v.iter().any(|m| m.contains("outside any quiesced")), "{v:?}");

        // Unbalanced switches.
        let bad =
            [ModeSwitch { at_us: 10, degraded: true }, ModeSwitch { at_us: 20, degraded: true }];
        assert!(!audit_handover(&[], &bad, &[], 0).is_empty());
    }

    #[test]
    fn audit_flags_per_domain_violations() {
        let switches = [ModeSwitch { at_us: 0, degraded: true }];
        // Two overlapping grants in one domain: a double grant.
        let same_domain = [
            GrantWindow { node: 1, mode: GrantMode::Walker, domain: 1, from_us: 100, to_us: 120 },
            GrantWindow { node: 2, mode: GrantMode::Walker, domain: 1, from_us: 110, to_us: 130 },
        ];
        let v = audit_handover(&same_domain, &switches, &[], 10);
        assert!(v.iter().any(|m| m.contains("overlap in domain 1")), "{v:?}");

        // Overlapping grants of two domains are fine — unless to one node.
        let cross = [
            GrantWindow { node: 1, mode: GrantMode::Walker, domain: 1, from_us: 100, to_us: 120 },
            GrantWindow { node: 2, mode: GrantMode::Walker, domain: 2, from_us: 110, to_us: 130 },
        ];
        assert!(audit_handover(&cross, &switches, &[], 10).is_empty());
        let collide = [
            GrantWindow { node: 1, mode: GrantMode::Walker, domain: 1, from_us: 100, to_us: 120 },
            GrantWindow { node: 1, mode: GrantMode::Walker, domain: 2, from_us: 110, to_us: 130 },
        ];
        let v = audit_handover(&collide, &switches, &[], 10);
        assert!(v.iter().any(|m| m.contains("granted by walker domains")), "{v:?}");

        // A retired domain granting after its merge.
        let merges = [MergeEvent { at_us: 150, survivor: 1, retired: 2, anchor: (0, 0) }];
        let late =
            [GrantWindow { node: 3, mode: GrantMode::Walker, domain: 2, from_us: 160, to_us: 170 }];
        let v = audit_handover(&late, &switches, &merges, 10);
        assert!(v.iter().any(|m| m.contains("retired walker domain 2")), "{v:?}");
    }

    #[test]
    fn sim_breaks_heal_and_hand_back_with_a_clean_audit() {
        let mut sim = FallbackSim::new(6, 42, 1_000);
        sim.run(20);
        assert!(sim.mode_normal());
        assert!(sim.break_node(3));
        assert!(!sim.break_node(3), "already down");
        sim.run(200);
        assert!(!sim.mode_normal());
        assert!(sim.stats().grants > 0, "walker never granted during the break");
        assert!(sim.heal_node(3));
        sim.run(20);
        assert!(sim.mode_normal());
        assert!(sim.token().is_some());
        assert!(sim.audit().is_empty(), "{:?}", sim.audit());
        let s = sim.stats();
        assert_eq!((s.entries, s.exits), (1, 1));
    }

    #[test]
    fn sim_double_partition_serves_both_arcs_and_merges_on_heal() {
        let mut sim = FallbackSim::new(9, 17, 1_000);
        sim.run(10);
        assert!(sim.break_node(2));
        assert!(sim.break_node(6));
        assert_eq!(sim.segments(), 2, "two holes must cut two arcs");
        sim.run(400);
        let domains: std::collections::BTreeSet<u64> = sim
            .windows()
            .iter()
            .filter(|w| w.mode == GrantMode::Walker)
            .map(|w| w.domain)
            .collect();
        assert_eq!(domains.len(), 2, "both arcs must be served, got {domains:?}");
        // Staggered heal: the first heal merges the arcs, the second
        // closes the ring.
        assert!(sim.heal_node(2));
        assert_eq!(sim.segments(), 1);
        assert_eq!(sim.merges().len(), 1);
        assert!(!sim.mode_normal(), "one hole still open");
        sim.run(100);
        assert!(sim.heal_node(6));
        sim.run(20);
        assert!(sim.mode_normal());
        assert!(sim.token().is_some());
        assert!(sim.audit().is_empty(), "{:?}", sim.audit());
        assert_eq!(sim.stats().merges, 1);
    }

    #[test]
    fn sim_token_loss_triggers_the_reloading_wave() {
        let mut sim = FallbackSim::new(5, 9, 1_000);
        sim.run(3);
        let at = sim.token().unwrap();
        assert!(sim.break_node(at), "break the token holder itself");
        assert!(sim.token().is_none(), "token died with its host");
        sim.run(100);
        assert!(sim.stats().regenerations >= 1, "reloading wave never ran");
        sim.heal_node(at);
        sim.run(10);
        assert!(sim.token().is_some());
        assert!(sim.audit().is_empty(), "{:?}", sim.audit());
    }

    #[test]
    fn sim_scales_to_large_rings() {
        let mut sim = FallbackSim::new(1_000, 5, 100);
        sim.run(50);
        sim.break_node(500);
        sim.run(2_000);
        sim.heal_node(500);
        sim.run(50);
        assert!(sim.mode_normal());
        assert!(sim.audit().is_empty(), "{:?}", sim.audit());
        assert!(sim.stats().grants > 0);
    }

    #[test]
    fn cover_envelope_grows_quadratically_with_the_live_segment() {
        let step = Duration::from_millis(1);
        assert_eq!(cover_time_envelope(2, step), Duration::from_millis(4));
        assert_eq!(cover_time_envelope(5, step), Duration::from_millis(64));
        assert!(cover_time_envelope(1, step) >= Duration::from_millis(4));
    }
}
