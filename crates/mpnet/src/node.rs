//! CST node state: the algorithm's local variables plus the neighbour-state
//! caches `Z_i[·]` of Algorithm 4.
//!
//! The working-set type itself lives in [`ssr_core::replica`] so that the
//! discrete-event simulator here, the threaded runtime (`ssr-runtime`) and
//! the UDP transport (`ssr-net`) all share one replica implementation;
//! `Node` is the simulator-local name for it.

/// One node of the transformed (message-passing) system: its real local
/// state plus cached copies of both ring neighbours' states.
pub type Node<S> = ssr_core::Replica<S>;

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::{RingParams, SsrMin, SsrState};

    fn setup() -> (SsrMin, Node<SsrState>) {
        let algo = SsrMin::new(RingParams::new(5, 7).unwrap());
        // P1's view in the legitimate configuration (3.1.0, 3.0.0, ...):
        // predecessor offers the secondary token.
        let node = Node::coherent(
            "3.0.0".parse().unwrap(),
            "3.1.0".parse().unwrap(),
            "3.0.0".parse().unwrap(),
        );
        (algo, node)
    }

    #[test]
    fn enabled_rule_uses_cached_view() {
        let (algo, node) = setup();
        assert_eq!(node.enabled_rule(&algo, 1), Some(ssr_core::SsrRule::R3));
    }

    #[test]
    fn execute_one_updates_own_state_and_counter() {
        let (algo, mut node) = setup();
        let fired = node.execute_one(&algo, 1);
        assert_eq!(fired, Some(ssr_core::SsrRule::R3));
        assert_eq!(node.own, "3.0.1".parse().unwrap());
        assert_eq!(node.rules_executed, 1);
        // Now disabled on the unchanged cached view.
        assert_eq!(node.execute_one(&algo, 1), None);
        assert_eq!(node.rules_executed, 1);
    }

    #[test]
    fn tokens_evaluated_locally() {
        let (algo, mut node) = setup();
        // Before receiving: no token at P1.
        assert!(!node.tokens(&algo, 1).any());
        node.execute_one(&algo, 1);
        // After Rule 3: tra = 1 → secondary token held locally.
        assert!(node.tokens(&algo, 1).secondary);
    }

    #[test]
    fn coherence_check_compares_both_caches() {
        let (_, node) = setup();
        let pred_actual: SsrState = "3.1.0".parse().unwrap();
        let succ_actual: SsrState = "3.0.0".parse().unwrap();
        assert!(node.is_coherent(&pred_actual, &succ_actual));
        let moved: SsrState = "4.0.0".parse().unwrap();
        assert!(!node.is_coherent(&moved, &succ_actual));
        assert!(!node.is_coherent(&pred_actual, &moved));
    }
}
