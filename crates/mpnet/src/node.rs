//! CST node state: the algorithm's local variables plus the neighbour-state
//! caches `Z_i[·]` of Algorithm 4.

use ssr_core::{RingAlgorithm, TokenSet};

/// One node of the transformed (message-passing) system: its real local
/// state plus cached copies of both ring neighbours' states.
#[derive(Debug, Clone, PartialEq)]
pub struct Node<S> {
    /// The algorithm's local variables `q_i`.
    pub own: S,
    /// `Z_i[v_{i-1}]` — cache of the predecessor's state.
    pub cache_pred: S,
    /// `Z_i[v_{i+1}]` — cache of the successor's state.
    pub cache_succ: S,
    /// Statistics: rules executed by this node.
    pub rules_executed: u64,
    /// Statistics: messages received (after the loss process).
    pub messages_received: u64,
}

impl<S: Clone + PartialEq> Node<S> {
    /// A node whose caches already agree with the given neighbour states
    /// (cache-coherent start).
    pub fn coherent(own: S, pred: S, succ: S) -> Self {
        Node { own, cache_pred: pred, cache_succ: succ, rules_executed: 0, messages_received: 0 }
    }

    /// Evaluate the algorithm's enabled rule *on the cached view* — this is
    /// exactly how the transformed node decides to act (Algorithm 4 line 9).
    pub fn enabled_rule<A>(&self, algo: &A, i: usize) -> Option<A::Rule>
    where
        A: RingAlgorithm<State = S>,
    {
        algo.enabled_rule(i, &self.own, &self.cache_pred, &self.cache_succ)
    }

    /// Execute one enabled rule on the cached view, if any; returns the rule
    /// that fired. The own state is updated in place.
    pub fn execute_one<A>(&mut self, algo: &A, i: usize) -> Option<A::Rule>
    where
        A: RingAlgorithm<State = S>,
    {
        let rule = self.enabled_rule(algo, i)?;
        self.own = algo.execute(i, rule, &self.own, &self.cache_pred, &self.cache_succ);
        self.rules_executed += 1;
        Some(rule)
    }

    /// The node's *local* token evaluation — own state plus caches. This is
    /// the predicate a deployed node uses to decide whether it is privileged
    /// (e.g. whether its camera must stay on), so it is the quantity whose
    /// minimum Theorem 3 bounds below by one.
    pub fn tokens<A>(&self, algo: &A, i: usize) -> TokenSet
    where
        A: RingAlgorithm<State = S>,
    {
        algo.tokens_at(i, &self.own, &self.cache_pred, &self.cache_succ)
    }

    /// True iff this node's caches agree with the actual neighbour states.
    pub fn is_coherent(&self, actual_pred: &S, actual_succ: &S) -> bool {
        self.cache_pred == *actual_pred && self.cache_succ == *actual_succ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::{RingParams, SsrMin, SsrState};

    fn setup() -> (SsrMin, Node<SsrState>) {
        let algo = SsrMin::new(RingParams::new(5, 7).unwrap());
        // P1's view in the legitimate configuration (3.1.0, 3.0.0, ...):
        // predecessor offers the secondary token.
        let node = Node::coherent(
            "3.0.0".parse().unwrap(),
            "3.1.0".parse().unwrap(),
            "3.0.0".parse().unwrap(),
        );
        (algo, node)
    }

    #[test]
    fn enabled_rule_uses_cached_view() {
        let (algo, node) = setup();
        assert_eq!(node.enabled_rule(&algo, 1), Some(ssr_core::SsrRule::R3));
    }

    #[test]
    fn execute_one_updates_own_state_and_counter() {
        let (algo, mut node) = setup();
        let fired = node.execute_one(&algo, 1);
        assert_eq!(fired, Some(ssr_core::SsrRule::R3));
        assert_eq!(node.own, "3.0.1".parse().unwrap());
        assert_eq!(node.rules_executed, 1);
        // Now disabled on the unchanged cached view.
        assert_eq!(node.execute_one(&algo, 1), None);
        assert_eq!(node.rules_executed, 1);
    }

    #[test]
    fn tokens_evaluated_locally() {
        let (algo, mut node) = setup();
        // Before receiving: no token at P1.
        assert!(!node.tokens(&algo, 1).any());
        node.execute_one(&algo, 1);
        // After Rule 3: tra = 1 → secondary token held locally.
        assert!(node.tokens(&algo, 1).secondary);
    }

    #[test]
    fn coherence_check_compares_both_caches() {
        let (_, node) = setup();
        let pred_actual: SsrState = "3.1.0".parse().unwrap();
        let succ_actual: SsrState = "3.0.0".parse().unwrap();
        assert!(node.is_coherent(&pred_actual, &succ_actual));
        let moved: SsrState = "4.0.0".parse().unwrap();
        assert!(!node.is_coherent(&moved, &succ_actual));
        assert!(!node.is_coherent(&pred_actual, &moved));
    }
}
