//! Continuous-time observation of the transformed system: token counts,
//! privileged-node counts, cache coherence, legitimacy.
//!
//! The simulator records a [`Sample`] after every event; between events
//! nothing changes, so the samples form a step function over simulated time
//! and all statistics are *time-weighted* (a zero-token instant that lasts
//! 40 ticks counts 40× more than one lasting a tick — exactly the quantity
//! that matters for "the environment is never unmonitored").

use crate::event::Time;

/// The global condition of the network at one instant, as evaluated from
/// each node's *local* view (own state + caches) — i.e. what the deployed
/// nodes themselves believe and act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Sample time.
    pub at: Time,
    /// Number of nodes whose local token predicate holds (privileged nodes).
    pub privileged: usize,
    /// Bitmask of privileged nodes (bit `i` ⇔ node `i` privileged; rings of
    /// more than 64 nodes saturate the mask and per-node analyses refuse).
    pub mask: u64,
    /// Total locally-evaluated tokens (a node holding primary + secondary
    /// counts 2).
    pub tokens_total: usize,
    /// True iff every cache equals the corresponding actual neighbour state.
    pub coherent: bool,
    /// True iff the *actual* (ground-truth) configuration is legitimate.
    pub legitimate: bool,
}

/// The recorded step function of [`Sample`]s.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    samples: Vec<Sample>,
    end: Time,
}

/// Time-weighted summary of a [`Timeline`] over `[warmup, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineSummary {
    /// Smallest privileged-node count observed (weighted window).
    pub min_privileged: usize,
    /// Largest privileged-node count observed.
    pub max_privileged: usize,
    /// Total time with **zero** privileged nodes — the mutual-inclusion
    /// violation time. SSRmin's model gap tolerance makes this 0; Dijkstra's
    /// ring under CST accumulates it at every handover (Figure 11).
    pub zero_privileged_time: Time,
    /// Number of maximal intervals with zero privileged nodes.
    pub zero_privileged_intervals: usize,
    /// Total time with more than two privileged nodes (the upper bound of
    /// the (1,2)-critical-section guarantee).
    pub over_two_privileged_time: Time,
    /// Time during which all caches were coherent.
    pub coherent_time: Time,
    /// Time during which the ground-truth configuration was legitimate.
    pub legitimate_time: Time,
    /// Length of the summarized window.
    pub window: Time,
    /// First instant at which the configuration was legitimate *and*
    /// caches were coherent (over the whole timeline, not just the window).
    pub first_legit_coherent: Option<Time>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample; `at` must be non-decreasing. A sample at the same
    /// time as the previous one replaces it (the net effect of simultaneous
    /// events is what the step function holds), and a sample whose values
    /// equal the previous one's is coalesced away (the step function is
    /// unchanged by it) — this keeps long simulations at large `n` from
    /// storing millions of identical rows.
    pub fn push(&mut self, sample: Sample) {
        if let Some(last) = self.samples.last_mut() {
            assert!(sample.at >= last.at, "timeline must be monotone");
            if sample.at == last.at {
                *last = sample;
                self.end = self.end.max(sample.at);
                return;
            }
            let unchanged = last.privileged == sample.privileged
                && last.mask == sample.mask
                && last.tokens_total == sample.tokens_total
                && last.coherent == sample.coherent
                && last.legitimate == sample.legitimate;
            if unchanged {
                self.end = self.end.max(sample.at);
                return;
            }
        }
        self.end = self.end.max(sample.at);
        self.samples.push(sample);
    }

    /// Mark the end of observation (extends the last sample's interval).
    pub fn close(&mut self, end: Time) {
        self.end = self.end.max(end);
    }

    /// All recorded samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// End of the observed period.
    pub fn end(&self) -> Time {
        self.end
    }

    /// Time-weighted summary over `[warmup, end]`.
    ///
    /// Returns `None` if the timeline is empty or the warmup swallows the
    /// whole observation.
    pub fn summary(&self, warmup: Time) -> Option<TimelineSummary> {
        if self.samples.is_empty() || warmup >= self.end {
            return None;
        }
        let mut min_privileged = usize::MAX;
        let mut max_privileged = 0usize;
        let mut zero_time: Time = 0;
        let mut zero_intervals = 0usize;
        let mut over_two: Time = 0;
        let mut coherent: Time = 0;
        let mut legit: Time = 0;
        let mut in_zero_run = false;

        let mut first_legit_coherent = None;
        for s in &self.samples {
            if first_legit_coherent.is_none() && s.legitimate && s.coherent {
                first_legit_coherent = Some(s.at);
            }
        }

        for (idx, s) in self.samples.iter().enumerate() {
            let next_at = self.samples.get(idx + 1).map(|n| n.at).unwrap_or(self.end);
            // Clip the interval [s.at, next_at) to the window.
            let lo = s.at.max(warmup);
            let hi = next_at.max(warmup);
            let dur = hi.saturating_sub(lo);
            if dur == 0 {
                // Still may participate in zero-run bookkeeping only when
                // inside the window; skip otherwise.
                continue;
            }
            min_privileged = min_privileged.min(s.privileged);
            max_privileged = max_privileged.max(s.privileged);
            if s.privileged == 0 {
                zero_time += dur;
                if !in_zero_run {
                    zero_intervals += 1;
                    in_zero_run = true;
                }
            } else {
                in_zero_run = false;
            }
            if s.privileged > 2 {
                over_two += dur;
            }
            if s.coherent {
                coherent += dur;
            }
            if s.legitimate {
                legit += dur;
            }
        }
        if min_privileged == usize::MAX {
            return None;
        }
        Some(TimelineSummary {
            min_privileged,
            max_privileged,
            zero_privileged_time: zero_time,
            zero_privileged_intervals: zero_intervals,
            over_two_privileged_time: over_two,
            coherent_time: coherent,
            legitimate_time: legit,
            window: self.end - warmup,
            first_legit_coherent,
        })
    }
}

/// Per-node service analysis: for each node, the longest stretch of time it
/// was **not** privileged — the "how long does a camera rest / how long can
/// a node wait for duty" fairness metric. `n` must be ≤ 64 (mask width).
///
/// Returns one `Time` per node. The leading and trailing unprivileged
/// stretches count too (a node never privileged scores the whole window).
pub fn per_node_max_gap(samples: &[Sample], end: Time, n: usize) -> Vec<Time> {
    assert!(n <= 64, "per-node analysis is limited to 64 nodes");
    let mut gap_start: Vec<Time> = vec![0; n];
    let mut max_gap: Vec<Time> = vec![0; n];
    let mut last_mask: u64 = samples.first().map(|s| s.mask).unwrap_or(0);
    for s in samples {
        for i in 0..n {
            let bit = 1u64 << i;
            let was = last_mask & bit != 0;
            let is = s.mask & bit != 0;
            if !was && is {
                // Gap ends at this sample.
                max_gap[i] = max_gap[i].max(s.at.saturating_sub(gap_start[i]));
            } else if was && !is {
                gap_start[i] = s.at;
            }
        }
        last_mask = s.mask;
    }
    for i in 0..n {
        if last_mask & (1u64 << i) == 0 {
            max_gap[i] = max_gap[i].max(end.saturating_sub(gap_start[i]));
        }
    }
    max_gap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(at: Time, privileged: usize, coherent: bool, legitimate: bool) -> Sample {
        Sample {
            at,
            privileged,
            mask: (1u64 << privileged) - 1,
            tokens_total: privileged,
            coherent,
            legitimate,
        }
    }

    #[test]
    fn empty_timeline_has_no_summary() {
        let t = Timeline::new();
        assert!(t.summary(0).is_none());
    }

    #[test]
    fn step_function_durations_are_weighted() {
        let mut t = Timeline::new();
        t.push(s(0, 1, true, true)); // [0, 10): 1 privileged
        t.push(s(10, 0, false, false)); // [10, 15): zero
        t.push(s(15, 2, true, true)); // [15, 40): 2
        t.close(40);
        let sum = t.summary(0).unwrap();
        assert_eq!(sum.min_privileged, 0);
        assert_eq!(sum.max_privileged, 2);
        assert_eq!(sum.zero_privileged_time, 5);
        assert_eq!(sum.zero_privileged_intervals, 1);
        assert_eq!(sum.coherent_time, 35);
        assert_eq!(sum.legitimate_time, 35);
        assert_eq!(sum.window, 40);
    }

    #[test]
    fn warmup_clips_early_intervals() {
        let mut t = Timeline::new();
        t.push(s(0, 0, false, false)); // zero during warmup only
        t.push(s(10, 1, true, true));
        t.close(30);
        let sum = t.summary(10).unwrap();
        assert_eq!(sum.zero_privileged_time, 0);
        assert_eq!(sum.min_privileged, 1);
        assert_eq!(sum.window, 20);
    }

    #[test]
    fn equal_time_sample_replaces_previous() {
        let mut t = Timeline::new();
        t.push(s(0, 1, true, true));
        t.push(s(5, 0, true, true));
        t.push(s(5, 2, true, true)); // simultaneous event nets out to 2
        t.close(10);
        let sum = t.summary(0).unwrap();
        assert_eq!(sum.zero_privileged_time, 0);
        assert_eq!(sum.max_privileged, 2);
    }

    #[test]
    fn zero_intervals_counted_as_maximal_runs() {
        let mut t = Timeline::new();
        t.push(s(0, 0, true, true));
        t.push(s(2, 0, true, true)); // same run
        t.push(s(4, 1, true, true));
        t.push(s(6, 0, true, true)); // second run
        t.close(8);
        let sum = t.summary(0).unwrap();
        assert_eq!(sum.zero_privileged_intervals, 2);
        assert_eq!(sum.zero_privileged_time, 6);
    }

    #[test]
    fn unchanged_samples_are_coalesced() {
        let mut t = Timeline::new();
        t.push(s(0, 1, true, true));
        t.push(s(5, 1, true, true)); // identical values → coalesced
        t.push(s(9, 2, true, true));
        assert_eq!(t.samples().len(), 2);
        assert_eq!(t.end(), 9);
        // The step function (and thus the summary) is unaffected.
        t.close(20);
        let sum = t.summary(0).unwrap();
        assert_eq!(sum.min_privileged, 1);
        assert_eq!(sum.max_privileged, 2);
        assert_eq!(sum.window, 20);
    }

    #[test]
    fn first_legit_coherent_found_globally() {
        let mut t = Timeline::new();
        t.push(s(0, 1, false, false));
        t.push(s(7, 1, true, true));
        t.close(9);
        assert_eq!(t.summary(8).unwrap().first_legit_coherent, Some(7));
    }

    #[test]
    fn per_node_gap_basic() {
        // Node 0 privileged during [0,10) and [30,end); node 1 never.
        let samples = vec![
            Sample {
                at: 0,
                privileged: 1,
                mask: 0b01,
                tokens_total: 1,
                coherent: true,
                legitimate: true,
            },
            Sample {
                at: 10,
                privileged: 0,
                mask: 0b00,
                tokens_total: 0,
                coherent: true,
                legitimate: true,
            },
            Sample {
                at: 30,
                privileged: 1,
                mask: 0b01,
                tokens_total: 1,
                coherent: true,
                legitimate: true,
            },
        ];
        let gaps = per_node_max_gap(&samples, 100, 2);
        assert_eq!(gaps[0], 20); // the [10,30) rest
        assert_eq!(gaps[1], 100); // never privileged: whole window
    }

    #[test]
    fn per_node_gap_counts_trailing_rest() {
        let samples = vec![
            Sample {
                at: 0,
                privileged: 1,
                mask: 0b1,
                tokens_total: 1,
                coherent: true,
                legitimate: true,
            },
            Sample {
                at: 40,
                privileged: 0,
                mask: 0b0,
                tokens_total: 0,
                coherent: true,
                legitimate: true,
            },
        ];
        let gaps = per_node_max_gap(&samples, 100, 1);
        assert_eq!(gaps[0], 60);
    }

    #[test]
    #[should_panic(expected = "64 nodes")]
    fn per_node_gap_rejects_wide_rings() {
        per_node_max_gap(&[], 10, 65);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_push_panics() {
        let mut t = Timeline::new();
        t.push(s(5, 1, true, true));
        t.push(s(4, 1, true, true));
    }
}
