//! Simulation time, delay models, and the deterministic event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::RngExt;

/// Simulation time in abstract ticks (think microseconds).
pub type Time = u64;

/// Link-delay model for one message transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayModel {
    /// Every transmission takes exactly this many ticks.
    Fixed(Time),
    /// Uniformly random delay in `[min, max]` (inclusive), sampled per
    /// transmission from the simulator's seeded RNG.
    Uniform {
        /// Minimum delay.
        min: Time,
        /// Maximum delay (inclusive).
        max: Time,
    },
}

impl DelayModel {
    /// Sample a delay. Delays are clamped to at least 1 tick so a message
    /// is never delivered at its send instant (the transient period of
    /// Theorem 3 always has positive length).
    pub fn sample(&self, rng: &mut StdRng) -> Time {
        match *self {
            DelayModel::Fixed(d) => d.max(1),
            DelayModel::Uniform { min, max } => {
                let (lo, hi) = if min <= max { (min, max) } else { (max, min) };
                rng.random_range(lo..=hi).max(1)
            }
        }
    }

    /// An upper bound on the sampled delay (used for queue-capacity hints).
    pub fn max_delay(&self) -> Time {
        match *self {
            DelayModel::Fixed(d) => d.max(1),
            DelayModel::Uniform { min, max } => min.max(max).max(1),
        }
    }
}

/// A scheduled simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The message in flight on directed link `link` arrives.
    Arrival {
        /// Directed link index.
        link: usize,
    },
    /// Node `node`'s periodic retransmission timer fires.
    Timer {
        /// Node index.
        node: usize,
    },
    /// A scheduled transient fault overwrites node `node`'s local state.
    Corruption {
        /// Node index.
        node: usize,
    },
    /// Node `node` performs its deferred rule execution (models critical-
    /// section dwell time between receiving a state and acting on it).
    Execute {
        /// Node index.
        node: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    at: Time,
    seq: u64,
    kind: EventKind,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue: events pop in `(time, insertion order)`
/// order, so two runs with the same seed replay identically.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn push(&mut self, at: Time, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, kind }));
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, EventKind)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.kind))
    }

    /// Earliest scheduled time without popping.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pending entries as `(at, seq, kind)` sorted in pop order, plus the
    /// next insertion sequence number. Used by cluster checkpointing: a
    /// queue rebuilt from this snapshot pops identically to the original,
    /// including ties.
    pub fn snapshot(&self) -> (Vec<(Time, u64, EventKind)>, u64) {
        let mut entries: Vec<_> =
            self.heap.iter().map(|Reverse(e)| (e.at, e.seq, e.kind)).collect();
        entries.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        (entries, self.seq)
    }

    /// Rebuild a queue from [`EventQueue::snapshot`] output. `next_seq`
    /// must be greater than every restored entry's sequence number so that
    /// post-restore pushes keep losing ties to checkpointed events, exactly
    /// as they would have in the original run.
    pub fn from_snapshot(entries: Vec<(Time, u64, EventKind)>, next_seq: u64) -> Self {
        let heap =
            entries.into_iter().map(|(at, seq, kind)| Reverse(Entry { at, seq, kind })).collect();
        EventQueue { heap, seq: next_seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_delay_is_at_least_one() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(DelayModel::Fixed(0).sample(&mut rng), 1);
        assert_eq!(DelayModel::Fixed(9).sample(&mut rng), 9);
        assert_eq!(DelayModel::Fixed(0).max_delay(), 1);
    }

    #[test]
    fn uniform_delay_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DelayModel::Uniform { min: 3, max: 9 };
        for _ in 0..200 {
            let d = m.sample(&mut rng);
            assert!((3..=9).contains(&d));
        }
        assert_eq!(m.max_delay(), 9);
    }

    #[test]
    fn uniform_delay_tolerates_swapped_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = DelayModel::Uniform { min: 9, max: 3 };
        for _ in 0..50 {
            assert!((3..=9).contains(&m.sample(&mut rng)));
        }
    }

    #[test]
    fn queue_pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::Timer { node: 0 });
        q.push(1, EventKind::Arrival { link: 2 });
        q.push(3, EventKind::Timer { node: 1 });
        assert_eq!(q.peek_time(), Some(1));
        assert_eq!(q.pop(), Some((1, EventKind::Arrival { link: 2 })));
        assert_eq!(q.pop(), Some((3, EventKind::Timer { node: 1 })));
        assert_eq!(q.pop(), Some((5, EventKind::Timer { node: 0 })));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(7, EventKind::Timer { node: 0 });
        q.push(7, EventKind::Timer { node: 1 });
        q.push(7, EventKind::Arrival { link: 0 });
        assert_eq!(q.pop(), Some((7, EventKind::Timer { node: 0 })));
        assert_eq!(q.pop(), Some((7, EventKind::Timer { node: 1 })));
        assert_eq!(q.pop(), Some((7, EventKind::Arrival { link: 0 })));
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, EventKind::Timer { node: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
