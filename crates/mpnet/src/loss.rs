//! Reusable message-loss channel models.
//!
//! The simulator ([`crate::sim`]) and the real-socket chaos proxy
//! (`ssr-net`) share the same fault model: i.i.d. loss plus an optional
//! two-state Gilbert–Elliott burst channel. Keeping the stepping logic in
//! one place guarantees that "loss 0.2" means the same thing in a
//! discrete-event run and a loopback UDP run.

use rand::{RngCore, RngExt};

/// A two-state Gilbert–Elliott burst-loss channel, evaluated per directed
/// link and per delivery: the link flips between a *good* state (a base
/// loss probability) and a *bad* state (loss probability `loss_bad`), with
/// geometric sojourn times. Models wireless interference bursts, which are
/// the realistic failure mode of the paper's sensor-network setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Probability of entering the bad state at a delivery in the good state.
    pub p_enter: f64,
    /// Probability of leaving the bad state at a delivery in the bad state.
    pub p_exit: f64,
    /// Loss probability while the link is in the bad state.
    pub loss_bad: f64,
}

impl Default for GilbertElliott {
    /// A short-burst channel: rare entry (5%), quick exit (25%), heavy
    /// in-burst loss (90%) — mean burst length four deliveries.
    fn default() -> Self {
        GilbertElliott { p_enter: 0.05, p_exit: 0.25, loss_bad: 0.9 }
    }
}

/// The stateful loss process of one directed link: base i.i.d. loss plus an
/// optional [`GilbertElliott`] burst overlay.
///
/// Stepping order is part of the contract (it fixes how many RNG draws a
/// delivery consumes, and thus the deterministic replay of seeded runs):
/// first the burst channel evolves (one draw, guarded by `p_exit > 0` /
/// `p_enter > 0`), then the applicable loss probability is sampled (one
/// draw, only if it is positive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossChannel {
    /// Good-state (or burst-free) loss probability.
    pub base_loss: f64,
    /// Optional burst overlay.
    pub burst: Option<GilbertElliott>,
    /// Whether the channel currently sits in the bad state.
    bad: bool,
}

impl LossChannel {
    /// A channel starting in the good state.
    pub fn new(base_loss: f64, burst: Option<GilbertElliott>) -> Self {
        LossChannel { base_loss, burst, bad: false }
    }

    /// A channel that never drops anything.
    pub fn lossless() -> Self {
        LossChannel::new(0.0, None)
    }

    /// Rebuild a channel mid-burst from checkpointed state. Restoring `bad`
    /// (not just the parameters) is what keeps the post-restore drop
    /// sequence identical to the original run's.
    pub fn with_state(base_loss: f64, burst: Option<GilbertElliott>, bad: bool) -> Self {
        LossChannel { base_loss, burst, bad: bad && burst.is_some() }
    }

    /// True iff the burst overlay is currently in the bad state.
    pub fn is_bad(&self) -> bool {
        self.bad
    }

    /// Evolve the channel by one delivery and decide whether that delivery
    /// is dropped.
    pub fn step_drop<R: RngCore>(&mut self, rng: &mut R) -> bool {
        let loss_p = match self.burst {
            None => self.base_loss,
            Some(ge) => {
                if self.bad {
                    if ge.p_exit > 0.0 && rng.random_bool(ge.p_exit.clamp(0.0, 1.0)) {
                        self.bad = false;
                    }
                } else if ge.p_enter > 0.0 && rng.random_bool(ge.p_enter.clamp(0.0, 1.0)) {
                    self.bad = true;
                }
                if self.bad {
                    ge.loss_bad
                } else {
                    self.base_loss
                }
            }
        };
        loss_p > 0.0 && rng.random_bool(loss_p.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lossless_channel_never_drops() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ch = LossChannel::lossless();
        for _ in 0..1000 {
            assert!(!ch.step_drop(&mut rng));
        }
        assert!(!ch.is_bad());
    }

    #[test]
    fn iid_loss_rate_is_approximately_honoured() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ch = LossChannel::new(0.3, None);
        let drops = (0..20_000).filter(|_| ch.step_drop(&mut rng)).count();
        let rate = drops as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed loss rate {rate}");
    }

    #[test]
    fn burst_channel_visits_both_states_and_drops_in_bursts() {
        let mut rng = StdRng::seed_from_u64(3);
        let ge = GilbertElliott { p_enter: 0.05, p_exit: 0.2, loss_bad: 0.9 };
        let mut ch = LossChannel::new(0.0, Some(ge));
        let mut saw_bad = false;
        let mut saw_good_after_bad = false;
        let mut drops = 0usize;
        for _ in 0..10_000 {
            if ch.step_drop(&mut rng) {
                drops += 1;
            }
            if ch.is_bad() {
                saw_bad = true;
            } else if saw_bad {
                saw_good_after_bad = true;
            }
        }
        assert!(saw_bad, "channel must enter the bad state");
        assert!(saw_good_after_bad, "channel must recover");
        assert!(drops > 100, "bad state must actually drop ({drops})");
        // Long-run bad-state occupancy p_enter/(p_enter+p_exit) = 0.2, so
        // the unconditional drop rate is roughly 0.2 * 0.9 = 0.18.
        let rate = drops as f64 / 10_000.0;
        assert!((0.1..0.3).contains(&rate), "burst drop rate {rate}");
    }

    #[test]
    fn deterministic_per_seed() {
        let ge = GilbertElliott { p_enter: 0.1, p_exit: 0.3, loss_bad: 0.8 };
        let run = || {
            let mut rng = StdRng::seed_from_u64(7);
            let mut ch = LossChannel::new(0.05, Some(ge));
            (0..500).map(|_| ch.step_drop(&mut rng)).collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }
}
