//! Definition 3 of the paper, executable: the *model gap* compares a global
//! correctness measure `h(h_0, …, h_{n-1})` evaluated on **true** neighbour
//! states against the same measure evaluated on **cached** neighbour states.
//! An algorithm is model-gap tolerant when the two always agree along
//! executions from legitimate cache-coherent starts.
//!
//! For the token algorithms here, `h_i` is "node *i* holds a token" and `h`
//! is "at least one node holds a token" — so a *gap* is precisely an
//! instant where the real configuration contains a token but no node
//! believes it holds one (or vice versa).

use ssr_core::RingAlgorithm;

use crate::node::Node;

/// One evaluation of Definition 3's two sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapCheck {
    /// `h` over `h_i(q_i, q_{i-1}, q_{i+1})` — true neighbour states.
    pub h_true: bool,
    /// `h` over `h_i(q_i, Z_i[pred], Z_i[succ])` — cached neighbour states.
    pub h_cached: bool,
}

impl GapCheck {
    /// Definition 3 holds at this instant iff both sides agree.
    pub fn holds(&self) -> bool {
        self.h_true == self.h_cached
    }
}

/// Evaluate Definition 3 for the token-existence measure on the current
/// node array: `h_i` = "node i's token set is non-empty", `h` = disjunction.
pub fn token_existence_check<A: RingAlgorithm>(algo: &A, nodes: &[Node<A::State>]) -> GapCheck {
    let n = algo.n();
    debug_assert_eq!(nodes.len(), n);
    let mut h_true = false;
    let mut h_cached = false;
    for i in 0..n {
        let pred = if i == 0 { n - 1 } else { i - 1 };
        let succ = if i + 1 == n { 0 } else { i + 1 };
        // True-state evaluation: what an omniscient observer computes.
        if algo.tokens_at(i, &nodes[i].own, &nodes[pred].own, &nodes[succ].own).any() {
            h_true = true;
        }
        // Cached evaluation: what node i itself computes and acts on.
        if nodes[i].tokens(algo, i).any() {
            h_cached = true;
        }
    }
    GapCheck { h_true, h_cached }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::{RingParams, SsToken, SsrMin, SsrState};

    fn ssr_nodes(states: &[&str], caches_match: bool) -> (SsrMin, Vec<Node<SsrState>>) {
        let algo = SsrMin::new(RingParams::new(states.len(), states.len() as u32 + 2).unwrap());
        let cfg: Vec<SsrState> = states.iter().map(|s| s.parse().unwrap()).collect();
        let n = cfg.len();
        let nodes = (0..n)
            .map(|i| {
                let pred = if i == 0 { n - 1 } else { i - 1 };
                let succ = (i + 1) % n;
                if caches_match {
                    Node::coherent(cfg[i], cfg[pred], cfg[succ])
                } else {
                    // Stale caches: everyone thinks everyone is 0.0.0.
                    Node::coherent(cfg[i], SsrState::new(0, 0, 0), SsrState::new(0, 0, 0))
                }
            })
            .collect();
        (algo, nodes)
    }

    #[test]
    fn coherent_caches_always_agree() {
        let (algo, nodes) = ssr_nodes(&["3.0.1", "3.0.0", "3.0.0", "3.0.0", "3.0.0"], true);
        let check = token_existence_check(&algo, &nodes);
        assert!(check.h_true && check.h_cached && check.holds());
    }

    #[test]
    fn dijkstra_transit_shows_the_gap() {
        // Ground truth: P1 holds the token (x1 != x0). But P1's cache of P0
        // is stale (still equal), so P1 does not believe it — and P0 knows
        // it moved. h_true = true, h_cached = false: the model gap.
        let p = RingParams::new(3, 4).unwrap();
        let algo = SsToken::new(p);
        let own = [1u32, 0, 0];
        let nodes: Vec<Node<u32>> = (0..3)
            .map(|i| {
                let mut nd = Node::coherent(own[i], own[(i + 2) % 3], own[(i + 1) % 3]);
                if i == 1 {
                    nd.cache_pred = 0; // P1 has not yet heard P0's move
                }
                nd
            })
            .collect();
        let check = token_existence_check(&algo, &nodes);
        assert!(check.h_true, "ground truth has a token");
        assert!(!check.h_cached, "no node believes it holds the token");
        assert!(!check.holds());
    }

    #[test]
    fn ssrmin_same_staleness_no_gap() {
        // The analogous staleness for SSRmin: P0 offered the secondary
        // (rts=1) and P1 has not heard yet. P0 still believes it holds both
        // tokens — cached h stays true.
        let (algo, mut nodes) = ssr_nodes(&["3.1.0", "3.0.0", "3.0.0", "3.0.0", "3.0.0"], true);
        nodes[1].cache_pred = "3.0.0".parse().unwrap(); // stale
        let check = token_existence_check(&algo, &nodes);
        assert!(check.h_true && check.h_cached && check.holds());
    }
}
