//! The CST discrete-event simulator: Algorithm 4 of the paper executed over
//! lossy, delayed, single-capacity links on a bidirectional ring.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ssr_core::{Config, RingAlgorithm, WireState};
use ssr_netem::checkpoint::put_bytes;
use ssr_netem::{CheckpointError, ChunkReader, ChunkWriter, Cursor, LinkProfile, NetemLink};

use crate::event::{DelayModel, EventKind, EventQueue, Time};
use crate::link::{Link, LinkModel};
use crate::node::Node;
use crate::observe::{Sample, Timeline};
use crate::transcript::{EventRecord, Transcript};

pub use crate::loss::GilbertElliott;
use crate::loss::LossChannel;

/// Writer-defined kind of a [`CstSim::checkpoint`] file (the `kind` field
/// of the `SSRC` header): a full DES cluster state.
pub const CHECKPOINT_KIND_DES: u16 = 1;

/// Frame length, in bytes, the DES charges the netem serializer per CST
/// state broadcast: the wire header plus payload of `ssr-net`, rounded up
/// to a realistic small datagram. Fixed so serialization delay — and hence
/// the whole delivery schedule — depends only on profile and seed.
pub const NETEM_FRAME_BYTES: usize = 64;

/// Simulator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// RNG seed; two runs with equal seed and parameters are bit-identical.
    pub seed: u64,
    /// Link delay model.
    pub delay: DelayModel,
    /// Probability that a transmission is lost (decided at arrival,
    /// uniformly at random — the fault model of Lemma 9). When `burst` is
    /// set, this is the *good-state* loss probability.
    pub loss: f64,
    /// Optional Gilbert–Elliott burst-loss channel layered per link; when
    /// `Some`, links alternate between the good state (loss = `loss`) and a
    /// bad state (loss = `burst.loss_bad`).
    pub burst: Option<GilbertElliott>,
    /// Period of the CST retransmission timer (Algorithm 4, line 11).
    pub timer_interval: Time,
    /// Whether a node broadcasts its state after handling a receipt
    /// (Algorithm 4, line 10). Disabling this leaves only timer-driven
    /// gossip — an ablation that slows handover but must not break safety.
    pub send_on_receipt: bool,
    /// Delay between receiving a state and executing the enabled rule —
    /// the node's critical-section dwell time. With `0` the rule fires in
    /// the same instant as the receipt (the bare Algorithm 4); with a
    /// positive value a privileged node *stays* privileged for at least
    /// this long before handing over, which is how a monitoring node
    /// actually behaves.
    pub exec_delay: Time,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            delay: DelayModel::Fixed(5),
            loss: 0.0,
            timer_interval: 50,
            send_on_receipt: true,
            exec_delay: 0,
            burst: None,
        }
    }
}

/// Aggregate message statistics of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Completed transmissions over all links.
    pub transmissions: u64,
    /// Messages dropped by the loss process.
    pub losses: u64,
    /// Rules executed over all nodes.
    pub rules_executed: u64,
    /// Events processed.
    pub events: u64,
}

/// The Cached Sensornet Transform of a ring algorithm, executed by a
/// deterministic discrete-event simulation.
///
/// Each node holds its real state plus caches of both neighbours' states;
/// on every receipt it refreshes the cache, executes at most one enabled
/// rule *on the cached view*, and (optionally) rebroadcasts its state; a
/// periodic timer rebroadcasts regardless, which is what repairs lost
/// messages and corrupt caches (the self-stabilization of the transform).
#[derive(Debug)]
pub struct CstSim<A: RingAlgorithm> {
    algo: A,
    cfg: SimConfig,
    nodes: Vec<Node<A::State>>,
    /// Directed links: index `2i` is `i → succ(i)`, `2i+1` is `i → pred(i)`.
    links: Vec<Link<A::State>>,
    queue: EventQueue,
    now: Time,
    rng: StdRng,
    timeline: Timeline,
    corruptions: Vec<(Time, usize, A::State)>,
    exec_scheduled: Vec<bool>,
    /// Loss process per directed link (i.i.d. + optional burst overlay).
    link_loss: Vec<LossChannel>,
    // ---- incrementally maintained observation counters (an event only
    // changes one node's local view, so per-event sampling is O(1)) ----
    priv_flags: Vec<bool>,
    priv_count: usize,
    priv_mask: u64,
    node_tokens: Vec<u8>,
    tokens_total_ctr: usize,
    /// `cache_ok[i] = [pred entry coherent, succ entry coherent]`.
    cache_ok: Vec<[bool; 2]>,
    bad_entries: usize,
    ground_legit: bool,
    /// Per-link delay overrides (indexed like `links`); `None` = global model.
    link_delay: Vec<Option<DelayModel>>,
    /// Per-node pause windows: while `now` is inside one, the node is
    /// crashed — it processes no receipts and sends nothing.
    pauses: Vec<Vec<(Time, Time)>>,
    /// Per-link outage windows: deliveries on the link inside a window are
    /// dropped (a unidirectional radio shadow).
    outages: Vec<Vec<(Time, Time)>>,
    transcript: Option<Transcript<A::State>>,
    events_processed: u64,
    // ---- counters retired by membership re-splices (links are rebuilt and
    // leavers drop out, but `stats()` must stay cumulative) ----
    retired_transmissions: u64,
    retired_losses: u64,
    retired_rules: u64,
    /// Per-directed-link netem emulators (installed by [`CstSim::set_netem`],
    /// indexed like `links`); `None` entries use the [`DelayModel`] path.
    netem: Vec<Option<NetemLink>>,
    /// The installed profile and its seed, kept so membership re-splices
    /// rebuild the emulator set for the new ring size.
    netem_profile: Option<(LinkProfile, u64)>,
    retired_netem_drops: u64,
}

impl<A: RingAlgorithm> CstSim<A> {
    /// Build a simulator whose caches start *coherent* with `initial` —
    /// the hypothesis of Theorem 3.
    pub fn new(algo: A, initial: Config<A::State>, cfg: SimConfig) -> ssr_core::Result<Self> {
        algo.validate_config(&initial)?;
        let n = algo.n();
        let nodes = (0..n)
            .map(|i| {
                let pred = if i == 0 { n - 1 } else { i - 1 };
                let succ = if i + 1 == n { 0 } else { i + 1 };
                Node::coherent(initial[i].clone(), initial[pred].clone(), initial[succ].clone())
            })
            .collect();
        Ok(Self::from_nodes(algo, nodes, cfg))
    }

    /// Build a simulator with explicit (possibly *incoherent* or corrupt)
    /// caches — arbitrary initial cache values as in Lemma 9 / Theorem 4.
    pub fn with_nodes(
        algo: A,
        nodes: Vec<Node<A::State>>,
        cfg: SimConfig,
    ) -> ssr_core::Result<Self> {
        let own: Config<A::State> = nodes.iter().map(|nd| nd.own.clone()).collect();
        algo.validate_config(&own)?;
        Ok(Self::from_nodes(algo, nodes, cfg))
    }

    fn from_nodes(algo: A, nodes: Vec<Node<A::State>>, cfg: SimConfig) -> Self {
        let n = algo.n();
        let mut links = Vec::with_capacity(2 * n);
        for i in 0..n {
            let succ = if i + 1 == n { 0 } else { i + 1 };
            let pred = if i == 0 { n - 1 } else { i - 1 };
            links.push(Link::new(i, succ));
            links.push(Link::new(i, pred));
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut queue = EventQueue::new();
        // Stagger the first timer fire per node so the fleet does not act in
        // lockstep (real deployments never do).
        for i in 0..n {
            let first = rng.random_range(1..=cfg.timer_interval.max(1));
            queue.push(first, EventKind::Timer { node: i });
        }
        let mut sim = CstSim {
            algo,
            cfg,
            nodes,
            links,
            queue,
            now: 0,
            rng,
            timeline: Timeline::new(),
            corruptions: Vec::new(),
            exec_scheduled: vec![false; n],
            link_loss: vec![LossChannel::new(cfg.loss, cfg.burst); 2 * n],
            priv_flags: vec![false; n],
            priv_count: 0,
            priv_mask: 0,
            node_tokens: vec![0; n],
            tokens_total_ctr: 0,
            cache_ok: vec![[true; 2]; n],
            bad_entries: 0,
            ground_legit: false,
            link_delay: vec![None; 2 * n],
            pauses: vec![Vec::new(); n],
            outages: vec![Vec::new(); 2 * n],
            transcript: None,
            events_processed: 0,
            retired_transmissions: 0,
            retired_losses: 0,
            retired_rules: 0,
            netem: vec![None; 2 * n],
            netem_profile: None,
            retired_netem_drops: 0,
        };
        sim.rebuild_counters();
        sim.record_sample();
        sim
    }

    /// Full recomputation of the incremental observation counters (used at
    /// construction; every later event updates them in O(1)).
    fn rebuild_counters(&mut self) {
        let n = self.algo.n();
        self.priv_count = 0;
        self.priv_mask = 0;
        self.tokens_total_ctr = 0;
        self.bad_entries = 0;
        for i in 0..n {
            let t = self.nodes[i].tokens(&self.algo, i);
            self.priv_flags[i] = t.any();
            if t.any() {
                self.priv_count += 1;
                if i < 64 {
                    self.priv_mask |= 1 << i;
                }
            }
            self.node_tokens[i] = t.count();
            self.tokens_total_ctr += t.count() as usize;
            let pred = if i == 0 { n - 1 } else { i - 1 };
            let succ = if i + 1 == n { 0 } else { i + 1 };
            let ok = [
                self.nodes[i].cache_pred == self.nodes[pred].own,
                self.nodes[i].cache_succ == self.nodes[succ].own,
            ];
            self.cache_ok[i] = ok;
            self.bad_entries += ok.iter().filter(|&&b| !b).count();
        }
        self.ground_legit = self.algo.is_legitimate(&self.ground_config());
    }

    /// Re-evaluate node `i`'s local token predicate (its view changed).
    fn refresh_predicate(&mut self, i: usize) {
        let t = self.nodes[i].tokens(&self.algo, i);
        let any = t.any();
        if self.priv_flags[i] != any {
            self.priv_flags[i] = any;
            if any {
                self.priv_count += 1;
                if i < 64 {
                    self.priv_mask |= 1 << i;
                }
            } else {
                self.priv_count -= 1;
                if i < 64 {
                    self.priv_mask &= !(1 << i);
                }
            }
        }
        self.tokens_total_ctr =
            self.tokens_total_ctr + t.count() as usize - self.node_tokens[i] as usize;
        self.node_tokens[i] = t.count();
    }

    /// Re-check one cache-coherence entry (`dir` 0 = pred, 1 = succ).
    fn refresh_coherence(&mut self, i: usize, dir: usize) {
        let n = self.algo.n();
        let neighbour = if dir == 0 {
            if i == 0 {
                n - 1
            } else {
                i - 1
            }
        } else if i + 1 == n {
            0
        } else {
            i + 1
        };
        let ok = if dir == 0 {
            self.nodes[i].cache_pred == self.nodes[neighbour].own
        } else {
            self.nodes[i].cache_succ == self.nodes[neighbour].own
        };
        if self.cache_ok[i][dir] != ok {
            self.cache_ok[i][dir] = ok;
            if ok {
                self.bad_entries -= 1;
            } else {
                self.bad_entries += 1;
            }
        }
    }

    /// Node `j`'s own state changed: refresh its predicate, its neighbours'
    /// coherence entries about it, and ground legitimacy.
    fn on_own_changed(&mut self, j: usize) {
        self.ground_legit = self.algo.is_legitimate(&self.ground_config());
        self.refresh_predicate(j);
        let n = self.algo.n();
        let pred = if j == 0 { n - 1 } else { j - 1 };
        let succ = if j + 1 == n { 0 } else { j + 1 };
        self.refresh_coherence(succ, 0); // succ's pred-cache mirrors j
        self.refresh_coherence(pred, 1); // pred's succ-cache mirrors j
    }

    /// The algorithm under simulation.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Node view (state + caches + counters).
    pub fn node(&self, i: usize) -> &Node<A::State> {
        &self.nodes[i]
    }

    /// The ground-truth configuration (every node's actual state).
    pub fn ground_config(&self) -> Config<A::State> {
        self.nodes.iter().map(|nd| nd.own.clone()).collect()
    }

    /// Indices of nodes whose *local* token predicate currently holds.
    pub fn local_privileged(&self) -> Vec<usize> {
        (0..self.algo.n()).filter(|&i| self.nodes[i].tokens(&self.algo, i).any()).collect()
    }

    /// Evaluate Definition 3's token-existence measure right now: does the
    /// cached (acted-on) view agree with the omniscient view about "at
    /// least one token exists"? SSRmin keeps this true at every instant of
    /// a legitimate run (model gap tolerance); Dijkstra's ring does not.
    pub fn definition3_check(&self) -> crate::model_gap::GapCheck {
        crate::model_gap::token_existence_check(&self.algo, &self.nodes)
    }

    /// True iff every cache matches the actual neighbour state
    /// (Definition 2, cache coherence).
    pub fn is_coherent(&self) -> bool {
        let n = self.algo.n();
        (0..n).all(|i| {
            let pred = if i == 0 { n - 1 } else { i - 1 };
            let succ = if i + 1 == n { 0 } else { i + 1 };
            self.nodes[i].is_coherent(&self.nodes[pred].own, &self.nodes[succ].own)
        })
    }

    /// Schedule a transient fault: at time `at`, node `i`'s state is
    /// overwritten with `state` (caches of its neighbours keep the stale
    /// value until gossip repairs them).
    pub fn schedule_corruption(&mut self, at: Time, node: usize, state: A::State) {
        assert!(node < self.algo.n(), "node out of range");
        assert!(at >= self.now, "cannot schedule in the past");
        self.corruptions.push((at, node, state));
        self.queue.push(at, EventKind::Corruption { node });
    }

    /// Override the delay model of the directed link `src → dst` (must be a
    /// ring edge). Models heterogeneous radios: one slow or jittery hop in
    /// an otherwise fast ring.
    pub fn set_link_delay(&mut self, src: usize, dst: usize, model: DelayModel) {
        let idx = self
            .links
            .iter()
            .position(|l| l.src == src && l.dst == dst)
            .unwrap_or_else(|| panic!("{src} → {dst} is not a ring link"));
        self.link_delay[idx] = Some(model);
    }

    /// Install a netem link profile on every directed link: even indices
    /// (`i → succ(i)`) run the profile's `forward` direction, odd indices
    /// (`i → pred(i)`) its `reverse`. Each link direction gets its own
    /// deterministic jitter stream derived from `seed` and the link index,
    /// independent of the simulator's global RNG, and the per-link loss
    /// channel is rebuilt from the profile's `loss` rate (the global
    /// `SimConfig::burst` overlay still applies). Replaces both the global
    /// delay model and any [`CstSim::set_link_delay`] overrides; survives
    /// membership re-splices (emulators are rebuilt for the new ring).
    pub fn set_netem(&mut self, profile: &LinkProfile, seed: u64) {
        self.netem_profile = Some((profile.clone(), seed));
        self.install_netem();
    }

    /// (Re)build the emulator set from the stored profile, if any.
    fn install_netem(&mut self) {
        let Some((profile, seed)) = self.netem_profile.clone() else {
            return;
        };
        let m = self.links.len();
        self.netem = (0..m)
            .map(|idx| {
                let dir = if idx % 2 == 0 { profile.forward } else { profile.reverse };
                Some(NetemLink::new(dir, seed, idx))
            })
            .collect();
        for idx in 0..m {
            let dir = if idx % 2 == 0 { &profile.forward } else { &profile.reverse };
            self.link_loss[idx] = LossChannel::new(dir.loss, self.cfg.burst);
        }
    }

    /// The installed netem profile, if any.
    pub fn netem_profile(&self) -> Option<&LinkProfile> {
        self.netem_profile.as_ref().map(|(p, _)| p)
    }

    /// The emulator of directed link `idx` (indexed like the links: `2i` is
    /// `i → succ(i)`, `2i+1` is `i → pred(i)`), if netem is installed.
    pub fn netem_link(&self, idx: usize) -> Option<&NetemLink> {
        self.netem.get(idx).and_then(|l| l.as_ref())
    }

    /// Frames tail-dropped by netem buffers so far, cumulative across
    /// membership re-splices. A strict subset of [`SimStats::losses`]:
    /// buffer drops are congestion, not the random-loss process, and the
    /// distinction is what E20 measures.
    pub fn netem_buffer_drops(&self) -> u64 {
        self.retired_netem_drops
            + self.netem.iter().flatten().map(|l| l.stats().buffer_drops).sum::<u64>()
    }

    /// Schedule an outage of the directed link `src → dst`: every delivery
    /// inside `[from, until)` is lost. Models a unidirectional radio shadow
    /// (asymmetric interference), a fault CST's periodic retransmission
    /// must ride out.
    pub fn schedule_link_outage(&mut self, src: usize, dst: usize, from: Time, until: Time) {
        assert!(from < until, "empty outage window");
        let idx = self
            .links
            .iter()
            .position(|l| l.src == src && l.dst == dst)
            .unwrap_or_else(|| panic!("{src} → {dst} is not a ring link"));
        self.outages[idx].push((from, until));
    }

    /// Schedule a crash window for `node`: during `[from, until)` the node
    /// is down — it processes no receipts (in-flight messages to it are
    /// lost) and its timer does not broadcast. After `until` it resumes
    /// with whatever state and caches it had: a classic crash-recover
    /// transient fault.
    pub fn schedule_pause(&mut self, node: usize, from: Time, until: Time) {
        assert!(node < self.algo.n(), "node out of range");
        assert!(from < until, "empty pause window");
        self.pauses[node].push((from, until));
    }

    fn is_paused(&self, node: usize, at: Time) -> bool {
        self.pauses[node].iter().any(|&(f, u)| at >= f && at < u)
    }

    /// Membership churn, grow side: splice a joining node into the ring at
    /// the tail position (between the current last node and node 0, so the
    /// anchor keeps index 0). `algo` is the same algorithm re-parameterised
    /// for `n + 1`; `own` is the state the joiner boots with — for SSRmin a
    /// graceful joiner adopts its predecessor's counter with no token bits,
    /// but any state is legal (self-stabilization must absorb it). The
    /// join handshake seeds the joiner's caches and both neighbours'
    /// facing cache entries coherently; the re-splice flushes all in-flight
    /// messages and per-link overrides (the old links are gone) and
    /// restarts every node's gossip timer with a fresh stagger.
    ///
    /// Schedule-level validation (ring bounds, whole-ring requirement)
    /// lives in [`crate::FaultSchedule::validate`]; this method only
    /// asserts the ring shape.
    pub fn splice_join(&mut self, algo: A, own: A::State) {
        let n = self.nodes.len();
        assert_eq!(algo.n(), n + 1, "splice_join needs an algorithm for n + 1");
        let tail = n - 1;
        let node = Node::coherent(own, self.nodes[tail].own.clone(), self.nodes[0].own.clone());
        self.nodes[tail].cache_succ = node.own.clone();
        self.nodes[0].cache_pred = node.own.clone();
        self.nodes.push(node);
        self.pauses.push(Vec::new());
        self.resplice(algo);
    }

    /// Membership churn, shrink side: splice `node` out of the ring; its
    /// two neighbours re-point at each other and seed their facing cache
    /// entries from each other's real state (the leave handshake). Node 0
    /// is the anchor and can never leave. Later indices shift down by one,
    /// as do their pending corruptions and pause windows; the leaver's own
    /// pending faults die with it. Counters of the departed node are
    /// retired so [`CstSim::stats`] stays cumulative.
    pub fn splice_leave(&mut self, algo: A, node: usize) {
        let n = self.nodes.len();
        assert_eq!(algo.n(), n - 1, "splice_leave needs an algorithm for n - 1");
        assert!(node < n, "node out of range");
        assert!(node != 0, "node 0 is the ring anchor and cannot leave");
        let removed = self.nodes.remove(node);
        self.retired_rules += removed.rules_executed;
        self.pauses.remove(node);
        self.corruptions.retain(|&(_, nd, _)| nd != node);
        for c in &mut self.corruptions {
            if c.1 > node {
                c.1 -= 1;
            }
        }
        let pred = node - 1;
        let succ = if node == self.nodes.len() { 0 } else { node };
        self.nodes[pred].cache_succ = self.nodes[succ].own.clone();
        self.nodes[succ].cache_pred = self.nodes[pred].own.clone();
        self.resplice(algo);
    }

    /// Rebuild everything ring-shaped after a membership change: links,
    /// loss channels, timers and the incremental counters. In-flight
    /// arrivals, deferred executions, link-delay overrides and outage
    /// windows are dropped — a re-splice tears the old links down — while
    /// pending corruptions and pause windows survive (adjusted by the
    /// caller) and are re-queued no earlier than `now`.
    fn resplice(&mut self, algo: A) {
        let n = self.nodes.len();
        debug_assert_eq!(algo.n(), n);
        self.algo = algo;
        self.retired_transmissions += self.links.iter().map(|l| l.transmissions).sum::<u64>();
        self.retired_losses += self.links.iter().map(|l| l.losses).sum::<u64>();
        let mut links = Vec::with_capacity(2 * n);
        for i in 0..n {
            let succ = if i + 1 == n { 0 } else { i + 1 };
            let pred = if i == 0 { n - 1 } else { i - 1 };
            links.push(Link::new(i, succ));
            links.push(Link::new(i, pred));
        }
        self.links = links;
        self.queue = EventQueue::new();
        self.exec_scheduled = vec![false; n];
        self.link_loss = vec![LossChannel::new(self.cfg.loss, self.cfg.burst); 2 * n];
        self.link_delay = vec![None; 2 * n];
        self.outages = vec![Vec::new(); 2 * n];
        self.retired_netem_drops +=
            self.netem.iter().flatten().map(|l| l.stats().buffer_drops).sum::<u64>();
        self.netem = vec![None; 2 * n];
        self.install_netem();
        for i in 0..n {
            let first = self.now + self.rng.random_range(1..=self.cfg.timer_interval.max(1));
            self.queue.push(first, EventKind::Timer { node: i });
        }
        for c in &mut self.corruptions {
            c.0 = c.0.max(self.now);
            self.queue.push(c.0, EventKind::Corruption { node: c.1 });
        }
        self.priv_flags = vec![false; n];
        self.node_tokens = vec![0; n];
        self.cache_ok = vec![[true; 2]; n];
        self.rebuild_counters();
        self.record_sample();
    }

    /// Start recording an event transcript keeping the most recent
    /// `capacity` events (see [`Transcript`]). Costs allocations per event.
    pub fn enable_transcript(&mut self, capacity: usize) {
        self.transcript = Some(Transcript::new(capacity));
    }

    /// The transcript, if recording was enabled.
    pub fn transcript(&self) -> Option<&Transcript<A::State>> {
        self.transcript.as_ref()
    }

    fn log(&mut self, record: EventRecord<A::State>) {
        if let Some(t) = self.transcript.as_mut() {
            t.push(self.now, record);
        }
    }

    /// The recorded timeline so far.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Aggregate message statistics (cumulative across membership
    /// re-splices: counters of rebuilt links and departed nodes are
    /// retired, not forgotten).
    pub fn stats(&self) -> SimStats {
        SimStats {
            transmissions: self.retired_transmissions
                + self.links.iter().map(|l| l.transmissions).sum::<u64>(),
            losses: self.retired_losses + self.links.iter().map(|l| l.losses).sum::<u64>(),
            rules_executed: self.retired_rules
                + self.nodes.iter().map(|nd| nd.rules_executed).sum::<u64>(),
            events: self.events_processed,
        }
    }

    /// Run the simulation until simulated time `t_end` (inclusive of events
    /// at `t_end`). Returns the number of events processed.
    pub fn run_until(&mut self, t_end: Time) -> u64 {
        let mut processed = 0;
        while let Some(at) = self.queue.peek_time() {
            if at > t_end {
                break;
            }
            let (at, kind) = self.queue.pop().expect("peeked");
            self.now = at;
            self.dispatch(kind);
            self.events_processed += 1;
            processed += 1;
            self.record_sample();
        }
        self.now = t_end.max(self.now);
        self.timeline.close(self.now);
        processed
    }

    /// Run until the *ground* configuration has been legitimate for
    /// `stable_window` consecutive ticks, or until `t_max`. Returns the time
    /// at which the stable legitimate stretch began.
    ///
    /// This is the operational convergence criterion for Theorem 4: under
    /// receipt-driven gossip a non-silent algorithm updates some state at
    /// almost every instant, so demanding simultaneous cache coherence at an
    /// event boundary would be vacuous — what stabilization means here is
    /// that the real configuration entered the legitimate cycle and stopped
    /// leaving it.
    pub fn run_until_stably_legitimate(
        &mut self,
        t_max: Time,
        stable_window: Time,
    ) -> Option<Time> {
        let mut legit_since: Option<Time> =
            self.algo.is_legitimate(&self.ground_config()).then_some(self.now);
        loop {
            if let Some(since) = legit_since {
                if self.now.saturating_sub(since) >= stable_window {
                    self.timeline.close(self.now);
                    return Some(since);
                }
            }
            let Some(at) = self.queue.peek_time() else { break };
            if at > t_max {
                break;
            }
            let (at, kind) = self.queue.pop().expect("peeked");
            self.now = at;
            self.dispatch(kind);
            self.events_processed += 1;
            self.record_sample();
            if self.algo.is_legitimate(&self.ground_config()) {
                legit_since.get_or_insert(self.now);
            } else {
                legit_since = None;
            }
        }
        self.now = t_max.max(self.now);
        self.timeline.close(self.now);
        None
    }

    // ------------------------------------------------------------------

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Timer { node } => {
                if !self.is_paused(node, self.now) {
                    self.log(EventRecord::TimerBroadcast { node });
                    self.broadcast(node);
                }
                let next = self.now + self.cfg.timer_interval.max(1);
                self.queue.push(next, EventKind::Timer { node });
            }
            EventKind::Arrival { link } => self.on_arrival(link),
            EventKind::Execute { node } => {
                self.exec_scheduled[node] = false;
                if !self.is_paused(node, self.now) {
                    if let Some(rule) = self.nodes[node].execute_one(&self.algo, node) {
                        let tag = self.algo.rule_tag(rule);
                        let after = self.nodes[node].own.clone();
                        self.log(EventRecord::RuleFired { node, rule_tag: tag, after });
                        self.on_own_changed(node);
                    }
                    if self.cfg.send_on_receipt {
                        self.broadcast(node);
                    }
                }
            }
            EventKind::Corruption { node } => {
                if let Some(pos) =
                    self.corruptions.iter().position(|(at, nd, _)| *at == self.now && *nd == node)
                {
                    let (_, _, state) = self.corruptions.swap_remove(pos);
                    self.log(EventRecord::Corrupted { node, state: state.clone() });
                    self.nodes[node].own = state;
                    self.on_own_changed(node);
                }
            }
        }
    }

    fn on_arrival(&mut self, link_idx: usize) {
        let (state, had_pending) = self.links[link_idx].complete();
        // Evolve the per-link loss process and decide the drop; the shared
        // LossChannel keeps the RNG draw order of seeded runs stable.
        let dropped = self.link_loss[link_idx].step_drop(&mut self.rng);
        let src = self.links[link_idx].src;
        let dst = self.links[link_idx].dst;
        let now = self.now;
        let lost = dropped
            || self.is_paused(dst, self.now)
            || self.outages[link_idx].iter().any(|&(f, u)| now >= f && now < u);
        if lost {
            self.links[link_idx].record_loss();
            self.log(EventRecord::Lost { from: src, to: dst });
        } else {
            if self.transcript.is_some() {
                self.log(EventRecord::Delivered { from: src, to: dst, state: state.clone() });
            }
            // Update the receiver's cache for the sender's direction.
            let n = self.algo.n();
            let dst_pred = if dst == 0 { n - 1 } else { dst - 1 };
            if src == dst_pred {
                self.nodes[dst].cache_pred = state;
                self.refresh_coherence(dst, 0);
            } else {
                self.nodes[dst].cache_succ = state;
                self.refresh_coherence(dst, 1);
            }
            self.refresh_predicate(dst);
            self.nodes[dst].messages_received += 1;
            if self.cfg.exec_delay == 0 {
                // Algorithm 4, line 9: execute one enabled rule on the cache.
                if let Some(rule) = self.nodes[dst].execute_one(&self.algo, dst) {
                    let tag = self.algo.rule_tag(rule);
                    let after = self.nodes[dst].own.clone();
                    self.log(EventRecord::RuleFired { node: dst, rule_tag: tag, after });
                    self.on_own_changed(dst);
                }
                // Line 10: rebroadcast own state.
                if self.cfg.send_on_receipt {
                    self.broadcast(dst);
                }
            } else if !self.exec_scheduled[dst] {
                // Defer the execution by the critical-section dwell time;
                // further receipts before it fires just refresh the cache.
                self.exec_scheduled[dst] = true;
                self.queue.push(self.now + self.cfg.exec_delay, EventKind::Execute { node: dst });
            }
        }
        // The link freed up; flush a coalesced (newest-state) send.
        if had_pending {
            self.offer(src, link_idx);
        }
    }

    /// Send node `i`'s current state on both of its outgoing links.
    fn broadcast(&mut self, i: usize) {
        self.offer(i, 2 * i);
        self.offer(i, 2 * i + 1);
    }

    fn offer(&mut self, src: usize, link_idx: usize) {
        debug_assert_eq!(self.links[link_idx].src, src);
        let state = self.nodes[src].own.clone();
        if !self.links[link_idx].try_send(state, self.now) {
            return;
        }
        let deliver_at = match self.netem[link_idx].as_mut() {
            Some(nl) => nl.offer_frame(self.now, NETEM_FRAME_BYTES, &mut self.rng),
            None => {
                let mut model = self.link_delay[link_idx].unwrap_or(self.cfg.delay);
                model.offer_frame(self.now, NETEM_FRAME_BYTES, &mut self.rng)
            }
        };
        match deliver_at {
            Some(at) => self.queue.push(at, EventKind::Arrival { link: link_idx }),
            None => {
                // Tail drop: the frame never left the NIC. Free the link and
                // account the loss like any other (the netem link's own
                // buffer_drops counter keeps the congestion/loss split).
                let (_, had_pending) = self.links[link_idx].complete();
                debug_assert!(!had_pending, "a just-accepted send has no pending successor");
                self.links[link_idx].record_loss();
                let dst = self.links[link_idx].dst;
                self.log(EventRecord::Lost { from: src, to: dst });
            }
        }
    }

    fn record_sample(&mut self) {
        // O(1): all quantities are maintained incrementally as events touch
        // individual nodes (see `rebuild_counters` for the invariants).
        let sample = Sample {
            at: self.now,
            privileged: self.priv_count,
            mask: self.priv_mask,
            tokens_total: self.tokens_total_ctr,
            coherent: self.bad_entries == 0,
            legitimate: self.ground_legit,
        };
        self.timeline.push(sample);
    }
}

// ---------------------------------------------------------------------
// Cluster checkpointing: the full simulator state — replica states (via
// the existing CRC-32 snapshot codec), in-flight frames, netem queues,
// the fault-schedule cursor and every RNG cursor — serializes into one
// `SSRC` chunk file that `restore` turns back into a running simulator.
// The timeline and transcript are *observers*, not state: a restored run
// starts them fresh, which is exactly what byte-identical replay wants
// (both the original and the replay observe from the checkpoint onward).
// ---------------------------------------------------------------------

fn put_delay(buf: &mut Vec<u8>, m: DelayModel) {
    match m {
        DelayModel::Fixed(d) => {
            buf.push(0);
            buf.extend_from_slice(&d.to_le_bytes());
        }
        DelayModel::Uniform { min, max } => {
            buf.push(1);
            buf.extend_from_slice(&min.to_le_bytes());
            buf.extend_from_slice(&max.to_le_bytes());
        }
    }
}

fn read_delay(c: &mut Cursor<'_>, tag: [u8; 4]) -> Result<DelayModel, CheckpointError> {
    match c.u8()? {
        0 => Ok(DelayModel::Fixed(c.u64()?)),
        1 => Ok(DelayModel::Uniform { min: c.u64()?, max: c.u64()? }),
        _ => Err(CheckpointError::BadChunk { tag }),
    }
}

fn put_burst(buf: &mut Vec<u8>, b: Option<GilbertElliott>) {
    match b {
        None => buf.push(0),
        Some(ge) => {
            buf.push(1);
            buf.extend_from_slice(&ge.p_enter.to_bits().to_le_bytes());
            buf.extend_from_slice(&ge.p_exit.to_bits().to_le_bytes());
            buf.extend_from_slice(&ge.loss_bad.to_bits().to_le_bytes());
        }
    }
}

fn read_burst(c: &mut Cursor<'_>, tag: [u8; 4]) -> Result<Option<GilbertElliott>, CheckpointError> {
    match c.u8()? {
        0 => Ok(None),
        1 => Ok(Some(GilbertElliott { p_enter: c.f64()?, p_exit: c.f64()?, loss_bad: c.f64()? })),
        _ => Err(CheckpointError::BadChunk { tag }),
    }
}

fn put_state<S: WireState>(buf: &mut Vec<u8>, s: &S) {
    let mut tmp = Vec::new();
    s.encode_payload(&mut tmp);
    put_bytes(buf, &tmp);
}

fn read_state<S: WireState>(c: &mut Cursor<'_>, tag: [u8; 4]) -> Result<S, CheckpointError> {
    S::decode_payload(c.bytes()?).ok_or(CheckpointError::BadChunk { tag })
}

fn put_windows(buf: &mut Vec<u8>, windows: &[(Time, Time)]) {
    buf.extend_from_slice(&(windows.len() as u32).to_le_bytes());
    for &(from, until) in windows {
        buf.extend_from_slice(&from.to_le_bytes());
        buf.extend_from_slice(&until.to_le_bytes());
    }
}

fn read_windows(c: &mut Cursor<'_>) -> Result<Vec<(Time, Time)>, CheckpointError> {
    let count = c.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        out.push((c.u64()?, c.u64()?));
    }
    Ok(out)
}

impl<A: RingAlgorithm> CstSim<A>
where
    A::State: WireState,
{
    /// Serialize the entire simulator into a versioned, CRC-32-sealed
    /// checkpoint (see [`ssr_netem::checkpoint`] for the container format;
    /// the kind is [`CHECKPOINT_KIND_DES`]). `meta` is opaque caller data
    /// stored verbatim and handed back by [`CstSim::restore`] — `ssrmin`
    /// stores the run plan (end time, transcript capacity) there.
    ///
    /// Per-node replica states ride in the *existing* snapshot codec
    /// ([`ssr_core::encode_snapshot`]), so a node chunk is bitwise the same
    /// artifact a daemon writes at shutdown.
    pub fn checkpoint(&self, meta: &[u8]) -> Vec<u8> {
        let n = self.nodes.len();
        let mut w = ChunkWriter::new(CHECKPOINT_KIND_DES);

        let mut b = Vec::new();
        b.extend_from_slice(&self.cfg.seed.to_le_bytes());
        put_delay(&mut b, self.cfg.delay);
        b.extend_from_slice(&self.cfg.loss.to_bits().to_le_bytes());
        put_burst(&mut b, self.cfg.burst);
        b.extend_from_slice(&self.cfg.timer_interval.to_le_bytes());
        b.push(u8::from(self.cfg.send_on_receipt));
        b.extend_from_slice(&self.cfg.exec_delay.to_le_bytes());
        b.extend_from_slice(&(n as u32).to_le_bytes());
        w.chunk(*b"cfg ", &b);

        let mut b = Vec::new();
        for v in [
            self.now,
            self.events_processed,
            self.retired_transmissions,
            self.retired_losses,
            self.retired_rules,
            self.retired_netem_drops,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        w.chunk(*b"time", &b);

        let mut b = Vec::new();
        for word in self.rng.state() {
            b.extend_from_slice(&word.to_le_bytes());
        }
        w.chunk(*b"rng ", &b);

        for node in &self.nodes {
            w.chunk(*b"node", &node.snapshot());
        }

        for link in &self.links {
            let mut b = Vec::new();
            b.extend_from_slice(&(link.src as u32).to_le_bytes());
            b.extend_from_slice(&(link.dst as u32).to_le_bytes());
            match link.in_flight() {
                None => b.push(0),
                Some(s) => {
                    b.push(1);
                    put_state(&mut b, s);
                }
            }
            b.push(u8::from(link.has_pending()));
            b.extend_from_slice(&link.transmissions.to_le_bytes());
            b.extend_from_slice(&link.losses.to_le_bytes());
            b.extend_from_slice(&link.sent_at.to_le_bytes());
            w.chunk(*b"link", &b);
        }

        for ch in &self.link_loss {
            let mut b = Vec::new();
            b.extend_from_slice(&ch.base_loss.to_bits().to_le_bytes());
            put_burst(&mut b, ch.burst);
            b.push(u8::from(ch.is_bad()));
            w.chunk(*b"loss", &b);
        }

        let mut b = Vec::new();
        for d in &self.link_delay {
            match d {
                None => b.push(0),
                Some(m) => {
                    b.push(1);
                    put_delay(&mut b, *m);
                }
            }
        }
        w.chunk(*b"ldly", &b);

        let (entries, next_seq) = self.queue.snapshot();
        let mut b = Vec::new();
        b.extend_from_slice(&next_seq.to_le_bytes());
        b.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (at, seq, kind) in entries {
            b.extend_from_slice(&at.to_le_bytes());
            b.extend_from_slice(&seq.to_le_bytes());
            let (disc, idx) = match kind {
                EventKind::Arrival { link } => (0u8, link),
                EventKind::Timer { node } => (1, node),
                EventKind::Corruption { node } => (2, node),
                EventKind::Execute { node } => (3, node),
            };
            b.push(disc);
            b.extend_from_slice(&(idx as u32).to_le_bytes());
        }
        w.chunk(*b"evnt", &b);

        // The fault-schedule cursor: corruptions not yet applied. (Applied
        // ones were swap_removed; their queue events exist only pre-fire.)
        let mut b = Vec::new();
        b.extend_from_slice(&(self.corruptions.len() as u32).to_le_bytes());
        for (at, node, state) in &self.corruptions {
            b.extend_from_slice(&at.to_le_bytes());
            b.extend_from_slice(&(*node as u32).to_le_bytes());
            put_state(&mut b, state);
        }
        w.chunk(*b"corr", &b);

        let b: Vec<u8> = self.exec_scheduled.iter().map(|&x| u8::from(x)).collect();
        w.chunk(*b"exec", &b);

        let mut b = Vec::new();
        for windows in &self.pauses {
            put_windows(&mut b, windows);
        }
        w.chunk(*b"paus", &b);

        let mut b = Vec::new();
        for windows in &self.outages {
            put_windows(&mut b, windows);
        }
        w.chunk(*b"outg", &b);

        if let Some((profile, seed)) = &self.netem_profile {
            let mut b = Vec::new();
            put_bytes(&mut b, profile.name.as_bytes());
            profile.forward.encode_into(&mut b);
            profile.reverse.encode_into(&mut b);
            b.extend_from_slice(&seed.to_le_bytes());
            w.chunk(*b"ntem", &b);
            for nl in &self.netem {
                let nl = nl.as_ref().expect("set_netem installs every link");
                w.chunk(*b"ntml", &nl.snapshot());
            }
        }

        w.chunk(*b"meta", meta);
        w.finish()
    }

    /// Restore a simulator from [`CstSim::checkpoint`] bytes and return it
    /// together with the stored `meta` payload. `algo` must be the same
    /// algorithm the checkpointed run used (same ring size — checked — and
    /// same parameters, which the state chunks implicitly pin via their
    /// wire `KIND` and payloads).
    ///
    /// The restored simulator resumes the exact event, RNG, loss and netem
    /// streams of the original: running both to the same end time yields
    /// byte-identical transcripts and verdicts. The timeline and transcript
    /// restart empty (observers, not state).
    pub fn restore(algo: A, bytes: &[u8]) -> Result<(Self, Vec<u8>), CheckpointError> {
        let r = ChunkReader::parse_kind(bytes, CHECKPOINT_KIND_DES)?;
        let bad = |tag: [u8; 4]| CheckpointError::BadChunk { tag };

        let tag = *b"cfg ";
        let mut c = Cursor::new(tag, r.require(tag)?);
        let seed = c.u64()?;
        let delay = read_delay(&mut c, tag)?;
        let loss = c.f64()?;
        let burst = read_burst(&mut c, tag)?;
        let timer_interval = c.u64()?;
        let send_on_receipt = c.u8()? != 0;
        let exec_delay = c.u64()?;
        let n = c.u32()? as usize;
        c.finish()?;
        let cfg =
            SimConfig { seed, delay, loss, burst, timer_interval, send_on_receipt, exec_delay };
        if algo.n() != n || n == 0 {
            return Err(bad(tag));
        }

        let tag = *b"time";
        let mut c = Cursor::new(tag, r.require(tag)?);
        let now = c.u64()?;
        let events_processed = c.u64()?;
        let retired_transmissions = c.u64()?;
        let retired_losses = c.u64()?;
        let retired_rules = c.u64()?;
        let retired_netem_drops = c.u64()?;
        c.finish()?;

        let tag = *b"rng ";
        let mut c = Cursor::new(tag, r.require(tag)?);
        let rng_state = [c.u64()?, c.u64()?, c.u64()?, c.u64()?];
        c.finish()?;

        let nodes: Vec<Node<A::State>> = r
            .all(*b"node")
            .map(|chunk| Node::from_snapshot(chunk).map_err(|_| bad(*b"node")))
            .collect::<Result<_, _>>()?;
        if nodes.len() != n {
            return Err(CheckpointError::MissingChunk { tag: *b"node" });
        }

        let tag = *b"link";
        let mut links = Vec::with_capacity(2 * n);
        for chunk in r.all(tag) {
            let mut c = Cursor::new(tag, chunk);
            let src = c.u32()? as usize;
            let dst = c.u32()? as usize;
            let in_flight = match c.u8()? {
                0 => None,
                1 => Some(read_state::<A::State>(&mut c, tag)?),
                _ => return Err(bad(tag)),
            };
            let pending = c.u8()? != 0;
            let transmissions = c.u64()?;
            let losses = c.u64()?;
            let sent_at = c.u64()?;
            c.finish()?;
            if src >= n || dst >= n {
                return Err(bad(tag));
            }
            links.push(Link::from_parts(
                src,
                dst,
                in_flight,
                pending,
                transmissions,
                losses,
                sent_at,
            ));
        }
        if links.len() != 2 * n {
            return Err(CheckpointError::MissingChunk { tag });
        }

        let tag = *b"loss";
        let mut link_loss = Vec::with_capacity(2 * n);
        for chunk in r.all(tag) {
            let mut c = Cursor::new(tag, chunk);
            let base_loss = c.f64()?;
            let ge = read_burst(&mut c, tag)?;
            let is_bad = c.u8()? != 0;
            c.finish()?;
            link_loss.push(LossChannel::with_state(base_loss, ge, is_bad));
        }
        if link_loss.len() != 2 * n {
            return Err(CheckpointError::MissingChunk { tag });
        }

        let tag = *b"ldly";
        let mut c = Cursor::new(tag, r.require(tag)?);
        let mut link_delay = Vec::with_capacity(2 * n);
        for _ in 0..2 * n {
            link_delay.push(match c.u8()? {
                0 => None,
                1 => Some(read_delay(&mut c, tag)?),
                _ => return Err(bad(tag)),
            });
        }
        c.finish()?;

        let tag = *b"evnt";
        let mut c = Cursor::new(tag, r.require(tag)?);
        let next_seq = c.u64()?;
        let count = c.u32()? as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let at = c.u64()?;
            let seq = c.u64()?;
            let disc = c.u8()?;
            let idx = c.u32()? as usize;
            let kind = match disc {
                0 if idx < 2 * n => EventKind::Arrival { link: idx },
                1 if idx < n => EventKind::Timer { node: idx },
                2 if idx < n => EventKind::Corruption { node: idx },
                3 if idx < n => EventKind::Execute { node: idx },
                _ => return Err(bad(tag)),
            };
            if seq >= next_seq {
                return Err(bad(tag));
            }
            entries.push((at, seq, kind));
        }
        c.finish()?;
        let queue = EventQueue::from_snapshot(entries, next_seq);

        let tag = *b"corr";
        let mut c = Cursor::new(tag, r.require(tag)?);
        let count = c.u32()? as usize;
        let mut corruptions = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let at = c.u64()?;
            let node = c.u32()? as usize;
            let state = read_state::<A::State>(&mut c, tag)?;
            if node >= n {
                return Err(bad(tag));
            }
            corruptions.push((at, node, state));
        }
        c.finish()?;

        let tag = *b"exec";
        let chunk = r.require(tag)?;
        if chunk.len() != n {
            return Err(bad(tag));
        }
        let exec_scheduled: Vec<bool> = chunk.iter().map(|&x| x != 0).collect();

        let tag = *b"paus";
        let mut c = Cursor::new(tag, r.require(tag)?);
        let pauses: Vec<_> = (0..n).map(|_| read_windows(&mut c)).collect::<Result<_, _>>()?;
        c.finish()?;

        let tag = *b"outg";
        let mut c = Cursor::new(tag, r.require(tag)?);
        let outages: Vec<_> = (0..2 * n).map(|_| read_windows(&mut c)).collect::<Result<_, _>>()?;
        c.finish()?;

        let tag = *b"ntem";
        let (netem, netem_profile) = match r.find(tag) {
            None => (vec![None; 2 * n], None),
            Some(chunk) => {
                let mut c = Cursor::new(tag, chunk);
                let name = String::from_utf8(c.bytes()?.to_vec()).map_err(|_| bad(tag))?;
                let forward = ssr_netem::DirProfile::decode(&mut c, tag)?;
                let reverse = ssr_netem::DirProfile::decode(&mut c, tag)?;
                let netem_seed = c.u64()?;
                c.finish()?;
                let profile = LinkProfile { name, forward, reverse };
                let netem: Vec<Option<NetemLink>> = r
                    .all(*b"ntml")
                    .map(|chunk| NetemLink::restore(*b"ntml", chunk).map(Some))
                    .collect::<Result<_, _>>()?;
                if netem.len() != 2 * n {
                    return Err(CheckpointError::MissingChunk { tag: *b"ntml" });
                }
                (netem, Some((profile, netem_seed)))
            }
        };

        let meta = r.find(*b"meta").unwrap_or_default().to_vec();

        let mut sim = CstSim {
            algo,
            cfg,
            nodes,
            links,
            queue,
            now,
            rng: StdRng::from_state(rng_state),
            timeline: Timeline::new(),
            corruptions,
            exec_scheduled,
            link_loss,
            priv_flags: vec![false; n],
            priv_count: 0,
            priv_mask: 0,
            node_tokens: vec![0; n],
            tokens_total_ctr: 0,
            cache_ok: vec![[true; 2]; n],
            bad_entries: 0,
            ground_legit: false,
            link_delay,
            pauses,
            outages,
            transcript: None,
            events_processed,
            retired_transmissions,
            retired_losses,
            retired_rules,
            netem,
            netem_profile,
            retired_netem_drops,
        };
        sim.rebuild_counters();
        sim.record_sample();
        Ok((sim, meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::{RingParams, SsToken, SsrMin};

    fn params(n: usize, k: u32) -> RingParams {
        RingParams::new(n, k).unwrap()
    }

    fn ssr_sim(seed: u64) -> CstSim<SsrMin> {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        CstSim::new(a, a.legitimate_anchor(3), SimConfig { seed, ..SimConfig::default() }).unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let mut s1 = ssr_sim(11);
        let mut s2 = ssr_sim(11);
        s1.run_until(5_000);
        s2.run_until(5_000);
        assert_eq!(s1.ground_config(), s2.ground_config());
        assert_eq!(s1.stats(), s2.stats());
        assert_eq!(s1.timeline().samples(), s2.timeline().samples());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut s1 = ssr_sim(1);
        let mut s2 = ssr_sim(2);
        s1.run_until(5_000);
        s2.run_until(5_000);
        // Timers are staggered differently, so the stats differ w.h.p.
        assert_ne!(s1.timeline().samples(), s2.timeline().samples());
    }

    /// Theorem 3 observed: SSRmin under CST from a coherent legitimate start
    /// keeps 1..=2 privileged nodes at every instant.
    #[test]
    fn ssrmin_never_drops_to_zero_privileged() {
        for seed in 0..5u64 {
            let mut sim = ssr_sim(seed);
            sim.run_until(20_000);
            let sum = sim.timeline().summary(0).unwrap();
            assert_eq!(sum.zero_privileged_time, 0, "seed {seed}");
            assert_eq!(sum.zero_privileged_intervals, 0, "seed {seed}");
            assert!(sum.min_privileged >= 1, "seed {seed}");
            assert!(sum.max_privileged <= 2, "seed {seed}");
            assert!(sum.over_two_privileged_time == 0);
            // And the ring actually made progress.
            assert!(sim.stats().rules_executed > 10, "seed {seed}");
        }
    }

    /// Figure 11 observed: Dijkstra's ring under CST has zero-token
    /// instants at (essentially) every handover.
    #[test]
    fn dijkstra_under_cst_loses_the_token_during_transit() {
        let p = params(5, 7);
        let a = SsToken::new(p);
        // exec_delay = 3: a node keeps the token for 3 ticks of critical-
        // section work before releasing it (link delay is 5 ticks).
        let cfg = SimConfig { seed: 4, exec_delay: 3, ..SimConfig::default() };
        let mut sim = CstSim::new(a, a.uniform_config(3), cfg).unwrap();
        sim.run_until(20_000);
        let sum = sim.timeline().summary(0).unwrap();
        assert_eq!(sum.min_privileged, 0, "mutual inclusion must fail");
        assert!(sum.zero_privileged_time > 0);
        assert!(sum.zero_privileged_intervals > 1);
        assert!(sim.stats().rules_executed > 10, "the ring still circulates");
    }

    /// The mirror of the Figure 11 test: with the same critical-section
    /// dwell time, SSRmin never has a zero-privileged instant (Figure 13).
    #[test]
    fn ssrmin_with_dwell_time_still_never_zero() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let cfg = SimConfig { seed: 4, exec_delay: 3, ..SimConfig::default() };
        let mut sim = CstSim::new(a, a.legitimate_anchor(3), cfg).unwrap();
        sim.run_until(20_000);
        let sum = sim.timeline().summary(0).unwrap();
        assert_eq!(sum.zero_privileged_time, 0);
        assert!(sum.min_privileged >= 1);
        assert!(sum.max_privileged <= 2);
        assert!(sim.stats().rules_executed > 10);
    }

    #[test]
    fn message_loss_keeps_ssrmin_gaps_negligible() {
        // Under message loss the Theorem 3 invariant is only *almost*
        // preserved: a long streak of consecutive losses can leave a stale
        // cache ("bad incoherence" in the paper's terms — a transient
        // fault), whose Rule-4/5 self-repair may cost a brief gap. The gap
        // fraction must stay negligible and the system must self-restore
        // (Theorem 4). Compare: Dijkstra's ring spends the majority of its
        // time at zero tokens even WITHOUT loss.
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let cfg = SimConfig { seed: 9, loss: 0.3, ..SimConfig::default() };
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), cfg).unwrap();
        sim.run_until(30_000);
        let sum = sim.timeline().summary(0).unwrap();
        let frac = sum.zero_privileged_time as f64 / sum.window as f64;
        assert!(frac < 0.005, "zero-privileged fraction {frac} too high");
        assert!(sim.stats().losses > 0, "loss process must actually fire");
        assert!(sim.stats().rules_executed > 0);
    }

    /// Lemma 9 / Theorem 4 observed: from corrupted state and stale caches,
    /// with loss, the system still reaches a legitimate coherent state.
    #[test]
    fn converges_from_corruption_with_loss() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let cfg = SimConfig { seed: 5, loss: 0.2, ..SimConfig::default() };
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), cfg).unwrap();
        sim.schedule_corruption(100, 2, "6.1.1".parse().unwrap());
        sim.schedule_corruption(150, 4, "1.0.1".parse().unwrap());
        let t = sim.run_until_stably_legitimate(2_000_000, 1_000);
        assert!(t.is_some(), "must re-stabilize");
        // After stabilization: run further, zero-token time stays zero.
        let t0 = sim.now();
        sim.run_until(t0 + 10_000);
        let sum = sim.timeline().summary(t0).unwrap();
        assert_eq!(sum.zero_privileged_time, 0);
    }

    #[test]
    fn timer_only_mode_still_safe_but_slower() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let fast = SimConfig { seed: 3, ..SimConfig::default() };
        let slow = SimConfig { seed: 3, send_on_receipt: false, ..SimConfig::default() };
        let mut s_fast = CstSim::new(a, a.legitimate_anchor(0), fast).unwrap();
        let mut s_slow = CstSim::new(a, a.legitimate_anchor(0), slow).unwrap();
        s_fast.run_until(50_000);
        s_slow.run_until(50_000);
        let fast_rules = s_fast.stats().rules_executed;
        let slow_rules = s_slow.stats().rules_executed;
        assert!(slow_rules > 0);
        assert!(
            fast_rules > slow_rules,
            "receipt-driven gossip must move tokens faster ({fast_rules} vs {slow_rules})"
        );
        let sum = s_slow.timeline().summary(0).unwrap();
        assert_eq!(sum.zero_privileged_time, 0, "safety holds even timer-only");
    }

    #[test]
    fn paused_token_holder_keeps_the_token_and_the_ring_resumes() {
        // Crash the bottom node (which holds both tokens at the anchor) for
        // a while: the token stays with it — its camera keeps observing —
        // so safety holds; when it wakes, circulation resumes.
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let mut sim =
            CstSim::new(a, a.legitimate_anchor(0), SimConfig { seed: 2, ..SimConfig::default() })
                .unwrap();
        sim.schedule_pause(0, 0, 2_000);
        sim.run_until(2_000);
        let during = sim.timeline().summary(0).unwrap();
        assert_eq!(during.zero_privileged_time, 0, "paused holder still holds");
        let rules_during = sim.stats().rules_executed;
        sim.run_until(20_000);
        let rules_after = sim.stats().rules_executed;
        assert!(
            rules_after > rules_during + 50,
            "circulation must resume after the pause ({rules_during} -> {rules_after})"
        );
        let post = sim.timeline().summary(2_000).unwrap();
        assert_eq!(post.zero_privileged_time, 0);
    }

    #[test]
    fn slow_link_delays_but_does_not_break_handover() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let mut fast =
            CstSim::new(a, a.legitimate_anchor(0), SimConfig { seed: 3, ..SimConfig::default() })
                .unwrap();
        let mut slow =
            CstSim::new(a, a.legitimate_anchor(0), SimConfig { seed: 3, ..SimConfig::default() })
                .unwrap();
        // One crawling hop: P2 -> P3 takes 60 ticks instead of 5.
        slow.set_link_delay(2, 3, DelayModel::Fixed(60));
        fast.run_until(30_000);
        slow.run_until(30_000);
        assert!(
            slow.stats().rules_executed < fast.stats().rules_executed,
            "the slow hop must throttle circulation"
        );
        let sum = slow.timeline().summary(0).unwrap();
        assert_eq!(sum.zero_privileged_time, 0, "safety is latency-independent");
    }

    #[test]
    #[should_panic(expected = "not a ring link")]
    fn set_link_delay_rejects_non_edges() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), SimConfig::default()).unwrap();
        sim.set_link_delay(0, 2, DelayModel::Fixed(9));
    }

    #[test]
    fn link_outage_is_ridden_out_by_retransmission() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let mut sim =
            CstSim::new(a, a.legitimate_anchor(0), SimConfig { seed: 5, ..SimConfig::default() })
                .unwrap();
        // The forward hop P1 → P2 is dark for 3000 ticks.
        sim.schedule_link_outage(1, 2, 1_000, 4_000);
        sim.run_until(30_000);
        let st = sim.stats();
        assert!(st.losses > 10, "the outage must actually drop deliveries");
        // Safety holds throughout, and circulation resumes after the window.
        let sum = sim.timeline().summary(0).unwrap();
        assert_eq!(sum.zero_privileged_time, 0, "{sum:?}");
        let tail = sim.timeline().summary(10_000).unwrap();
        assert!(sim.stats().rules_executed > 100);
        assert_eq!(tail.zero_privileged_time, 0);
    }

    #[test]
    #[should_panic(expected = "not a ring link")]
    fn link_outage_rejects_non_edges() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), SimConfig::default()).unwrap();
        sim.schedule_link_outage(0, 3, 1, 2);
    }

    #[test]
    fn burst_loss_drops_messages_in_bursts() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let cfg = SimConfig {
            seed: 6,
            burst: Some(GilbertElliott { p_enter: 0.05, p_exit: 0.2, loss_bad: 0.9 }),
            ..SimConfig::default()
        };
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), cfg).unwrap();
        sim.run_until(40_000);
        let st = sim.stats();
        assert!(st.losses > 0, "bursts must drop messages");
        assert!(st.rules_executed > 10, "circulation must survive bursts");
        // Despite bursts the zero-token fraction must stay negligible
        // (brief bad-incoherence blips only).
        let sum = sim.timeline().summary(0).unwrap();
        let frac = sum.zero_privileged_time as f64 / sum.window as f64;
        assert!(frac < 0.02, "zero fraction {frac} too high under bursts");
    }

    #[test]
    fn burst_loss_is_deterministic_per_seed() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let run = |seed| {
            let cfg = SimConfig {
                seed,
                burst: Some(GilbertElliott { p_enter: 0.1, p_exit: 0.3, loss_bad: 0.8 }),
                ..SimConfig::default()
            };
            let mut sim = CstSim::new(a, a.legitimate_anchor(0), cfg).unwrap();
            sim.run_until(10_000);
            sim.stats()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn corruption_requires_valid_node_and_future_time() {
        let mut sim = ssr_sim(0);
        sim.run_until(100);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.schedule_corruption(50, 0, "0.0.0".parse().unwrap());
        }));
        assert!(r.is_err(), "scheduling in the past must panic");
    }

    #[test]
    fn transcript_records_the_handover_story() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let mut sim = CstSim::new(
            a,
            a.legitimate_anchor(0),
            SimConfig { seed: 1, loss: 0.2, ..SimConfig::default() },
        )
        .unwrap();
        sim.enable_transcript(200);
        sim.run_until(3_000);
        let t = sim.transcript().unwrap();
        assert!(!t.is_empty());
        let rendered = t.render();
        assert!(rendered.contains("deliver"), "{rendered}");
        assert!(rendered.contains("rule"), "{rendered}");
        assert!(rendered.contains("LOST"), "{rendered}");
        assert!(rendered.contains("timer"), "{rendered}");
        // Timestamps are non-decreasing.
        let mut last = 0;
        for (at, _) in t.entries() {
            assert!(*at >= last);
            last = *at;
        }
    }

    #[test]
    fn transcript_disabled_by_default_and_costs_nothing() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), SimConfig::default()).unwrap();
        sim.run_until(2_000);
        assert!(sim.transcript().is_none());
    }

    /// The incremental observation counters must agree with a full
    /// recomputation at any point, including under loss, faults, pauses and
    /// dwell — the strongest guard against drift in the O(1) sampler.
    #[test]
    fn incremental_counters_match_full_recount() {
        let p = params(6, 8);
        let a = SsrMin::new(p);
        let cfg = SimConfig { seed: 13, loss: 0.2, exec_delay: 3, ..SimConfig::default() };
        let mut sim = CstSim::new(a, a.legitimate_anchor(1), cfg).unwrap();
        sim.schedule_corruption(500, 2, "5.1.1".parse().unwrap());
        sim.schedule_pause(4, 900, 1_400);
        for t in 1..=60u64 {
            sim.run_until(t * 100);
            // Full recount via the public (scanning) accessors.
            let privileged_full = sim.local_privileged();
            let last = *sim.timeline().samples().last().unwrap();
            assert_eq!(last.privileged, privileged_full.len(), "t={t}");
            let mask_full: u64 = privileged_full.iter().map(|&i| 1u64 << i).fold(0, |a, b| a | b);
            assert_eq!(last.mask, mask_full, "t={t}");
            assert_eq!(last.coherent, sim.is_coherent(), "t={t}");
            assert_eq!(
                last.legitimate,
                sim.algorithm().is_legitimate(&sim.ground_config()),
                "t={t}"
            );
            let tokens_full: usize =
                (0..6).map(|i| sim.node(i).tokens(sim.algorithm(), i).count() as usize).sum();
            assert_eq!(last.tokens_total, tokens_full, "t={t}");
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut sim = ssr_sim(0);
        sim.run_until(2_000);
        let st = sim.stats();
        assert!(st.transmissions > 0);
        assert!(st.events > 0);
        assert_eq!(st.losses, 0);
    }

    use ssr_core::SsrState;

    /// A graceful SSRmin joiner: adopt the predecessor's counter, hold no
    /// token bits (mirrors the UDP re-splice handshake).
    fn graceful_joiner(sim: &CstSim<SsrMin>) -> SsrState {
        let tail = sim.ground_config().len() - 1;
        SsrState::new(sim.node(tail).own.x, 0, 0)
    }

    /// Drive one seeded churn schedule through the DES and assert the ring
    /// re-converges to a stably legitimate configuration — checked against
    /// the *current* n's Theorem-2 envelope — after every membership event.
    #[test]
    fn churn_schedule_reconverges_within_envelope_of_current_n() {
        use crate::faults::{ChurnPlan, FaultKind, FaultSchedule};
        let k = 12; // headroom: the ring may grow to max_n = 9 < K
        let plan = ChurnPlan { rate: 4.0, window: (500, 4_500), min_n: 3, max_n: 9 };
        let schedule = FaultSchedule::churn(5, &plan, 21).unwrap();
        assert!(!schedule.is_empty(), "seed 21 must produce churn events");
        let a = SsrMin::new(params(5, k));
        let cfg = SimConfig { seed: 21, loss: 0.1, ..SimConfig::default() };
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), cfg).unwrap();
        for ev in schedule.events() {
            sim.run_until(ev.at);
            let n = sim.ground_config().len();
            match ev.kind {
                FaultKind::Join { node } => {
                    assert_eq!(node, n);
                    let own = graceful_joiner(&sim);
                    sim.splice_join(SsrMin::new(params(n + 1, k)), own);
                }
                FaultKind::Leave { node } => {
                    sim.splice_leave(SsrMin::new(params(n - 1, k)), node);
                }
                other => panic!("churn schedules only hold membership events, got {other}"),
            }
            // Theorem 2 for the post-event ring: O(n²) rounds; one gossip
            // round is one timer interval of ticks.
            let n_now = sim.ground_config().len();
            let envelope = 4 * (n_now as u64) * (n_now as u64) * sim.cfg.timer_interval;
            let t0 = sim.now();
            let since = sim.run_until_stably_legitimate(t0 + envelope, 200);
            assert!(
                since.is_some(),
                "event '{}' at {} did not reconverge within the {n_now}-ring envelope",
                ev.kind,
                ev.at
            );
        }
        // The resized ring keeps circulating and the stats stayed cumulative.
        let before = sim.stats();
        sim.run_until(sim.now() + 10_000);
        let after = sim.stats();
        assert!(after.rules_executed > before.rules_executed + 10);
        assert!(after.transmissions > before.transmissions);
    }

    /// A graceful join/leave on a legitimate quiescent ring never loses the
    /// token: the membership event lands between handovers, so safety (1..=2
    /// privileged) holds across the splice itself, not just eventually.
    #[test]
    fn graceful_splice_preserves_the_token_through_the_event() {
        let k = 10;
        let a = SsrMin::new(params(5, k));
        let cfg = SimConfig { seed: 3, ..SimConfig::default() };
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), cfg).unwrap();
        sim.run_until(2_000);
        let own = graceful_joiner(&sim);
        sim.splice_join(SsrMin::new(params(6, k)), own);
        sim.run_until(4_000);
        sim.splice_leave(SsrMin::new(params(5, k)), 2);
        sim.run_until(8_000);
        let sum = sim.timeline().summary(0).unwrap();
        assert_eq!(sum.zero_privileged_time, 0, "{sum:?}");
        assert!(sum.max_privileged <= 2, "{sum:?}");
    }

    #[test]
    fn splice_retires_counters_and_survives_pending_faults() {
        let k = 10;
        let a = SsrMin::new(params(5, k));
        let cfg = SimConfig { seed: 7, loss: 0.2, ..SimConfig::default() };
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), cfg).unwrap();
        // Pending faults that straddle the splice: node 4's corruption and
        // node 2's pause survive (node 3's corruption leaves with node 3).
        sim.schedule_corruption(6_000, 3, "6.1.1".parse().unwrap());
        sim.schedule_corruption(6_000, 4, "1.0.1".parse().unwrap());
        sim.schedule_pause(2, 5_000, 5_500);
        sim.run_until(3_000);
        let before = sim.stats();
        assert!(before.transmissions > 0 && before.losses > 0);
        sim.splice_leave(SsrMin::new(params(4, k)), 3);
        let after = sim.stats();
        assert!(after.transmissions >= before.transmissions, "stats must stay cumulative");
        assert!(after.rules_executed >= before.rules_executed);
        // The shifted corruption (old node 4 is now node 3) still fires,
        // and the ring still restabilizes afterwards.
        assert!(sim.run_until_stably_legitimate(120_000, 500).is_some());
        assert!(sim.stats().events > after.events);
    }

    #[test]
    #[should_panic(expected = "anchor")]
    fn splice_leave_rejects_the_anchor() {
        let a = SsrMin::new(params(5, 10));
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), SimConfig::default()).unwrap();
        sim.splice_leave(SsrMin::new(params(4, 10)), 0);
    }

    #[test]
    #[should_panic(expected = "n + 1")]
    fn splice_join_rejects_a_mismatched_algorithm() {
        let a = SsrMin::new(params(5, 10));
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), SimConfig::default()).unwrap();
        sim.splice_join(SsrMin::new(params(7, 10)), SsrState::new(0, 0, 0));
    }

    // ---- netem link models -------------------------------------------

    fn netem_sim(seed: u64, profile: &str) -> CstSim<SsrMin> {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        // Netem times are microseconds; a gossip timer every 20 ms keeps
        // the WAN profiles (40–60 ms latency) meaningfully slower than LAN.
        let cfg = SimConfig { seed, timer_interval: 20_000, ..SimConfig::default() };
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), cfg).unwrap();
        sim.set_netem(&ssr_netem::LinkProfile::builtin(profile).unwrap(), seed);
        sim
    }

    #[test]
    fn netem_runs_are_deterministic_per_seed() {
        let run = |seed| {
            let mut sim = netem_sim(seed, "wan");
            sim.run_until(2_000_000);
            (sim.ground_config(), sim.stats(), sim.netem_buffer_drops())
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn wan_throttles_circulation_relative_to_lan_but_stays_safe() {
        let mut lan = netem_sim(5, "lan");
        let mut wan = netem_sim(5, "wan");
        lan.run_until(3_000_000);
        wan.run_until(3_000_000);
        assert!(
            wan.stats().rules_executed < lan.stats().rules_executed,
            "40 ms links must hand over slower than 100 µs links ({} vs {})",
            wan.stats().rules_executed,
            lan.stats().rules_executed
        );
        assert!(lan.stats().rules_executed > 50, "lan ring must circulate");
        let sum = lan.timeline().summary(0).unwrap();
        assert_eq!(sum.zero_privileged_time, 0, "safety under netem");
    }

    #[test]
    fn lossy_wan_drops_and_netem_drops_stay_distinct() {
        let mut sim = netem_sim(9, "lossy-wan");
        sim.run_until(4_000_000);
        let st = sim.stats();
        assert!(st.losses > 0, "5% profile loss must fire");
        // Buffer drops are a subset of losses; with a 32-frame buffer and
        // one-deep senders they should be rare or zero, never exceeding
        // the loss total.
        assert!(sim.netem_buffer_drops() <= st.losses);
        assert!(st.rules_executed > 10, "circulation survives the lossy WAN");
    }

    #[test]
    fn cst_single_capacity_links_self_pace_even_a_one_frame_buffer() {
        use ssr_netem::{DirProfile, Jitter, LinkProfile};
        // The paper's links carry one message per direction at a time, and
        // the coalescing sender never offers a second frame before the
        // first delivers — CST is *self-clocking*, so in the DES even a
        // 1-frame netem buffer cannot overflow, no matter how slow the
        // serializer. (Drop-tail fires at the UDP proxy, where kernel
        // datagrams race the pacer asynchronously.) The serializer still
        // throttles: one 64-byte frame at 64 kbit/s occupies it for 8 ms.
        let dir = DirProfile {
            rate_bps: 64_000,
            latency_us: 1_000,
            jitter: Jitter::None,
            buffer_frames: 1,
            loss: 0.0,
        };
        let profile = LinkProfile::symmetric("crawl", dir);
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let cfg = SimConfig { seed: 2, timer_interval: 5_000, ..SimConfig::default() };
        let mut crawl = CstSim::new(a, a.legitimate_anchor(0), cfg).unwrap();
        crawl.set_netem(&profile, 2);
        let mut lan = CstSim::new(a, a.legitimate_anchor(0), cfg).unwrap();
        lan.set_netem(&LinkProfile::builtin("lan").unwrap(), 2);
        crawl.run_until(1_000_000);
        lan.run_until(1_000_000);
        assert_eq!(crawl.netem_buffer_drops(), 0, "self-clocked senders cannot overflow");
        assert_eq!(crawl.stats().losses, 0);
        assert!(crawl.stats().rules_executed > 0, "the ring still makes progress");
        assert!(
            crawl.stats().rules_executed < lan.stats().rules_executed / 2,
            "the 8 ms serializer must throttle circulation ({} vs {})",
            crawl.stats().rules_executed,
            lan.stats().rules_executed
        );
    }

    #[test]
    fn netem_survives_a_resplice() {
        let mut sim = netem_sim(4, "lan");
        sim.run_until(500_000);
        let own = graceful_joiner(&sim);
        sim.splice_join(SsrMin::new(params(6, 7)), own);
        assert_eq!(sim.netem_profile().unwrap().name, "lan");
        assert!(sim.netem_link(11).is_some(), "12 directed links after the join");
        let before = sim.stats().rules_executed;
        sim.run_until(1_500_000);
        assert!(sim.stats().rules_executed > before, "resized netem ring circulates");
    }

    // ---- cluster checkpoint / replay ---------------------------------

    #[test]
    fn checkpoint_restore_replays_byte_identically() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let cfg = SimConfig { seed: 17, timer_interval: 20_000, ..SimConfig::default() };
        let mut sim = CstSim::new(a, a.legitimate_anchor(0), cfg).unwrap();
        sim.set_netem(&ssr_netem::LinkProfile::builtin("lossy-wan").unwrap(), 17);
        // A fault cursor that straddles the checkpoint: one corruption
        // before it (already applied), one after (still pending).
        sim.schedule_corruption(400_000, 2, "6.1.1".parse().unwrap());
        sim.schedule_corruption(1_200_000, 4, "1.0.1".parse().unwrap());
        sim.schedule_pause(3, 900_000, 1_100_000);
        sim.run_until(800_000);

        let bytes = sim.checkpoint(b"run-to-3M");
        let (mut replay, meta) = CstSim::restore(SsrMin::new(p), &bytes).unwrap();
        assert_eq!(meta, b"run-to-3M");
        assert_eq!(replay.now(), sim.now());
        assert_eq!(replay.ground_config(), sim.ground_config());

        // Observe both runs from the checkpoint onward and drive them to
        // the same end: every event must match, byte for byte.
        sim.enable_transcript(1 << 14);
        replay.enable_transcript(1 << 14);
        sim.run_until(3_000_000);
        replay.run_until(3_000_000);
        assert_eq!(sim.stats(), replay.stats());
        assert_eq!(sim.ground_config(), replay.ground_config());
        assert_eq!(sim.netem_buffer_drops(), replay.netem_buffer_drops());
        let a_t = sim.transcript().unwrap().render();
        let b_t = replay.transcript().unwrap().render();
        assert!(!a_t.is_empty());
        assert_eq!(a_t, b_t, "replay transcript must be byte-identical");
    }

    #[test]
    fn checkpoint_without_netem_also_round_trips() {
        let p = params(4, 6);
        let a = SsrMin::new(p);
        let cfg = SimConfig { seed: 8, loss: 0.2, exec_delay: 3, ..SimConfig::default() };
        let mut sim = CstSim::new(a, a.legitimate_anchor(1), cfg).unwrap();
        sim.set_link_delay(1, 2, DelayModel::Uniform { min: 2, max: 11 });
        sim.run_until(4_000);
        let bytes = sim.checkpoint(&[]);
        let (mut replay, meta) = CstSim::restore(SsrMin::new(p), &bytes).unwrap();
        assert!(meta.is_empty());
        sim.enable_transcript(4096);
        replay.enable_transcript(4096);
        sim.run_until(20_000);
        replay.run_until(20_000);
        assert_eq!(sim.transcript().unwrap().render(), replay.transcript().unwrap().render());
        assert_eq!(sim.stats(), replay.stats());
    }

    #[test]
    fn restore_rejects_the_wrong_ring_size_and_damage() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let sim = CstSim::new(a, a.legitimate_anchor(0), SimConfig::default()).unwrap();
        let bytes = sim.checkpoint(&[]);
        assert!(CstSim::restore(SsrMin::new(params(6, 7)), &bytes).is_err());
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(CstSim::restore(SsrMin::new(p), &bad).is_err(), "corruption fails closed");
        assert!(CstSim::restore(SsrMin::new(p), &bytes[..bytes.len() - 3]).is_err());
    }
}
