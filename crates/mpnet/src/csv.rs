//! Plain CSV export of simulation artifacts, for external plotting. No
//! serialization dependency — the formats are trivially flat.

use std::fmt::Write as _;

use crate::observe::Timeline;

/// Render a timeline as CSV: `time,privileged,tokens_total,coherent,legitimate`.
///
/// One row per sample (step-function semantics: each row's values hold
/// until the next row's time).
pub fn timeline_to_csv(timeline: &Timeline) -> String {
    let mut out = String::from("time,privileged,tokens_total,coherent,legitimate\n");
    for s in timeline.samples() {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            s.at, s.privileged, s.tokens_total, s.coherent as u8, s.legitimate as u8
        );
    }
    out
}

/// Render per-node privilege occupancy as CSV: `time,node,privileged`
/// (only rows where a node's bit changed, to keep files small).
pub fn per_node_transitions_to_csv(timeline: &Timeline, n: usize) -> String {
    assert!(n <= 64, "mask width");
    let mut out = String::from("time,node,privileged\n");
    let mut last: u64 = 0;
    let mut first = true;
    for s in timeline.samples() {
        for i in 0..n {
            let bit = 1u64 << i;
            let now = s.mask & bit != 0;
            let was = last & bit != 0;
            if first || now != was {
                let _ = writeln!(out, "{},{},{}", s.at, i, now as u8);
            }
        }
        last = s.mask;
        first = false;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::Sample;

    fn sample(at: u64, mask: u64) -> Sample {
        Sample {
            at,
            privileged: mask.count_ones() as usize,
            mask,
            tokens_total: mask.count_ones() as usize,
            coherent: true,
            legitimate: true,
        }
    }

    #[test]
    fn timeline_csv_has_header_and_rows() {
        let mut t = Timeline::new();
        t.push(sample(0, 0b1));
        t.push(sample(10, 0b11));
        let csv = timeline_to_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,privileged,tokens_total,coherent,legitimate");
        assert_eq!(lines[1], "0,1,1,1,1");
        assert_eq!(lines[2], "10,2,2,1,1");
    }

    #[test]
    fn per_node_csv_emits_only_transitions() {
        let mut t = Timeline::new();
        t.push(sample(0, 0b01));
        t.push(sample(5, 0b01)); // no change → no rows
        t.push(sample(9, 0b10)); // both bits flip
        let csv = per_node_transitions_to_csv(&t, 2);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["time,node,privileged", "0,0,1", "0,1,0", "9,0,0", "9,1,1",]);
    }

    #[test]
    fn empty_timeline_yields_header_only() {
        let t = Timeline::new();
        assert_eq!(timeline_to_csv(&t).lines().count(), 1);
        assert_eq!(per_node_transitions_to_csv(&t, 3).lines().count(), 1);
    }
}
