//! # ssr-mpnet — message-passing network simulator with the CST transform
//!
//! Section 5 of the paper executes the state-reading algorithm in a
//! message-passing network via the **Cached Sensornet Transform** (CST,
//! Herman 2003): every node keeps caches of its neighbours' states, acts on
//! the cached view, and gossips its own state on every update and on a
//! periodic timer. This crate is a deterministic discrete-event simulator of
//! exactly that system:
//!
//! * [`event`] — simulated time, delay models, deterministic event queue;
//! * [`link`] — directed links with single-message capacity and
//!   latest-state coalescing (the paper's "one message per direction");
//! * [`node`] — CST node state (`q_i` + caches `Z_i[·]`);
//! * [`sim`] — the simulator itself, generic over any
//!   [`ssr_core::RingAlgorithm`];
//! * [`observe`] — continuous-time token/coherence/legitimacy timelines and
//!   time-weighted summaries;
//! * [`faults`] — message loss, state corruption, and stale-cache
//!   constructors (the Lemma 9 fault model);
//! * [`loss`] — reusable i.i.d. + Gilbert–Elliott loss channels (shared
//!   with the `ssr-net` chaos proxy).
//!
//! The headline reproduction targets:
//!
//! * **Figure 11** — Dijkstra's ring under CST has zero-token instants.
//! * **Figure 13 / Theorem 3** — SSRmin under CST keeps 1..=2 privileged
//!   nodes at *every* instant (graceful handover / model gap tolerance).
//! * **Theorem 4** — under uniformly random message loss and arbitrary
//!   initial caches, SSRmin still converges to that regime.
//!
//! ```
//! use ssr_core::{RingParams, SsrMin};
//! use ssr_mpnet::{CstSim, SimConfig};
//!
//! let params = RingParams::new(5, 7).unwrap();
//! let algo = SsrMin::new(params);
//! let mut sim = CstSim::new(algo, algo.legitimate_anchor(3), SimConfig::default()).unwrap();
//! sim.run_until(10_000);
//! let summary = sim.timeline().summary(0).unwrap();
//! assert_eq!(summary.zero_privileged_time, 0); // graceful handover
//! assert!(summary.max_privileged <= 2);        // (1,2)-critical section
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod event;
pub mod fallback;
pub mod faults;
pub mod link;
pub mod loss;
pub mod model_gap;
pub mod node;
pub mod nst;
pub mod observe;
pub mod sim;
pub mod transcript;

pub use csv::{per_node_transitions_to_csv, timeline_to_csv};
pub use event::{DelayModel, EventKind, EventQueue, Time};
pub use fallback::{
    audit_handover, cover_time_envelope, live_segments, FallbackArbiter, FallbackSim,
    FallbackStats, GrantMode, GrantWindow, MergeEvent, ModeSwitch, RandomWalker, SegmentInfo,
    HANDSHAKE_DOMAIN,
};
pub use faults::{
    ChurnPlan, FaultEvent, FaultKind, FaultParseError, FaultPlan, FaultSchedule,
    FaultScheduleError, RestartMode,
};
pub use link::{Link, LinkModel};
pub use loss::{GilbertElliott, LossChannel};
pub use model_gap::{token_existence_check, GapCheck};
pub use node::Node;
pub use nst::{NstConfig, NstSim, NstStats};
pub use observe::{per_node_max_gap, Sample, Timeline, TimelineSummary};
pub use sim::{CstSim, SimConfig, SimStats, CHECKPOINT_KIND_DES, NETEM_FRAME_BYTES};
pub use transcript::{EventRecord, Transcript};
