//! A bounded event transcript for the simulator: when enabled, every
//! delivery, loss, rule firing and fault is recorded with its timestamp, so
//! a surprising run can be read back like a log file. Disabled by default —
//! recording costs allocations in the hot loop.

use std::collections::VecDeque;
use std::fmt;

use crate::event::Time;

/// One recorded simulator event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventRecord<S> {
    /// A state message from `from` arrived at `to` and updated the cache.
    Delivered {
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
        /// Carried state.
        state: S,
    },
    /// A message from `from` to `to` was dropped by the loss process.
    Lost {
        /// Sender.
        from: usize,
        /// Intended receiver.
        to: usize,
    },
    /// Node `node` executed a rule; `after` is its new state.
    RuleFired {
        /// The acting node.
        node: usize,
        /// Rule tag (SSRmin: 1–5).
        rule_tag: u8,
        /// State after the command.
        after: S,
    },
    /// Node `node`'s periodic timer broadcast its state.
    TimerBroadcast {
        /// The broadcasting node.
        node: usize,
    },
    /// A scheduled transient fault overwrote `node`'s state.
    Corrupted {
        /// The victim.
        node: usize,
        /// The injected state.
        state: S,
    },
}

impl<S: fmt::Display> fmt::Display for EventRecord<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventRecord::Delivered { from, to, state } => {
                write!(f, "deliver  P{from} → P{to}  ({state})")
            }
            EventRecord::Lost { from, to } => write!(f, "LOST     P{from} → P{to}"),
            EventRecord::RuleFired { node, rule_tag, after } => {
                write!(f, "rule {rule_tag}   P{node} ← {after}")
            }
            EventRecord::TimerBroadcast { node } => write!(f, "timer    P{node} rebroadcast"),
            EventRecord::Corrupted { node, state } => {
                write!(f, "FAULT    P{node} ← {state}")
            }
        }
    }
}

/// A bounded FIFO of timestamped event records.
#[derive(Debug, Clone)]
pub struct Transcript<S> {
    entries: VecDeque<(Time, EventRecord<S>)>,
    capacity: usize,
    dropped: u64,
}

impl<S: Clone + fmt::Display> Transcript<S> {
    /// A transcript keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Transcript { entries: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// Record an event, evicting the oldest if full.
    pub fn push(&mut self, at: Time, record: EventRecord<S>) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((at, record));
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &(Time, EventRecord<S>)> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the transcript as an aligned log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} earlier events dropped ...\n", self.dropped));
        }
        for (at, rec) in &self.entries {
            out.push_str(&format!("t={at:>8}  {rec}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders() {
        let mut t: Transcript<u32> = Transcript::new(10);
        t.push(5, EventRecord::TimerBroadcast { node: 2 });
        t.push(9, EventRecord::Delivered { from: 2, to: 3, state: 7 });
        t.push(9, EventRecord::RuleFired { node: 3, rule_tag: 2, after: 7 });
        t.push(12, EventRecord::Lost { from: 3, to: 4 });
        t.push(20, EventRecord::Corrupted { node: 0, state: 9 });
        let r = t.render();
        assert!(r.contains("timer    P2"));
        assert!(r.contains("deliver  P2 → P3  (7)"));
        assert!(r.contains("rule 2   P3 ← 7"));
        assert!(r.contains("LOST     P3 → P4"));
        assert!(r.contains("FAULT    P0 ← 9"));
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t: Transcript<u32> = Transcript::new(3);
        for i in 0..5u64 {
            t.push(i, EventRecord::TimerBroadcast { node: i as usize });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.entries().next().unwrap();
        assert_eq!(first.0, 2);
        assert!(t.render().starts_with("... 2 earlier events dropped ..."));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _t: Transcript<u32> = Transcript::new(0);
    }
}
