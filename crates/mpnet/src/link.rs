//! Directed communication links with single-message capacity and
//! latest-state coalescing.
//!
//! The paper assumes "each communication link can transmit only one message
//! in each direction at a time" (Section 5). CST messages carry the sender's
//! *entire* local state, so when a send is requested while the link is busy
//! we simply remember that a newer state is pending; once the in-flight
//! message is delivered, the link picks up the sender's *current* state.
//! This is both faithful to the model and exactly what a real firmware
//! sender with a 1-deep TX queue would do.

use rand::rngs::StdRng;

use crate::event::{DelayModel, Time};

/// The delivery-scheduling seam of the simulator: given a frame offered on
/// a directed link *now*, decide when (or whether) it arrives.
///
/// Two implementations exist: the classic [`DelayModel`] (fixed/uniform
/// delay, infinite bandwidth, never drops) and `ssr_netem::NetemLink`
/// (rate + latency + jitter + finite drop-tail buffer), which is how the
/// E2E recovery envelopes re-run in-simulator under realistic profiles.
/// Simulated ticks are treated as microseconds by the netem model.
pub trait LinkModel {
    /// Offer a frame of `len_bytes` at time `now`. Returns the absolute
    /// delivery time (strictly after `now`), or `None` if the model
    /// dropped the frame (finite buffer overflow).
    ///
    /// `rng` is the simulator's global stream; models with their own
    /// per-link stream (netem) must ignore it so that installing them
    /// does not shift unrelated draws.
    fn offer_frame(&mut self, now: Time, len_bytes: usize, rng: &mut StdRng) -> Option<Time>;
}

impl LinkModel for DelayModel {
    fn offer_frame(&mut self, now: Time, _len_bytes: usize, rng: &mut StdRng) -> Option<Time> {
        Some(now + self.sample(rng))
    }
}

impl LinkModel for ssr_netem::NetemLink {
    fn offer_frame(&mut self, now: Time, len_bytes: usize, _rng: &mut StdRng) -> Option<Time> {
        match self.offer(now, len_bytes) {
            // A zero-latency zero-jitter profile could answer `now`; clamp
            // to now + 1 so a message is never delivered at its send
            // instant (the same invariant DelayModel::sample enforces).
            ssr_netem::Verdict::DeliverAt(at) => Some(at.max(now + 1)),
            ssr_netem::Verdict::Dropped => None,
        }
    }
}

/// A directed link `src → dst` carrying at most one state message.
#[derive(Debug, Clone)]
pub struct Link<S> {
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    in_flight: Option<S>,
    pending: bool,
    /// Statistics: completed transmissions (delivered or lost).
    pub transmissions: u64,
    /// Statistics: messages dropped by the loss process.
    pub losses: u64,
    /// Time the current in-flight message was sent (for diagnostics).
    pub sent_at: Time,
}

impl<S: Clone> Link<S> {
    /// A fresh idle link.
    pub fn new(src: usize, dst: usize) -> Self {
        Link { src, dst, in_flight: None, pending: false, transmissions: 0, losses: 0, sent_at: 0 }
    }

    /// True iff a message is currently in transit.
    pub fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// True iff a newer state is waiting for the link to free up.
    pub fn has_pending(&self) -> bool {
        self.pending
    }

    /// Request a transmission of `state` at time `now`.
    ///
    /// Returns `true` if the message was accepted onto the link (the caller
    /// must schedule its arrival); returns `false` if the link was busy, in
    /// which case the send is coalesced into a pending flag and the caller
    /// must re-offer the sender's state on the next [`Link::complete`].
    pub fn try_send(&mut self, state: S, now: Time) -> bool {
        if self.in_flight.is_some() {
            self.pending = true;
            false
        } else {
            self.in_flight = Some(state);
            self.sent_at = now;
            true
        }
    }

    /// Complete the in-flight transmission: returns the carried state and
    /// whether a pending (coalesced) send should now be initiated.
    ///
    /// # Panics
    /// Panics if no message is in flight — arrival events are only scheduled
    /// for accepted sends, so this indicates simulator corruption.
    pub fn complete(&mut self) -> (S, bool) {
        let state = self.in_flight.take().expect("arrival event without in-flight message");
        self.transmissions += 1;
        let had_pending = self.pending;
        self.pending = false;
        (state, had_pending)
    }

    /// Record a loss (called by the simulator when the delivered message is
    /// dropped by the loss process).
    pub fn record_loss(&mut self) {
        self.losses += 1;
    }

    /// The message currently in flight, if any (checkpoint serialization).
    pub fn in_flight(&self) -> Option<&S> {
        self.in_flight.as_ref()
    }

    /// Rebuild a link from checkpointed state, private flags included.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        src: usize,
        dst: usize,
        in_flight: Option<S>,
        pending: bool,
        transmissions: u64,
        losses: u64,
        sent_at: Time,
    ) -> Self {
        Link { src, dst, in_flight, pending, transmissions, losses, sent_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_accepts_send() {
        let mut l: Link<u32> = Link::new(0, 1);
        assert!(!l.is_busy());
        assert!(l.try_send(42, 10));
        assert!(l.is_busy());
        assert_eq!(l.sent_at, 10);
    }

    #[test]
    fn busy_link_coalesces() {
        let mut l: Link<u32> = Link::new(0, 1);
        assert!(l.try_send(1, 0));
        assert!(!l.try_send(2, 1));
        assert!(!l.try_send(3, 2));
        assert!(l.has_pending());
        let (delivered, pending) = l.complete();
        assert_eq!(delivered, 1);
        assert!(pending, "coalesced send must be re-offered");
        assert!(!l.is_busy());
        assert!(!l.has_pending());
    }

    #[test]
    fn complete_without_pending() {
        let mut l: Link<u32> = Link::new(0, 1);
        l.try_send(7, 0);
        let (delivered, pending) = l.complete();
        assert_eq!(delivered, 7);
        assert!(!pending);
        assert_eq!(l.transmissions, 1);
    }

    #[test]
    #[should_panic(expected = "arrival event without in-flight message")]
    fn complete_on_idle_link_panics() {
        let mut l: Link<u32> = Link::new(0, 1);
        l.complete();
    }

    #[test]
    fn loss_counter() {
        let mut l: Link<u32> = Link::new(0, 1);
        l.try_send(7, 0);
        l.complete();
        l.record_loss();
        assert_eq!(l.losses, 1);
        assert_eq!(l.transmissions, 1);
    }
}
