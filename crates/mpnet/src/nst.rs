//! NST — a *neighbourhood-synchronized transform*, the heavier alternative
//! to CST that the paper's related work points at (Mizuno–Kakugawa [16],
//! Huang–Wuu–Tsai [7] are transforms of this family): before executing a
//! guarded command, a node acquires **move grants** from both neighbours via
//! a Ricart–Agrawala-style exchange with index priority; each grant carries
//! the granter's *current state*, and a granter does not move until it sees
//! the requester's outcome. Holding both grants therefore gives the mover a
//! fresh, frozen neighbourhood — composite atomicity is emulated *exactly*,
//! at the price of a request/grant round trip of latency before every move
//! (measured: about half the circulation throughput of CST's eager gossip).
//!
//! The `exp_transforms` experiment uses this module to quantify the trade
//! the paper's design makes: SSRmin + cheap CST achieves what a plain ring +
//! expensive NST still cannot (an always-present token), because the model
//! gap is in the *observation* of tokens, not in execution atomicity.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ssr_core::{Config, RingAlgorithm};

use crate::event::{DelayModel, Time};
use crate::observe::{Sample, Timeline};

/// NST parameters.
#[derive(Debug, Clone, Copy)]
pub struct NstConfig {
    /// RNG seed (deterministic runs).
    pub seed: u64,
    /// Link delay model (FIFO per directed link is enforced).
    pub delay: DelayModel,
    /// Per-message loss probability.
    pub loss: f64,
    /// Periodic state-gossip interval (cache repair, like CST's timer).
    pub timer_interval: Time,
    /// Re-request interval for a node stuck waiting for grants, and the
    /// basis of the grant timeout (4×) that heals lost releases.
    pub request_timeout: Time,
}

impl Default for NstConfig {
    fn default() -> Self {
        NstConfig {
            seed: 0,
            delay: DelayModel::Fixed(5),
            loss: 0.0,
            timer_interval: 50,
            request_timeout: 60,
        }
    }
}

/// Message vocabulary of the transform.
#[derive(Debug, Clone, PartialEq)]
enum Msg<S> {
    /// Plain state gossip (cache repair).
    State(S),
    /// Ask the receiver for a move grant.
    Req,
    /// Grant a move; carries the granter's current state (the freshness
    /// that makes the emulation exact).
    Grant(S),
    /// Explicit release, sent after every move (following the State that
    /// carries the new value — FIFO delivers them in order) and after an
    /// aborted move.
    Release,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Arrival { link: usize, msg_seq: u64 },
    Timer { node: usize },
}

/// Message statistics per type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NstStats {
    /// State messages delivered.
    pub state_msgs: u64,
    /// Requests delivered.
    pub req_msgs: u64,
    /// Grants delivered.
    pub grant_msgs: u64,
    /// Releases delivered.
    pub release_msgs: u64,
    /// Messages lost.
    pub losses: u64,
    /// Guarded commands executed.
    pub moves: u64,
    /// Moves whose grant-carried view disagreed with the actual neighbour
    /// states at execution instant — 0 means the emulation was exact.
    pub stale_moves: u64,
    /// Requests that were re-sent after a timeout.
    pub re_requests: u64,
}

#[derive(Debug, Clone)]
struct NodeSt<S> {
    own: S,
    cache_pred: S,
    cache_succ: S,
    /// Requesting since (None = idle).
    requesting_since: Option<Time>,
    /// Grants received from pred/succ (carrying their states).
    grant_pred: Option<S>,
    grant_succ: Option<S>,
    /// Outstanding grants we issued: (neighbour, when).
    granted_to: Vec<(usize, Time)>,
    /// Requests we deferred because we hold priority.
    deferred: Vec<usize>,
}

/// The NST simulator. Mirrors [`crate::CstSim`]'s observation interface
/// (timeline of locally-evaluated token samples) so the two transforms can
/// be compared head to head.
///
/// ```
/// use ssr_core::{RingParams, SsToken};
/// use ssr_mpnet::{NstConfig, NstSim};
/// let ring = SsToken::new(RingParams::new(5, 7).unwrap());
/// let mut sim = NstSim::new(ring, ring.uniform_config(0), NstConfig::default()).unwrap();
/// sim.run_until(20_000);
/// assert_eq!(sim.stats().stale_moves, 0); // exact atomicity emulation
/// ```
#[derive(Debug)]
pub struct NstSim<A: RingAlgorithm> {
    algo: A,
    cfg: NstConfig,
    nodes: Vec<NodeSt<A::State>>,
    /// In-flight messages per directed link (`2i`, `2i+1` as in CstSim).
    in_flight: Vec<Vec<(u64, Msg<A::State>)>>,
    /// Last scheduled arrival time per link — enforces FIFO delivery.
    link_clock: Vec<Time>,
    heap: BinaryHeap<Reverse<(Time, u64, usize)>>, // (time, seq, link|node tag)
    heap_kind: Vec<Ev>,
    seq: u64,
    now: Time,
    rng: StdRng,
    timeline: Timeline,
    stats: NstStats,
}

impl<A: RingAlgorithm> NstSim<A> {
    /// Build with coherent caches from `initial`.
    pub fn new(algo: A, initial: Config<A::State>, cfg: NstConfig) -> ssr_core::Result<Self> {
        algo.validate_config(&initial)?;
        let n = algo.n();
        let nodes = (0..n)
            .map(|i| {
                let pred = if i == 0 { n - 1 } else { i - 1 };
                let succ = if i + 1 == n { 0 } else { i + 1 };
                NodeSt {
                    own: initial[i].clone(),
                    cache_pred: initial[pred].clone(),
                    cache_succ: initial[succ].clone(),
                    requesting_since: None,
                    grant_pred: None,
                    grant_succ: None,
                    granted_to: Vec::new(),
                    deferred: Vec::new(),
                }
            })
            .collect();
        let rng = StdRng::seed_from_u64(cfg.seed);
        let mut sim = NstSim {
            algo,
            cfg,
            nodes,
            in_flight: vec![Vec::new(); 2 * n],
            link_clock: vec![0; 2 * n],
            heap: BinaryHeap::new(),
            heap_kind: Vec::new(),
            seq: 0,
            now: 0,
            rng,
            timeline: Timeline::new(),
            stats: NstStats::default(),
        };
        for i in 0..n {
            let first = sim.rng.random_range(1..=cfg.timer_interval.max(1));
            sim.push_event(first, Ev::Timer { node: i });
        }
        sim.record_sample();
        Ok(sim)
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Ground-truth configuration.
    pub fn ground_config(&self) -> Config<A::State> {
        self.nodes.iter().map(|nd| nd.own.clone()).collect()
    }

    /// Statistics.
    pub fn stats(&self) -> NstStats {
        self.stats
    }

    /// The token timeline (same shape as the CST simulator's).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Run until `t_end`.
    pub fn run_until(&mut self, t_end: Time) {
        while let Some(&Reverse((at, seq, _))) = self.heap.peek() {
            if at > t_end {
                break;
            }
            self.heap.pop();
            let kind = self.heap_kind[seq as usize];
            self.now = at;
            self.dispatch(kind);
            self.record_sample();
        }
        self.now = self.now.max(t_end);
        self.timeline.close(self.now);
    }

    // ---------------------------------------------------------------

    fn push_event(&mut self, at: Time, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap_kind.push(ev);
        self.heap.push(Reverse((at, seq, 0)));
    }

    fn link_of(&self, src: usize, dst: usize) -> usize {
        let n = self.algo.n();
        let succ = if src + 1 == n { 0 } else { src + 1 };
        if dst == succ {
            2 * src
        } else {
            2 * src + 1
        }
    }

    fn send(&mut self, src: usize, dst: usize, msg: Msg<A::State>) {
        let link = self.link_of(src, dst);
        let delay = self.cfg.delay.sample(&mut self.rng);
        // FIFO per link: never schedule before an earlier message.
        let at = (self.now + delay).max(self.link_clock[link] + 1);
        self.link_clock[link] = at;
        let msg_seq = self.seq;
        self.in_flight[link].push((msg_seq, msg));
        let seq = self.seq;
        self.seq += 1;
        self.heap_kind.push(Ev::Arrival { link, msg_seq });
        self.heap.push(Reverse((at, seq, 0)));
    }

    fn neighbours(&self, i: usize) -> (usize, usize) {
        let n = self.algo.n();
        (if i == 0 { n - 1 } else { i - 1 }, if i + 1 == n { 0 } else { i + 1 })
    }

    fn enabled_on_cache(&self, i: usize) -> bool {
        let nd = &self.nodes[i];
        self.algo.enabled_rule(i, &nd.own, &nd.cache_pred, &nd.cache_succ).is_some()
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Timer { node } => {
                self.on_timer(node);
                let next = self.now + self.cfg.timer_interval.max(1);
                self.push_event(next, Ev::Timer { node });
            }
            Ev::Arrival { link, msg_seq } => self.on_arrival(link, msg_seq),
        }
    }

    fn on_timer(&mut self, i: usize) {
        // Periodic state gossip (cache repair).
        let (pred, succ) = self.neighbours(i);
        let own = self.nodes[i].own.clone();
        self.send(i, pred, Msg::State(own.clone()));
        self.send(i, succ, Msg::State(own));

        // Heal stuck grants we issued (lost release / dead requester).
        let grant_timeout = self.cfg.request_timeout * 4;
        let now = self.now;
        let before = self.nodes[i].granted_to.len();
        self.nodes[i].granted_to.retain(|&(_, at)| now.saturating_sub(at) < grant_timeout);
        if self.nodes[i].granted_to.len() != before {
            self.try_execute(i);
        }

        // Restart a stalled handshake: drop any held grants (their
        // snapshots may be about to expire at the granter — the granter's
        // purge horizon is 4× this timeout, so the requester always discards
        // a grant strictly before its issuer forgets it) and re-request.
        if let Some(since) = self.nodes[i].requesting_since {
            if now.saturating_sub(since) >= self.cfg.request_timeout {
                self.stats.re_requests += 1;
                self.nodes[i].requesting_since = Some(now);
                self.nodes[i].grant_pred = None;
                self.nodes[i].grant_succ = None;
                self.send(i, pred, Msg::Req);
                self.send(i, succ, Msg::Req);
            }
        }
        self.maybe_start_request(i);
    }

    /// Begin the grant handshake if we are enabled, idle and unencumbered.
    fn maybe_start_request(&mut self, i: usize) {
        if self.nodes[i].requesting_since.is_some() || !self.nodes[i].granted_to.is_empty() {
            return;
        }
        if !self.enabled_on_cache(i) {
            return;
        }
        let (pred, succ) = self.neighbours(i);
        self.nodes[i].requesting_since = Some(self.now);
        self.nodes[i].grant_pred = None;
        self.nodes[i].grant_succ = None;
        self.send(i, pred, Msg::Req);
        self.send(i, succ, Msg::Req);
    }

    fn on_arrival(&mut self, link: usize, msg_seq: u64) {
        let pos = self.in_flight[link]
            .iter()
            .position(|(s, _)| *s == msg_seq)
            .expect("in-flight message present");
        let (_, msg) = self.in_flight[link].swap_remove(pos);
        let (src, dst) = {
            let n = self.algo.n();
            let src = link / 2;
            let dst = if link.is_multiple_of(2) {
                if src + 1 == n {
                    0
                } else {
                    src + 1
                }
            } else if src == 0 {
                n - 1
            } else {
                src - 1
            };
            (src, dst)
        };
        if self.cfg.loss > 0.0 && self.rng.random_bool(self.cfg.loss) {
            self.stats.losses += 1;
            return;
        }
        match msg {
            Msg::State(s) => {
                self.stats.state_msgs += 1;
                self.update_cache(dst, src, s.clone());
                // If we hold a grant from `src`, refresh its snapshot: `src`
                // has moved since granting, and this State is its release,
                // so the new value is what a frozen read would now return.
                let (pred, succ) = self.neighbours(dst);
                if src == pred {
                    if let Some(g) = self.nodes[dst].grant_pred.as_mut() {
                        *g = s.clone();
                    }
                }
                if src == succ {
                    if let Some(g) = self.nodes[dst].grant_succ.as_mut() {
                        *g = s;
                    }
                }
                self.maybe_start_request(dst);
            }
            Msg::Req => {
                self.stats.req_msgs += 1;
                self.on_request(dst, src);
            }
            Msg::Grant(s) => {
                self.stats.grant_msgs += 1;
                self.on_grant(dst, src, s);
            }
            Msg::Release => {
                self.stats.release_msgs += 1;
                self.nodes[dst].granted_to.retain(|&(to, _)| to != src);
                self.serve_deferred(dst);
                self.try_execute(dst);
                self.maybe_start_request(dst);
            }
        }
    }

    fn update_cache(&mut self, i: usize, from: usize, s: A::State) {
        let (pred, succ) = self.neighbours(i);
        if from == pred {
            self.nodes[i].cache_pred = s;
        } else if from == succ {
            self.nodes[i].cache_succ = s;
        }
    }

    fn on_request(&mut self, me: usize, from: usize) {
        // Priority: while requesting, defer lower-priority (higher-index)
        // requesters; grant higher-priority (lower-index) ones.
        let i_am_requesting = self.nodes[me].requesting_since.is_some();
        if i_am_requesting && me < from {
            if !self.nodes[me].deferred.contains(&from) {
                self.nodes[me].deferred.push(from);
            }
            return;
        }
        // Grant (idempotent re-grant if already granted to `from`).
        if !self.nodes[me].granted_to.iter().any(|&(to, _)| to == from) {
            self.nodes[me].granted_to.push((from, self.now));
        }
        let own = self.nodes[me].own.clone();
        self.send(me, from, Msg::Grant(own));
    }

    fn on_grant(&mut self, me: usize, from: usize, state: A::State) {
        if self.nodes[me].requesting_since.is_none() {
            // Stale grant; treat as gossip.
            self.update_cache(me, from, state);
            return;
        }
        let (pred, succ) = self.neighbours(me);
        // The grant carries a fresh state — refresh the cache with it too.
        self.update_cache(me, from, state.clone());
        if from == pred {
            self.nodes[me].grant_pred = Some(state);
        } else if from == succ {
            self.nodes[me].grant_succ = Some(state);
        }
        self.try_execute(me);
    }

    /// Execute iff we hold both grants AND have no outstanding grant of our
    /// own: a neighbour we granted (necessarily a lower-index, higher-
    /// priority requester) may still move, so acting before its release
    /// would read a stale snapshot. Wait-chains always point to strictly
    /// lower indices, so this discipline cannot deadlock.
    fn try_execute(&mut self, me: usize) {
        if self.nodes[me].requesting_since.is_some()
            && self.nodes[me].grant_pred.is_some()
            && self.nodes[me].grant_succ.is_some()
            && self.nodes[me].granted_to.is_empty()
        {
            self.execute_locked(me);
        }
    }

    /// Both grants held: the neighbourhood is frozen and fresh — act.
    fn execute_locked(&mut self, me: usize) {
        let (pred, succ) = self.neighbours(me);
        let gp = self.nodes[me].grant_pred.take().expect("pred grant");
        let gs = self.nodes[me].grant_succ.take().expect("succ grant");
        self.nodes[me].requesting_since = None;

        // Exactness check: the grant-carried view must equal ground truth.
        // Loss-free this never fires (see the nst_properties suite); under
        // loss, grant-timeout races can produce rare stale moves, which the
        // statistic surfaces for the experiments.
        if gp != self.nodes[pred].own || gs != self.nodes[succ].own {
            self.stats.stale_moves += 1;
        }

        let own = self.nodes[me].own.clone();
        if let Some(rule) = self.algo.enabled_rule(me, &own, &gp, &gs) {
            let next = self.algo.execute(me, rule, &own, &gp, &gs);
            self.nodes[me].own = next.clone();
            self.stats.moves += 1;
            // Publish the new state, then release; per-link FIFO guarantees
            // the granter refreshes its cache before it unfreezes.
            self.send(me, pred, Msg::State(next.clone()));
            self.send(me, succ, Msg::State(next));
            self.send(me, pred, Msg::Release);
            self.send(me, succ, Msg::Release);
        } else {
            // Fresh view shows we are disabled: abort and release.
            self.send(me, pred, Msg::Release);
            self.send(me, succ, Msg::Release);
        }
        self.serve_deferred(me);
    }

    fn serve_deferred(&mut self, me: usize) {
        if self.nodes[me].requesting_since.is_some() {
            return; // still competing; deferred stay deferred
        }
        let pending = std::mem::take(&mut self.nodes[me].deferred);
        for from in pending {
            self.on_request(me, from);
        }
    }

    fn record_sample(&mut self) {
        let n = self.algo.n();
        let mut privileged = 0usize;
        let mut tokens_total = 0usize;
        let mut mask = 0u64;
        for i in 0..n {
            let nd = &self.nodes[i];
            let t = self.algo.tokens_at(i, &nd.own, &nd.cache_pred, &nd.cache_succ);
            if t.any() {
                privileged += 1;
                if i < 64 {
                    mask |= 1 << i;
                }
            }
            tokens_total += t.count() as usize;
        }
        let legitimate = self.algo.is_legitimate(&self.ground_config());
        let coherent = (0..n).all(|i| {
            let (pred, succ) = self.neighbours(i);
            self.nodes[i].cache_pred == self.nodes[pred].own
                && self.nodes[i].cache_succ == self.nodes[succ].own
        });
        self.timeline.push(Sample {
            at: self.now,
            privileged,
            mask,
            tokens_total,
            coherent,
            legitimate,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::{RingParams, SsToken, SsrMin};

    fn params(n: usize, k: u32) -> RingParams {
        RingParams::new(n, k).unwrap()
    }

    #[test]
    fn sstoken_under_nst_circulates_with_exact_views() {
        let p = params(5, 7);
        let a = SsToken::new(p);
        let mut sim = NstSim::new(a, a.uniform_config(0), NstConfig::default()).unwrap();
        sim.run_until(60_000);
        let st = sim.stats();
        assert!(st.moves > 50, "the token must circulate: {st:?}");
        assert_eq!(st.stale_moves, 0, "loss-free NST must be exact: {st:?}");
        // The ground execution is a legal central-daemon execution, so the
        // final configuration must be legitimate (closure from uniform).
        assert!(a.is_legitimate(&sim.ground_config()));
    }

    #[test]
    fn sstoken_under_nst_still_has_zero_token_instants() {
        // Execution atomicity does NOT fix the observational model gap.
        let p = params(5, 7);
        let a = SsToken::new(p);
        let mut sim = NstSim::new(a, a.uniform_config(0), NstConfig::default()).unwrap();
        sim.run_until(60_000);
        let s = sim.timeline().summary(0).unwrap();
        assert!(s.zero_privileged_time > 0, "{s:?}");
        assert_eq!(s.min_privileged, 0);
    }

    #[test]
    fn ssrmin_under_nst_keeps_tokens() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let mut sim = NstSim::new(a, a.legitimate_anchor(0), NstConfig::default()).unwrap();
        sim.run_until(60_000);
        let st = sim.stats();
        assert!(st.moves > 50, "{st:?}");
        assert_eq!(st.stale_moves, 0);
        let s = sim.timeline().summary(0).unwrap();
        assert_eq!(s.zero_privileged_time, 0, "{s:?}");
        assert!(s.max_privileged <= 2);
    }

    #[test]
    fn nst_is_deterministic_and_costs_more_messages_than_cst() {
        let p = params(5, 7);
        let a = SsToken::new(p);
        let run = |seed| {
            let cfg = NstConfig { seed, ..NstConfig::default() };
            let mut sim = NstSim::new(a, a.uniform_config(0), cfg).unwrap();
            sim.run_until(30_000);
            (sim.ground_config(), sim.stats())
        };
        assert_eq!(run(5), run(5));
        let (_, st) = run(5);
        // Per move: ≥ 2 Req + 2 Grant + 2 State — message-heavier than
        // CST's gossip (sanity check on the overhead narrative).
        assert!(st.req_msgs + st.grant_msgs >= 2 * st.moves);
    }

    #[test]
    fn nst_survives_message_loss() {
        let p = params(5, 7);
        let a = SsToken::new(p);
        let cfg = NstConfig { seed: 3, loss: 0.2, ..NstConfig::default() };
        let mut sim = NstSim::new(a, a.uniform_config(0), cfg).unwrap();
        sim.run_until(150_000);
        let st = sim.stats();
        assert!(st.losses > 0);
        assert!(st.re_requests > 0, "timeout recovery must engage: {st:?}");
        assert!(st.moves > 30, "circulation must survive loss: {st:?}");
    }

    #[test]
    fn ssrmin_under_nst_converges_from_chaos() {
        let p = params(5, 7);
        let a = SsrMin::new(p);
        let initial: Vec<ssr_core::SsrState> = ["6.1.1", "0.0.1", "3.1.0", "2.1.1", "1.0.0"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let mut sim =
            NstSim::new(a, initial, NstConfig { seed: 8, ..NstConfig::default() }).unwrap();
        sim.run_until(200_000);
        assert!(
            a.is_legitimate(&sim.ground_config()),
            "NST-driven SSRmin must stabilize: {:?}",
            sim.ground_config().iter().map(|s| s.to_string()).collect::<Vec<_>>()
        );
    }
}
