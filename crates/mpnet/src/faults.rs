//! Fault-injection helpers: corrupted node sets for Lemma 9 / Theorem 4
//! experiments, and cache-corruption constructors ("bad incoherence").

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ssr_core::{Config, RingAlgorithm, RingParams, SsrState};

use crate::node::Node;

/// Build CST nodes whose *own* states come from `config` but whose caches
/// are filled with arbitrary (seeded-random) SSRmin states — the "arbitrary
/// cache values" hypothesis of Lemma 9.
pub fn ssr_nodes_with_random_caches(
    params: RingParams,
    config: &[SsrState],
    seed: u64,
) -> Vec<Node<SsrState>> {
    assert_eq!(config.len(), params.n());
    let mut rng = StdRng::seed_from_u64(seed);
    let rand_state = |rng: &mut StdRng| {
        SsrState::new(
            rng.random_range(0..params.k()),
            rng.random_range(0..2u8),
            rng.random_range(0..2u8),
        )
    };
    (0..params.n())
        .map(|i| Node {
            own: config[i],
            cache_pred: rand_state(&mut rng),
            cache_succ: rand_state(&mut rng),
            rules_executed: 0,
            messages_received: 0,
        })
        .collect()
}

/// Build coherent CST nodes from a configuration (caches match reality) —
/// the Theorem 3 starting hypothesis, usable for any ring algorithm.
pub fn coherent_nodes<A: RingAlgorithm>(
    algo: &A,
    config: &Config<A::State>,
) -> Vec<Node<A::State>> {
    let n = algo.n();
    assert_eq!(config.len(), n);
    (0..n)
        .map(|i| {
            let pred = if i == 0 { n - 1 } else { i - 1 };
            let succ = if i + 1 == n { 0 } else { i + 1 };
            Node::coherent(config[i].clone(), config[pred].clone(), config[succ].clone())
        })
        .collect()
}

/// A schedule of random transient faults: `count` events at random times in
/// `[t_lo, t_hi)`, each overwriting a random node with a random state.
/// Returned sorted by time.
pub fn random_fault_schedule(
    params: RingParams,
    count: usize,
    t_lo: u64,
    t_hi: u64,
    seed: u64,
) -> Vec<(u64, usize, SsrState)> {
    assert!(t_lo < t_hi);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<(u64, usize, SsrState)> = (0..count)
        .map(|_| {
            (
                rng.random_range(t_lo..t_hi),
                rng.random_range(0..params.n()),
                SsrState::new(
                    rng.random_range(0..params.k()),
                    rng.random_range(0..2u8),
                    rng.random_range(0..2u8),
                ),
            )
        })
        .collect();
    out.sort_by_key(|&(t, node, _)| (t, node));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::SsrMin;

    #[test]
    fn random_caches_keep_own_states() {
        let p = RingParams::new(5, 7).unwrap();
        let a = SsrMin::new(p);
        let cfg = a.legitimate_anchor(2);
        let nodes = ssr_nodes_with_random_caches(p, &cfg, 8);
        for (i, nd) in nodes.iter().enumerate() {
            assert_eq!(nd.own, cfg[i]);
        }
        // Deterministic per seed.
        let nodes2 = ssr_nodes_with_random_caches(p, &cfg, 8);
        assert_eq!(nodes, nodes2);
    }

    #[test]
    fn coherent_nodes_match_reality() {
        let p = RingParams::new(5, 7).unwrap();
        let a = SsrMin::new(p);
        let cfg = a.legitimate_anchor(2);
        let nodes = coherent_nodes(&a, &cfg);
        for (i, nd) in nodes.iter().enumerate() {
            let pred = if i == 0 { 4 } else { i - 1 };
            let succ = (i + 1) % 5;
            assert!(nd.is_coherent(&cfg[pred], &cfg[succ]));
        }
    }

    #[test]
    fn fault_schedule_sorted_and_in_bounds() {
        let p = RingParams::new(5, 7).unwrap();
        let sched = random_fault_schedule(p, 20, 100, 1_000, 3);
        assert_eq!(sched.len(), 20);
        for w in sched.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for &(t, node, s) in &sched {
            assert!((100..1_000).contains(&t));
            assert!(node < 5);
            assert!(s.x < 7);
        }
    }

    #[test]
    #[should_panic]
    fn fault_schedule_rejects_empty_window() {
        let p = RingParams::new(5, 7).unwrap();
        random_fault_schedule(p, 1, 10, 10, 0);
    }
}
