//! Fault-injection helpers: corrupted node sets for Lemma 9 / Theorem 4
//! experiments, cache-corruption constructors ("bad incoherence"), and the
//! [`FaultSchedule`] — a seeded timeline of *process-level* faults (crash,
//! restart, link partition, heal) shared between the discrete-event
//! simulator and the real-socket cluster supervisor in `ssr-net`. Times are
//! unit-agnostic `u64` offsets: the simulator reads them as ticks, the UDP
//! supervisor as milliseconds.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

use ssr_core::{Config, RingAlgorithm, RingParams, SsrState};

use crate::node::Node;

/// Build CST nodes whose *own* states come from `config` but whose caches
/// are filled with arbitrary (seeded-random) SSRmin states — the "arbitrary
/// cache values" hypothesis of Lemma 9.
pub fn ssr_nodes_with_random_caches(
    params: RingParams,
    config: &[SsrState],
    seed: u64,
) -> Vec<Node<SsrState>> {
    assert_eq!(config.len(), params.n());
    let mut rng = StdRng::seed_from_u64(seed);
    let rand_state = |rng: &mut StdRng| {
        SsrState::new(
            rng.random_range(0..params.k()),
            rng.random_range(0..2u8),
            rng.random_range(0..2u8),
        )
    };
    (0..params.n())
        .map(|i| Node {
            own: config[i],
            cache_pred: rand_state(&mut rng),
            cache_succ: rand_state(&mut rng),
            rules_executed: 0,
            messages_received: 0,
        })
        .collect()
}

/// Build coherent CST nodes from a configuration (caches match reality) —
/// the Theorem 3 starting hypothesis, usable for any ring algorithm.
pub fn coherent_nodes<A: RingAlgorithm>(
    algo: &A,
    config: &Config<A::State>,
) -> Vec<Node<A::State>> {
    let n = algo.n();
    assert_eq!(config.len(), n);
    (0..n)
        .map(|i| {
            let pred = if i == 0 { n - 1 } else { i - 1 };
            let succ = if i + 1 == n { 0 } else { i + 1 };
            Node::coherent(config[i].clone(), config[pred].clone(), config[succ].clone())
        })
        .collect()
}

/// A schedule of random transient faults: `count` events at random times in
/// `[t_lo, t_hi)`, each overwriting a random node with a random state.
/// Returned sorted by time.
pub fn random_fault_schedule(
    params: RingParams,
    count: usize,
    t_lo: u64,
    t_hi: u64,
    seed: u64,
) -> Vec<(u64, usize, SsrState)> {
    assert!(t_lo < t_hi);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<(u64, usize, SsrState)> = (0..count)
        .map(|_| {
            (
                rng.random_range(t_lo..t_hi),
                rng.random_range(0..params.n()),
                SsrState::new(
                    rng.random_range(0..params.k()),
                    rng.random_range(0..2u8),
                    rng.random_range(0..2u8),
                ),
            )
        })
        .collect();
    out.sort_by_key(|&(t, node, _)| (t, node));
    out
}

/// How a crashed node comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartMode {
    /// Restart from an *arbitrary* fresh state (and arbitrary caches) — the
    /// self-stabilization stress case: convergence must restore legitimacy
    /// from whatever the node wakes up with.
    Amnesia,
    /// Restart from the last persisted replica snapshot; a corrupt or
    /// missing snapshot degrades to [`RestartMode::Amnesia`].
    Snapshot,
}

impl fmt::Display for RestartMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestartMode::Amnesia => write!(f, "amnesia"),
            RestartMode::Snapshot => write!(f, "snapshot"),
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill a node's process; it stops participating until restarted.
    Crash {
        /// Ring index of the crashed node.
        node: usize,
        /// How the matching [`FaultKind::Restart`] brings it back.
        restart: RestartMode,
    },
    /// Bring a crashed node back (the supervisor may add exponential
    /// backoff on top of the scheduled time).
    Restart {
        /// Ring index of the node to restart.
        node: usize,
    },
    /// 100% loss on the directed link `from → to` until the matching
    /// [`FaultKind::Heal`]. `to` must be a ring neighbour of `from`.
    Partition {
        /// Sending endpoint of the partitioned link.
        from: usize,
        /// Receiving endpoint of the partitioned link.
        to: usize,
    },
    /// Restore the directed link `from → to`.
    Heal {
        /// Sending endpoint of the healed link.
        from: usize,
        /// Receiving endpoint of the healed link.
        to: usize,
    },
    /// Corrupt the node's persisted snapshot at rest (flips stored bytes),
    /// so a later snapshot restart must detect the damage and degrade to
    /// amnesia instead of loading garbage.
    CorruptSnapshot {
        /// Ring index of the node whose snapshot is damaged.
        node: usize,
    },
    /// Overwrite a *live* replica's state in place — own K-state, `rts`,
    /// `tra` and both caches — with seeded-adversarial values (Hoepman's
    /// worst-case counter gaps). The node keeps running on the poisoned
    /// state; self-stabilization must absorb it.
    CorruptState {
        /// Ring index of the node whose replica is overwritten.
        node: usize,
    },
    /// Freeze the node's rule engine: the thread keeps receiving, caching
    /// and retransmitting (a stuck daemon still ACKs), but never executes a
    /// rule again until a restart — scheduled, or forced by the node's own
    /// convergence watchdog.
    FreezeNode {
        /// Ring index of the frozen node.
        node: usize,
    },
    /// Spray a burst of *stale-generation* wire states impersonating the
    /// node at both its neighbours: validly framed, so the CRC passes and
    /// the generation staleness filter must reject every one.
    Babble {
        /// Ring index of the impersonated node.
        node: usize,
    },
    /// Membership churn: a new node joins the ring at the tail position —
    /// between the current last node and node 0 — via the re-splice
    /// protocol. `node` is the index the joiner takes, which must equal the
    /// ring size at the moment the event fires (a join always extends the
    /// ring at its tail, so the anchor keeps index 0).
    Join {
        /// Ring index the joining node takes (== ring size before the join).
        node: usize,
    },
    /// Membership churn: the node leaves the ring and its two neighbours
    /// re-splice around it. Node 0 (the anchor / bottom machine) can never
    /// leave, and a leave that would shrink the ring below the minimum legal
    /// size is rejected by [`FaultSchedule::validate`]. Later events use the
    /// post-leave indices (everything above `node` shifts down by one).
    Leave {
        /// Ring index of the leaving node (0 < node < current size).
        node: usize,
    },
    /// Recorded (never scheduled): the node's convergence watchdog fired.
    /// With `restart == false` it resynchronised by republishing its state;
    /// with `restart == true` it performed an amnesia self-restart with a
    /// generation bump. Emitted by the runtime so each escalation gets a
    /// recovery row.
    Watchdog {
        /// Ring index of the escalating node.
        node: usize,
        /// False: stage-1 resync. True: stage-2 local self-restart.
        restart: bool,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::Crash { node, restart } => write!(f, "crash node {node} ({restart})"),
            FaultKind::Restart { node } => write!(f, "restart node {node}"),
            FaultKind::Partition { from, to } => write!(f, "partition {from}->{to}"),
            FaultKind::Heal { from, to } => write!(f, "heal {from}->{to}"),
            FaultKind::CorruptSnapshot { node } => write!(f, "corrupt snapshot of node {node}"),
            FaultKind::CorruptState { node } => write!(f, "corrupt state of node {node}"),
            FaultKind::FreezeNode { node } => write!(f, "freeze node {node}"),
            FaultKind::Babble { node } => write!(f, "babble as node {node}"),
            FaultKind::Join { node } => write!(f, "join as node {node}"),
            FaultKind::Leave { node } => write!(f, "leave node {node}"),
            FaultKind::Watchdog { node, restart: false } => {
                write!(f, "watchdog resync node {node}")
            }
            FaultKind::Watchdog { node, restart: true } => {
                write!(f, "watchdog restart node {node}")
            }
        }
    }
}

/// Why a textual fault command failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError(String);

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault: {}", self.0)
    }
}

impl std::error::Error for FaultParseError {}

impl std::str::FromStr for FaultKind {
    type Err = FaultParseError;

    /// Parses the textual fault grammar used by admin tooling
    /// (`ssrmin ctl`, `POST /faults`):
    ///
    /// * `crash <node> [amnesia|snapshot]` — default `amnesia`
    /// * `restart <node>`
    /// * `partition <from> <to>` · `heal <from> <to>`
    /// * `corrupt-snapshot <node>` (alias: `corrupt <node>`)
    /// * `corrupt-state <node>` · `freeze <node>` · `babble <node>`
    /// * `join <node>` · `leave <node>` — membership churn (re-splice)
    ///
    /// [`FaultKind::Watchdog`] is recorded by the runtime, never parsed.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |msg: String| Err(FaultParseError(msg));
        let index = |word: Option<&str>, what: &str| -> Result<usize, FaultParseError> {
            let word = word.ok_or_else(|| FaultParseError(format!("missing {what}")))?;
            word.parse().map_err(|_| FaultParseError(format!("unparseable {what} '{word}'")))
        };
        let mut words = s.split_whitespace();
        let Some(verb) = words.next() else {
            return err("empty command".into());
        };
        let kind = match verb {
            "crash" => {
                let node = index(words.next(), "node")?;
                let restart = match words.next() {
                    None | Some("amnesia") => RestartMode::Amnesia,
                    Some("snapshot") => RestartMode::Snapshot,
                    Some(other) => {
                        return err(format!(
                            "unknown restart mode '{other}' (expected amnesia or snapshot)"
                        ))
                    }
                };
                FaultKind::Crash { node, restart }
            }
            "restart" => FaultKind::Restart { node: index(words.next(), "node")? },
            "partition" => {
                let from = index(words.next(), "from")?;
                let to = index(words.next(), "to")?;
                FaultKind::Partition { from, to }
            }
            "heal" => {
                let from = index(words.next(), "from")?;
                let to = index(words.next(), "to")?;
                FaultKind::Heal { from, to }
            }
            "corrupt-snapshot" | "corrupt" => {
                FaultKind::CorruptSnapshot { node: index(words.next(), "node")? }
            }
            "corrupt-state" => FaultKind::CorruptState { node: index(words.next(), "node")? },
            "freeze" => FaultKind::FreezeNode { node: index(words.next(), "node")? },
            "babble" => FaultKind::Babble { node: index(words.next(), "node")? },
            "join" => FaultKind::Join { node: index(words.next(), "node")? },
            "leave" => FaultKind::Leave { node: index(words.next(), "node")? },
            other => {
                return err(format!(
                    "unknown fault '{other}' (expected crash/restart/partition/heal/\
                     corrupt-snapshot/corrupt-state/freeze/babble/join/leave)"
                ))
            }
        };
        if words.next().is_some() {
            return err(format!("trailing words after '{kind}'"));
        }
        Ok(kind)
    }
}

/// One fault at one time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Time offset from run start (ticks in the simulator, milliseconds in
    /// the UDP cluster supervisor).
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Why a [`FaultSchedule`] is not executable against an `n`-ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultScheduleError(String);

impl fmt::Display for FaultScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault schedule: {}", self.0)
    }
}

impl std::error::Error for FaultScheduleError {}

/// A time-sorted script of process and link faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (a supervised run with no faults).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Build from events in any order; they are sorted by time (stably, so
    /// equal-time events keep their given order).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Append an event, keeping the schedule sorted (builder style).
    pub fn with(mut self, at: u64, kind: FaultKind) -> Self {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, kind });
        self
    }

    /// Schedule a crash at `at` and its restart at `back_at`.
    pub fn crash_restart(self, node: usize, restart: RestartMode, at: u64, back_at: u64) -> Self {
        self.with(at, FaultKind::Crash { node, restart }).with(back_at, FaultKind::Restart { node })
    }

    /// Schedule a partition window `[at, heal_at)` on the directed link
    /// `from → to`.
    pub fn partition_window(self, from: usize, to: usize, at: u64, heal_at: u64) -> Self {
        self.with(at, FaultKind::Partition { from, to }).with(heal_at, FaultKind::Heal { from, to })
    }

    /// Check the schedule is executable on a ring that *starts* at size `n`:
    /// indices in range against the ring size current at each event,
    /// partitions only between ring neighbours, no crash of a node already
    /// down, no restart of a node that is up, no heal of an intact link.
    /// Membership events ([`FaultKind::Join`] / [`FaultKind::Leave`]) are
    /// checked against the running size: a join must extend the tail, a
    /// leave must not remove the anchor (node 0) or shrink the ring below
    /// the minimum legal size, and both require a whole ring at that moment
    /// (no node down, no link cut) because a re-splice needs both
    /// neighbours live and reachable.
    pub fn validate(&self, n: usize) -> Result<(), FaultScheduleError> {
        let err = |msg: String| Err(FaultScheduleError(msg));
        if n == 0 {
            return err("empty ring".into());
        }
        let mut size = n;
        let mut down = vec![false; n];
        let mut cut: Vec<(usize, usize)> = Vec::new();
        for ev in &self.events {
            let neighbours = |a: usize, b: usize| b == (a + 1) % size || b == (a + size - 1) % size;
            match ev.kind {
                FaultKind::Crash { node, .. } => {
                    if node >= size {
                        return err(format!("crash of node {node} on a {size}-ring"));
                    }
                    if down[node] {
                        return err(format!("node {node} crashed twice without a restart"));
                    }
                    down[node] = true;
                }
                FaultKind::Restart { node } => {
                    if node >= size {
                        return err(format!("restart of node {node} on a {size}-ring"));
                    }
                    if !down[node] {
                        return err(format!("restart of node {node}, which is not down"));
                    }
                    down[node] = false;
                }
                FaultKind::Partition { from, to } => {
                    if from >= size || to >= size || !neighbours(from, to) {
                        return err(format!("partition {from}->{to} is not a ring link"));
                    }
                    if cut.contains(&(from, to)) {
                        return err(format!("link {from}->{to} partitioned twice"));
                    }
                    cut.push((from, to));
                }
                FaultKind::Heal { from, to } => {
                    let Some(pos) = cut.iter().position(|&l| l == (from, to)) else {
                        return err(format!("heal of link {from}->{to}, which is not cut"));
                    };
                    cut.swap_remove(pos);
                }
                FaultKind::CorruptSnapshot { node } => {
                    if node >= size {
                        return err(format!("snapshot corruption of node {node} on a {size}-ring"));
                    }
                }
                // The adversarial trio is idempotent on a live node — only
                // the index needs checking. (Corrupting/freezing/babbling a
                // *down* node is a harmless no-op the supervisor skips.)
                FaultKind::CorruptState { node } => {
                    if node >= size {
                        return err(format!("state corruption of node {node} on a {size}-ring"));
                    }
                }
                FaultKind::FreezeNode { node } => {
                    if node >= size {
                        return err(format!("freeze of node {node} on a {size}-ring"));
                    }
                }
                FaultKind::Babble { node } => {
                    if node >= size {
                        return err(format!("babble as node {node} on a {size}-ring"));
                    }
                }
                FaultKind::Join { node } => {
                    if down.iter().any(|&d| d) || !cut.is_empty() {
                        return err(format!(
                            "join as node {node} while the ring is not whole \
                             (a re-splice needs both neighbours up and both links intact)"
                        ));
                    }
                    if node != size {
                        return err(format!(
                            "join as node {node} on a {size}-ring (a join must extend \
                             the tail, so the joiner's index must equal the ring size)"
                        ));
                    }
                    size += 1;
                    down.push(false);
                }
                FaultKind::Leave { node } => {
                    if down.iter().any(|&d| d) || !cut.is_empty() {
                        return err(format!(
                            "leave of node {node} while the ring is not whole \
                             (a re-splice needs both neighbours up and both links intact)"
                        ));
                    }
                    if node == 0 {
                        return err("leave of node 0, the ring anchor (the bottom machine \
                             never leaves)"
                            .into());
                    }
                    if node >= size {
                        return err(format!("leave of node {node} on a {size}-ring"));
                    }
                    if size - 1 < RingParams::MIN_N {
                        return err(format!(
                            "leave of node {node} would splice the ring below \
                             n={}",
                            RingParams::MIN_N
                        ));
                    }
                    size -= 1;
                    down.pop();
                }
                FaultKind::Watchdog { node, .. } => {
                    return err(format!(
                        "watchdog escalation of node {node} is recorded by the runtime, \
                         not scheduled"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Generate a random, valid compound schedule: `plan.crashes`
    /// crash/restart pairs and `plan.partitions` partition/heal windows,
    /// deterministically from `seed`. Two calls with equal arguments yield
    /// identical schedules.
    pub fn random(n: usize, plan: &FaultPlan, seed: u64) -> Self {
        assert!(n > 0, "empty ring");
        assert!(plan.window.0 < plan.window.1, "empty fault window");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = FaultSchedule::new();
        // Track per-node downtime so crash intervals never overlap.
        let mut busy_until = vec![0u64; n];
        for _ in 0..plan.crashes {
            // Bounded retries keep generation total even on tiny windows;
            // skipping a crash is better than an invalid schedule.
            for _attempt in 0..16 {
                let at = rng.random_range(plan.window.0..plan.window.1);
                let node = rng.random_range(0..n);
                let downtime = rng.random_range(plan.downtime.0..=plan.downtime.1.max(1));
                if at <= busy_until[node] {
                    continue;
                }
                let back_at = at.saturating_add(downtime.max(1));
                busy_until[node] = back_at;
                let restart = if rng.random_bool(plan.snapshot_ratio) {
                    RestartMode::Snapshot
                } else {
                    RestartMode::Amnesia
                };
                schedule = schedule.crash_restart(node, restart, at, back_at);
                break;
            }
        }
        // Directed links, cut at most once each per schedule.
        let mut cut_links: Vec<(usize, usize)> = Vec::new();
        for _ in 0..plan.partitions {
            for _attempt in 0..16 {
                let from = rng.random_range(0..n);
                let to = if rng.random_bool(0.5) { (from + 1) % n } else { (from + n - 1) % n };
                let at = rng.random_range(plan.window.0..plan.window.1);
                let len = rng.random_range(plan.partition_len.0..=plan.partition_len.1.max(1));
                if cut_links.contains(&(from, to)) {
                    continue;
                }
                cut_links.push((from, to));
                schedule = schedule.partition_window(from, to, at, at.saturating_add(len.max(1)));
                break;
            }
        }
        // The adversarial trio is idempotent, so any node/time draw is valid.
        type MkFault = fn(usize) -> FaultKind;
        let adversarial: [(usize, MkFault); 3] = [
            (plan.corrupts, |node| FaultKind::CorruptState { node }),
            (plan.freezes, |node| FaultKind::FreezeNode { node }),
            (plan.babbles, |node| FaultKind::Babble { node }),
        ];
        for (count, mk) in adversarial {
            for _ in 0..count {
                let at = rng.random_range(plan.window.0..plan.window.1);
                let node = rng.random_range(0..n);
                schedule = schedule.with(at, mk(node));
            }
        }
        debug_assert!(schedule.validate(n).is_ok(), "random schedule must validate");
        schedule
    }

    /// Generate a seeded Poisson churn schedule for a ring that starts at
    /// size `n`: membership events with exponentially distributed
    /// inter-arrival times at `plan.rate` expected events per 1000 time
    /// units, each event a fair coin flip between a tail join and the leave
    /// of a uniformly random non-anchor node (the flip is forced at the
    /// `plan.min_n` / `plan.max_n` bounds). The same `(n, plan, seed)`
    /// triple yields the identical schedule, so the discrete-event
    /// simulator and the UDP cluster replay one churn model.
    pub fn churn(n: usize, plan: &ChurnPlan, seed: u64) -> Result<Self, FaultScheduleError> {
        plan.validate()?;
        let err = |msg: String| Err(FaultScheduleError(msg));
        if !(plan.min_n..=plan.max_n).contains(&n) {
            return err(format!(
                "starting size {n} outside the churn bounds [{}, {}]",
                plan.min_n, plan.max_n
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = FaultSchedule::new();
        let mut size = n;
        let mut t = plan.window.0 as f64;
        loop {
            // Exponential inter-arrival via inverse CDF; the 53-bit uniform
            // is offset by half an ulp so `ln` never sees zero.
            let u = ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
            t += -u.ln() * 1000.0 / plan.rate;
            if !t.is_finite() || t >= plan.window.1 as f64 {
                break;
            }
            let join = if size >= plan.max_n {
                false
            } else if size <= plan.min_n {
                true
            } else {
                rng.random_bool(0.5)
            };
            let kind = if join {
                let node = size;
                size += 1;
                FaultKind::Join { node }
            } else {
                let node = rng.random_range(1..size);
                size -= 1;
                FaultKind::Leave { node }
            };
            schedule = schedule.with(t as u64, kind);
        }
        debug_assert!(schedule.validate(n).is_ok(), "churn schedule must validate");
        Ok(schedule)
    }
}

/// Knobs of [`FaultSchedule::churn`] — the shared Poisson membership-churn
/// model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnPlan {
    /// Expected membership events per 1000 time units (the Poisson rate).
    pub rate: f64,
    /// Events are generated inside `[window.0, window.1)`.
    pub window: (u64, u64),
    /// The ring never shrinks below this size (and never below the legal
    /// minimum of [`RingParams::MIN_N`]).
    pub min_n: usize,
    /// The ring never grows beyond this size. Keep `max_n < K` so the
    /// Dijkstra guard stays sound (Hoepman: K may equal N but not be less).
    pub max_n: usize,
}

impl Default for ChurnPlan {
    /// One expected event per second (millisecond units) inside a 1-second
    /// window, ring size kept within [3, 8].
    fn default() -> Self {
        ChurnPlan { rate: 1.0, window: (150, 1_150), min_n: RingParams::MIN_N, max_n: 8 }
    }
}

impl ChurnPlan {
    /// Check the plan can generate a valid schedule; typed error if not.
    pub fn validate(&self) -> Result<(), FaultScheduleError> {
        let err = |msg: String| Err(FaultScheduleError(msg));
        if !(self.rate.is_finite() && self.rate > 0.0) {
            return err(format!("churn rate {} must be positive and finite", self.rate));
        }
        if self.window.0 >= self.window.1 {
            return err(format!("empty churn window [{}, {})", self.window.0, self.window.1));
        }
        if self.min_n < RingParams::MIN_N {
            return err(format!(
                "churn floor min_n={} below the minimum legal ring size {}",
                self.min_n,
                RingParams::MIN_N
            ));
        }
        if self.max_n < self.min_n {
            return err(format!("churn bounds min_n={} > max_n={}", self.min_n, self.max_n));
        }
        Ok(())
    }
}

/// Knobs of [`FaultSchedule::random`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Number of crash/restart pairs to attempt.
    pub crashes: usize,
    /// Number of partition/heal windows to attempt.
    pub partitions: usize,
    /// Fault injection times are drawn uniformly from `[window.0, window.1)`.
    pub window: (u64, u64),
    /// Crash downtime drawn uniformly from `[downtime.0, downtime.1]`.
    pub downtime: (u64, u64),
    /// Partition window length drawn uniformly from
    /// `[partition_len.0, partition_len.1]`.
    pub partition_len: (u64, u64),
    /// Fraction of crashes that restart from a snapshot (the rest restart
    /// with amnesia).
    pub snapshot_ratio: f64,
    /// Number of live [`FaultKind::CorruptState`] injections.
    pub corrupts: usize,
    /// Number of [`FaultKind::FreezeNode`] injections.
    pub freezes: usize,
    /// Number of [`FaultKind::Babble`] bursts.
    pub babbles: usize,
}

impl Default for FaultPlan {
    /// Two crashes and one partition inside a 1-second (millisecond-unit)
    /// window, 40–120 time-unit downtimes, half the restarts from snapshot,
    /// no adversarial injections.
    fn default() -> Self {
        FaultPlan {
            crashes: 2,
            partitions: 1,
            window: (150, 650),
            downtime: (40, 120),
            partition_len: (60, 150),
            snapshot_ratio: 0.5,
            corrupts: 0,
            freezes: 0,
            babbles: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::SsrMin;

    #[test]
    fn random_caches_keep_own_states() {
        let p = RingParams::new(5, 7).unwrap();
        let a = SsrMin::new(p);
        let cfg = a.legitimate_anchor(2);
        let nodes = ssr_nodes_with_random_caches(p, &cfg, 8);
        for (i, nd) in nodes.iter().enumerate() {
            assert_eq!(nd.own, cfg[i]);
        }
        // Deterministic per seed.
        let nodes2 = ssr_nodes_with_random_caches(p, &cfg, 8);
        assert_eq!(nodes, nodes2);
    }

    #[test]
    fn coherent_nodes_match_reality() {
        let p = RingParams::new(5, 7).unwrap();
        let a = SsrMin::new(p);
        let cfg = a.legitimate_anchor(2);
        let nodes = coherent_nodes(&a, &cfg);
        for (i, nd) in nodes.iter().enumerate() {
            let pred = if i == 0 { 4 } else { i - 1 };
            let succ = (i + 1) % 5;
            assert!(nd.is_coherent(&cfg[pred], &cfg[succ]));
        }
    }

    #[test]
    fn fault_schedule_sorted_and_in_bounds() {
        let p = RingParams::new(5, 7).unwrap();
        let sched = random_fault_schedule(p, 20, 100, 1_000, 3);
        assert_eq!(sched.len(), 20);
        for w in sched.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for &(t, node, s) in &sched {
            assert!((100..1_000).contains(&t));
            assert!(node < 5);
            assert!(s.x < 7);
        }
    }

    #[test]
    #[should_panic]
    fn fault_schedule_rejects_empty_window() {
        let p = RingParams::new(5, 7).unwrap();
        random_fault_schedule(p, 1, 10, 10, 0);
    }

    #[test]
    fn builder_keeps_events_sorted_and_valid() {
        let s = FaultSchedule::new()
            .partition_window(1, 2, 300, 450)
            .crash_restart(3, RestartMode::Amnesia, 100, 200)
            .with(50, FaultKind::CorruptSnapshot { node: 3 });
        let times: Vec<u64> = s.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![50, 100, 200, 300, 450]);
        s.validate(5).unwrap();
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn validate_rejects_inconsistent_scripts() {
        // Crash of a node already down.
        let s = FaultSchedule::new()
            .with(10, FaultKind::Crash { node: 1, restart: RestartMode::Amnesia })
            .with(20, FaultKind::Crash { node: 1, restart: RestartMode::Amnesia });
        assert!(s.validate(5).is_err());
        // Restart of a node that is up.
        let s = FaultSchedule::new().with(10, FaultKind::Restart { node: 0 });
        assert!(s.validate(5).is_err());
        // Partition between non-neighbours.
        let s = FaultSchedule::new().with(10, FaultKind::Partition { from: 0, to: 2 });
        assert!(s.validate(5).is_err());
        // Heal of an intact link.
        let s = FaultSchedule::new().with(10, FaultKind::Heal { from: 0, to: 1 });
        assert!(s.validate(5).is_err());
        // Out-of-range index.
        let s = FaultSchedule::new().with(10, FaultKind::CorruptSnapshot { node: 9 });
        assert!(s.validate(5).is_err());
        let e = s.validate(5).unwrap_err();
        assert!(e.to_string().contains("invalid fault schedule"), "{e}");
        // Out-of-range adversarial injections.
        for kind in [
            FaultKind::CorruptState { node: 9 },
            FaultKind::FreezeNode { node: 9 },
            FaultKind::Babble { node: 9 },
        ] {
            assert!(FaultSchedule::new().with(10, kind).validate(5).is_err(), "{kind}");
        }
        // Watchdog escalations are recorded by the runtime, never scheduled.
        let s = FaultSchedule::new().with(10, FaultKind::Watchdog { node: 1, restart: true });
        let e = s.validate(5).unwrap_err();
        assert!(e.to_string().contains("not scheduled"), "{e}");
    }

    #[test]
    fn adversarial_kinds_validate_on_live_nodes() {
        let s = FaultSchedule::new()
            .with(100, FaultKind::CorruptState { node: 2 })
            .with(200, FaultKind::FreezeNode { node: 2 })
            .with(300, FaultKind::Babble { node: 4 })
            .with(400, FaultKind::CorruptState { node: 2 }); // idempotent: twice is fine
        s.validate(5).unwrap();
    }

    #[test]
    fn fault_kind_parses_its_admin_grammar() {
        let parse = |s: &str| s.parse::<FaultKind>();
        assert_eq!(
            parse("crash 2"),
            Ok(FaultKind::Crash { node: 2, restart: RestartMode::Amnesia })
        );
        assert_eq!(
            parse("crash 2 snapshot"),
            Ok(FaultKind::Crash { node: 2, restart: RestartMode::Snapshot })
        );
        assert_eq!(parse(" restart 0 "), Ok(FaultKind::Restart { node: 0 }));
        assert_eq!(parse("partition 0 1"), Ok(FaultKind::Partition { from: 0, to: 1 }));
        assert_eq!(parse("heal 1 0"), Ok(FaultKind::Heal { from: 1, to: 0 }));
        assert_eq!(parse("corrupt-snapshot 3"), Ok(FaultKind::CorruptSnapshot { node: 3 }));
        assert_eq!(parse("corrupt 3"), Ok(FaultKind::CorruptSnapshot { node: 3 }));
        assert_eq!(parse("corrupt-state 3"), Ok(FaultKind::CorruptState { node: 3 }));
        assert_eq!(parse("freeze 1"), Ok(FaultKind::FreezeNode { node: 1 }));
        assert_eq!(parse("babble 4"), Ok(FaultKind::Babble { node: 4 }));
        assert!(parse("corrupt-state").is_err());
        assert!(parse("freeze x").is_err());
        assert!(parse("babble 1 loud").is_err());
        assert!(parse("").is_err());
        assert!(parse("crash").is_err());
        assert!(parse("crash x").is_err());
        assert!(parse("crash 1 fire").is_err());
        assert!(parse("restart 1 now").is_err());
        assert!(parse("meteor 1").is_err());
        let e = parse("meteor 1").unwrap_err();
        assert!(e.to_string().contains("invalid fault"), "{e}");
    }

    #[test]
    fn random_schedules_are_deterministic_and_valid() {
        let plan = FaultPlan {
            crashes: 4,
            partitions: 2,
            corrupts: 2,
            freezes: 1,
            babbles: 1,
            ..FaultPlan::default()
        };
        let a = FaultSchedule::random(6, &plan, 42);
        let b = FaultSchedule::random(6, &plan, 42);
        assert_eq!(a, b, "equal seeds must yield identical schedules");
        a.validate(6).unwrap();
        assert_ne!(a, FaultSchedule::random(6, &plan, 43), "different seed, different schedule");
        // The plan was actually honoured (both fault families present).
        let has = |f: fn(&FaultKind) -> bool| a.events().iter().any(|e| f(&e.kind));
        assert!(has(|k| matches!(k, FaultKind::Crash { .. })));
        assert!(has(|k| matches!(k, FaultKind::Restart { .. })));
        assert!(has(|k| matches!(k, FaultKind::Partition { .. })));
        assert!(has(|k| matches!(k, FaultKind::Heal { .. })));
        assert!(has(|k| matches!(k, FaultKind::CorruptState { .. })));
        assert!(has(|k| matches!(k, FaultKind::FreezeNode { .. })));
        assert!(has(|k| matches!(k, FaultKind::Babble { .. })));
    }

    #[test]
    fn membership_grammar_parses() {
        assert_eq!("join 5".parse::<FaultKind>(), Ok(FaultKind::Join { node: 5 }));
        assert_eq!("leave 2".parse::<FaultKind>(), Ok(FaultKind::Leave { node: 2 }));
        assert!("join".parse::<FaultKind>().is_err());
        assert!("leave 2 now".parse::<FaultKind>().is_err());
        assert_eq!(FaultKind::Join { node: 5 }.to_string(), "join as node 5");
        assert_eq!(FaultKind::Leave { node: 2 }.to_string(), "leave node 2");
    }

    #[test]
    fn validate_tracks_the_running_ring_size() {
        // A join raises the size, so later events may use the new tail index.
        let s = FaultSchedule::new()
            .with(100, FaultKind::Join { node: 5 })
            .with(200, FaultKind::CorruptState { node: 5 })
            .with(300, FaultKind::Leave { node: 5 })
            .with(400, FaultKind::Leave { node: 4 })
            .with(500, FaultKind::Leave { node: 3 });
        s.validate(5).unwrap();
        // ... but the shrunken ring rejects indices the 6-ring accepted.
        let s = s.with(600, FaultKind::Babble { node: 4 });
        let e = s.validate(5).unwrap_err();
        assert!(e.to_string().contains("3-ring"), "{e}");
    }

    #[test]
    fn validate_rejects_illegal_membership_events() {
        // Join must extend the tail.
        let s = FaultSchedule::new().with(10, FaultKind::Join { node: 3 });
        assert!(s.validate(5).unwrap_err().to_string().contains("extend the tail"));
        // The anchor never leaves.
        let s = FaultSchedule::new().with(10, FaultKind::Leave { node: 0 });
        assert!(s.validate(5).unwrap_err().to_string().contains("anchor"));
        // No splicing below the minimum legal ring size.
        let s = FaultSchedule::new().with(10, FaultKind::Leave { node: 1 });
        assert!(s.validate(3).unwrap_err().to_string().contains("below"));
        // Membership events need a whole ring: no node down ...
        let s = FaultSchedule::new()
            .with(10, FaultKind::Crash { node: 2, restart: RestartMode::Amnesia })
            .with(20, FaultKind::Join { node: 5 });
        assert!(s.validate(5).unwrap_err().to_string().contains("not whole"));
        // ... and no link cut.
        let s = FaultSchedule::new()
            .with(10, FaultKind::Partition { from: 0, to: 1 })
            .with(20, FaultKind::Leave { node: 2 });
        assert!(s.validate(5).unwrap_err().to_string().contains("not whole"));
    }

    #[test]
    fn churn_schedules_are_deterministic_bounded_and_valid() {
        let plan = ChurnPlan { rate: 20.0, window: (100, 2_100), min_n: 4, max_n: 9 };
        let a = FaultSchedule::churn(5, &plan, 7).unwrap();
        let b = FaultSchedule::churn(5, &plan, 7).unwrap();
        assert_eq!(a, b, "equal seeds must yield identical churn");
        assert_ne!(a, FaultSchedule::churn(5, &plan, 8).unwrap());
        a.validate(5).unwrap();
        assert!(!a.is_empty(), "rate 20/1000 over 2000 units should produce events");
        // Replay the size and check the plan bounds were honoured.
        let mut size = 5usize;
        for ev in a.events() {
            assert!((plan.window.0..plan.window.1).contains(&ev.at));
            match ev.kind {
                FaultKind::Join { node } => {
                    assert_eq!(node, size);
                    size += 1;
                }
                FaultKind::Leave { node } => {
                    assert!(node > 0 && node < size);
                    size -= 1;
                }
                other => panic!("churn produced a non-membership event {other}"),
            }
            assert!((plan.min_n..=plan.max_n).contains(&size));
        }
    }

    #[test]
    fn churn_plans_reject_nonsense() {
        let bad = |plan: ChurnPlan| FaultSchedule::churn(5, &plan, 0).unwrap_err().to_string();
        assert!(bad(ChurnPlan { rate: 0.0, ..ChurnPlan::default() }).contains("rate"));
        assert!(bad(ChurnPlan { rate: f64::NAN, ..ChurnPlan::default() }).contains("rate"));
        assert!(bad(ChurnPlan { window: (10, 10), ..ChurnPlan::default() }).contains("window"));
        assert!(bad(ChurnPlan { min_n: 2, ..ChurnPlan::default() }).contains("minimum legal"));
        assert!(bad(ChurnPlan { min_n: 9, max_n: 8, ..ChurnPlan::default() }).contains("bounds"));
        // Starting size outside the bounds.
        let plan = ChurnPlan { min_n: 6, max_n: 9, ..ChurnPlan::default() };
        assert!(FaultSchedule::churn(5, &plan, 0).unwrap_err().to_string().contains("outside"));
    }
}
