//! Property-based tests of the wire codec:
//!
//! * round trip: `decode(encode(frame)) == frame` for every payload kind,
//! * robustness: decoding NEVER panics, on any byte string — corrupting a
//!   valid frame in a single byte either still decodes (only possible when
//!   the flip cancels in CRC space — it cannot, for one byte) or returns a
//!   structured error.

use proptest::prelude::*;

use ssr_core::SsrState;
use ssr_net::{decode, encode, CodecError};

fn arb_ssr_state() -> impl Strategy<Value = SsrState> {
    (0u32..10_000, any::<bool>(), any::<bool>()).prop_map(|(x, rts, tra)| SsrState { x, rts, tra })
}

proptest! {
    /// encode ∘ decode = id for the SSRmin state payload, for any sender
    /// and generation.
    #[test]
    fn ssr_state_round_trips(
        state in arb_ssr_state(),
        sender in any::<u16>(),
        generation in any::<u32>(),
    ) {
        let bytes = encode(sender, generation, &state);
        let frame = decode::<SsrState>(&bytes).expect("own encoding decodes");
        prop_assert_eq!(frame.sender, sender);
        prop_assert_eq!(frame.generation, generation);
        prop_assert_eq!(frame.state, state);
    }

    /// encode ∘ decode = id for the Dijkstra counter payload (`u32`).
    #[test]
    fn counter_round_trips(x in any::<u32>(), sender in any::<u16>(), generation in any::<u32>()) {
        let bytes = encode(sender, generation, &x);
        let frame = decode::<u32>(&bytes).expect("own encoding decodes");
        prop_assert_eq!(frame.state, x);
    }

    /// Corrupting any single byte of a valid frame to a different value is
    /// always detected: decode returns an error, and in particular never
    /// panics. (A one-byte change cannot preserve a CRC-32 over the frame.)
    #[test]
    fn single_byte_corruption_is_detected(
        state in arb_ssr_state(),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = encode(7, 42, &state);
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        prop_assert!(
            decode::<SsrState>(&bytes).is_err(),
            "corruption at byte {} (xor {:#04x}) went undetected",
            pos,
            xor
        );
    }

    /// Decoding arbitrary garbage never panics; it returns *some* result.
    /// (Frames that happen to be valid are fine — the property is totality.)
    #[test]
    fn decode_is_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode::<SsrState>(&bytes);
    }

    /// Truncating a valid frame anywhere is detected.
    #[test]
    fn truncation_is_detected(state in arb_ssr_state(), cut_seed in any::<usize>()) {
        let bytes = encode(3, 9, &state);
        let cut = cut_seed % bytes.len(); // strictly shorter than the frame
        prop_assert!(decode::<SsrState>(&bytes[..cut]).is_err());
    }

    /// The rejection properties hold across the whole `WireState` corpus,
    /// not just the SSRmin payload: one-byte corruption of a Dijkstra
    /// counter (`u32`) frame is always detected.
    #[test]
    fn counter_single_byte_corruption_is_detected(
        x in any::<u32>(),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = encode(4, 11, &x);
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        prop_assert!(decode::<u32>(&bytes).is_err());
    }

    /// ... and truncating a counter frame anywhere is detected, and decoding
    /// arbitrary garbage as a counter frame never panics.
    #[test]
    fn counter_truncation_is_detected_and_decode_is_total(
        x in any::<u32>(),
        cut_seed in any::<usize>(),
        garbage in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let bytes = encode(4, 11, &x);
        let cut = cut_seed % bytes.len();
        prop_assert!(decode::<u32>(&bytes[..cut]).is_err());
        let _ = decode::<u32>(&garbage);
    }

    /// The chaos proxy's exact wire-damage model — one random byte XOR'd
    /// with a non-zero value, optionally followed by truncation to a
    /// strictly shorter prefix — never yields a decodable frame. This is
    /// the property `ChaosConfig::corrupt`/`truncate` rely on: damaged
    /// datagrams die in the codec, never in the algorithm.
    #[test]
    fn chaos_damage_model_never_decodes(
        state in arb_ssr_state(),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
        also_truncate in any::<bool>(),
        cut_seed in any::<usize>(),
    ) {
        let mut bytes = encode(9, 77, &state);
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        if also_truncate {
            bytes.truncate(cut_seed % bytes.len());
        }
        prop_assert!(decode::<SsrState>(&bytes).is_err());
    }

    /// The error taxonomy is stable for the two checks peers rely on:
    /// a wrong version byte is BadVersion, a wrong payload kind WrongKind
    /// (both checked before the checksum so peers can classify mismatches).
    #[test]
    fn version_and_kind_are_checked_first(state in arb_ssr_state()) {
        let mut bytes = encode(1, 1, &state);
        bytes[2] = 0xEE; // version byte
        prop_assert!(matches!(decode::<SsrState>(&bytes), Err(CodecError::BadVersion { .. })));

        let mut bytes = encode(1, 1, &state);
        bytes[3] = 0xEE; // kind byte
        prop_assert!(matches!(decode::<SsrState>(&bytes), Err(CodecError::WrongKind { .. })));
    }
}

/// Exhaustive (not sampled) check on one frame: every single-bit flip in
/// every byte is rejected. Complements the sampled property above.
#[test]
fn every_single_bit_flip_on_a_frame_is_rejected() {
    let state = SsrState { x: 5, rts: true, tra: false };
    let bytes = encode(2, 1000, &state);
    for pos in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 1 << bit;
            assert!(
                decode::<SsrState>(&corrupted).is_err(),
                "bit {bit} of byte {pos} flipped undetected"
            );
        }
    }
}
