//! The live control plane of a supervised cluster: the bridge between
//! `ssr-net`'s runtime (metrics registry, chaos proxies, fault supervisor)
//! and `ssr-ctl`'s HTTP server.
//!
//! [`LivePlane`] implements [`ssr_ctl::ControlPlane`] over the same shared
//! handles the ring already maintains — relaxed atomic counters and gauges,
//! cloneable [`ChaosHandle`]s, the persisted-snapshot mutexes and the
//! activity log — so a scrape never pauses the ring. Admin requests flow
//! the other way through [`CtlShared`]: `POST /chaos` flips proxy switches
//! directly (they are runtime-flippable by design), while `POST /faults`
//! queues a [`FaultKind`] that the supervisor's event loop drains and
//! applies exactly like a scheduled fault — including the recovery row.

use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use ssr_core::{Replica, WireState};
use ssr_ctl::plane::{ChaosCmd, ControlPlane, LinkStatus, NodeStatus, RingStatus};
use ssr_ctl::prom::{Family, MetricKind, Sample};
use ssr_mpnet::FaultKind;
use ssr_runtime::activity::ActivityEvent;

use crate::chaos::ChaosHandle;
use crate::cluster::recovery_in_window;
use crate::metrics::{MetricsRegistry, NodeMetrics};

/// Mutable state shared between the supervisor's event loop and the control
/// plane: liveness flags the supervisor writes and the plane reads, and the
/// injected-fault queue flowing the other way.
#[derive(Debug)]
pub(crate) struct CtlShared {
    /// Per-node: is the node's thread currently up?
    pub up: Vec<AtomicBool>,
    /// Per-node: restart count (0 = first incarnation still running).
    pub incarnations: Vec<AtomicU64>,
    /// Restarts performed so far (scheduled and panic-triggered).
    pub restarts: AtomicU64,
    /// Node-thread panics observed so far.
    pub panics: AtomicU64,
    /// Convergence-watchdog escalations drained so far (resyncs and
    /// self-restarts).
    pub watchdogs: AtomicU64,
    /// Every applied fault with its wall-clock offset, scheduled and
    /// injected alike — the live prefix of the final recovery report.
    pub applied: Mutex<Vec<(FaultKind, Duration)>>,
    /// Faults injected over HTTP, drained by the supervisor loop at its
    /// 2 ms polling granularity.
    pub injected: Mutex<VecDeque<FaultKind>>,
}

impl CtlShared {
    pub(crate) fn new(n: usize) -> Arc<CtlShared> {
        Arc::new(CtlShared {
            up: (0..n).map(|_| AtomicBool::new(true)).collect(),
            incarnations: (0..n).map(|_| AtomicU64::new(0)).collect(),
            restarts: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            watchdogs: AtomicU64::new(0),
            applied: Mutex::new(Vec::new()),
            injected: Mutex::new(VecDeque::new()),
        })
    }
}

/// One directed link as the control plane sees it: endpoints plus the cheap
/// counters/controls handle of its chaos proxy.
#[derive(Debug, Clone)]
pub(crate) struct LiveLink {
    pub from: usize,
    pub to: usize,
    pub handle: ChaosHandle,
}

/// The [`ControlPlane`] implementation of a running supervised cluster,
/// generic over the ring's wire state `S` (the type its snapshots decode
/// to). It holds only shared handles, never a value of `S` itself.
pub(crate) struct LivePlane<S> {
    pub start: Instant,
    pub warmup: Duration,
    pub initial_active: Vec<bool>,
    pub metrics: MetricsRegistry,
    pub links: Vec<LiveLink>,
    pub snapshots: Vec<Arc<Mutex<Vec<u8>>>>,
    pub log: Arc<Mutex<Vec<ActivityEvent>>>,
    pub shared: Arc<CtlShared>,
    /// Theorem 2 stabilization envelope for this ring size and tick
    /// (`crate::supervisor::convergence_envelope`), exposed so `/status`
    /// can report whether measured recoveries stay inside the bound.
    pub envelope: Duration,
    pub state: PhantomData<fn() -> S>,
}

/// Live recovery summary derived from the applied-fault list and the
/// activity log (the mid-run analogue of `RecoveryReport::histogram`).
struct LiveRecovery {
    recovered: u64,
    unrecovered: u64,
    last_ms: Option<u64>,
    p50_ms: Option<u64>,
    p99_ms: Option<u64>,
    max_ms: Option<u64>,
}

impl<S> LivePlane<S>
where
    S: WireState + fmt::Display + PartialEq,
{
    /// Decode every node's persisted snapshot (None where missing/corrupt —
    /// e.g. a node that crashed before its first persist).
    fn replicas(&self) -> Vec<Option<Replica<S>>> {
        self.snapshots.iter().map(|s| Replica::from_snapshot(&s.lock()).ok()).collect()
    }

    /// Apply a fleet-wide chaos rate override (`None` clears it) through
    /// every link's handle; shared by the loss/corrupt/truncate commands.
    fn rate_override(
        &self,
        what: &str,
        rate: Option<f64>,
        set: &dyn Fn(&ChaosHandle, Option<f64>),
    ) -> Result<String, String> {
        if let Some(p) = rate {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{what} rate {p} outside [0, 1]"));
            }
        }
        for link in &self.links {
            set(&link.handle, rate);
        }
        Ok(match rate {
            Some(p) => format!("{what} override {p} on all {} links", self.links.len()),
            None => format!("{what} override cleared; configured rates restored"),
        })
    }

    /// Per-fault recovery evaluated up to *now*: each applied fault owns the
    /// window to the next applied fault, the last one the window to the
    /// present moment (so an unrecovered verdict on it is provisional).
    fn live_recovery(&self, now: Duration) -> LiveRecovery {
        let applied = self.shared.applied.lock().clone();
        let mut events = self.log.lock().clone();
        events.sort_by_key(|e| e.at);
        let mut samples: Vec<Duration> = Vec::with_capacity(applied.len());
        let mut last: Option<Duration> = None;
        let mut unrecovered = 0u64;
        for (index, &(_, at)) in applied.iter().enumerate() {
            let window_end = applied.get(index + 1).map_or(now, |&(_, next)| next);
            match recovery_in_window(&self.initial_active, &events, at, window_end) {
                Some(d) => {
                    samples.push(d);
                    last = Some(d);
                }
                None => unrecovered += 1,
            }
        }
        samples.sort_unstable();
        let rank = |q: f64| -> Option<u64> {
            if samples.is_empty() {
                return None;
            }
            let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
            Some(samples[idx].as_millis() as u64)
        };
        LiveRecovery {
            recovered: samples.len() as u64,
            unrecovered,
            last_ms: last.map(|d| d.as_millis() as u64),
            p50_ms: rank(0.50),
            p99_ms: rank(0.99),
            max_ms: samples.last().map(|d| d.as_millis() as u64),
        }
    }
}

impl<S> ControlPlane for LivePlane<S>
where
    S: WireState + fmt::Display + PartialEq,
{
    fn status(&self) -> RingStatus {
        let n = self.metrics.len();
        let uptime = self.start.elapsed();
        let replicas = self.replicas();
        let mut nodes = Vec::with_capacity(n);
        let mut privileged_count = 0usize;
        for i in 0..n {
            let m = self.metrics.node(i);
            let up = self.shared.up[i].load(Ordering::Relaxed);
            let privileged = up && NodeMetrics::get(&m.privileged) == 1;
            if privileged {
                privileged_count += 1;
            }
            // Central coherence check: does node i's cached view agree with
            // what its neighbours last persisted as their own states?
            let coherent = match (&replicas[i], &replicas[(i + n - 1) % n], &replicas[(i + 1) % n])
            {
                (Some(me), Some(pred), Some(succ)) => Some(me.is_coherent(&pred.own, &succ.own)),
                _ => None,
            };
            nodes.push(NodeStatus {
                node: i,
                up,
                incarnation: self.shared.incarnations[i].load(Ordering::Relaxed),
                privileged,
                primary: up && NodeMetrics::get(&m.token_primary) == 1,
                secondary: up && NodeMetrics::get(&m.token_secondary) == 1,
                state: replicas[i].as_ref().map(|r| r.own.to_string()),
                coherent,
                generation: NodeMetrics::get(&m.generation),
                sends: NodeMetrics::get(&m.sends),
                receives: NodeMetrics::get(&m.receives),
                rule_firings: NodeMetrics::get(&m.rule_firings),
                activations: NodeMetrics::get(&m.activations),
            });
        }
        let links = self
            .links
            .iter()
            .map(|link| {
                let counters = link.handle.counters();
                LinkStatus {
                    from: link.from,
                    to: link.to,
                    partitioned: link.handle.is_partitioned(),
                    forwarded: counters.forwarded,
                    dropped: counters.dropped,
                    blocked: counters.blocked,
                    corrupted: counters.corrupted,
                    truncated: counters.truncated,
                    netem_dropped: counters.netem_dropped,
                }
            })
            .collect();
        let recovery = self.live_recovery(uptime);
        RingStatus {
            n,
            uptime_ms: uptime.as_millis() as u64,
            phase: if uptime < self.warmup { "warmup" } else { "measuring" }.to_string(),
            privileged: privileged_count,
            token_count_ok: (1..=2).contains(&privileged_count),
            faults_applied: self.shared.applied.lock().len() as u64,
            restarts: self.shared.restarts.load(Ordering::Relaxed),
            panics: self.shared.panics.load(Ordering::Relaxed),
            recovered: recovery.recovered,
            unrecovered: recovery.unrecovered,
            last_recovery_ms: recovery.last_ms,
            p50_recovery_ms: recovery.p50_ms,
            p99_recovery_ms: recovery.p99_ms,
            max_recovery_ms: recovery.max_ms,
            watchdog_escalations: self.shared.watchdogs.load(Ordering::Relaxed),
            envelope_ms: self.envelope.as_millis() as u64,
            envelope_ok: recovery
                .max_ms
                .is_none_or(|max| Duration::from_millis(max) <= self.envelope),
            nodes,
            links,
        }
    }

    fn metrics(&self) -> Vec<Family> {
        let n = self.metrics.len();
        let node_family = |name: &str, help: &str, kind, get: &dyn Fn(&NodeMetrics) -> u64| {
            Family::new(
                name,
                help,
                kind,
                (0..n)
                    .map(|i| {
                        Sample::labeled("node", i.to_string(), get(self.metrics.node(i)) as f64)
                    })
                    .collect(),
            )
        };
        use MetricKind::{Counter, Gauge};
        let mut families = vec![
            node_family(
                "ssr_node_sends_total",
                "Datagrams sent (retransmissions included)",
                Counter,
                &|m| NodeMetrics::get(&m.sends),
            ),
            node_family(
                "ssr_node_retransmits_total",
                "Datagrams sent by the retransmit timer",
                Counter,
                &|m| NodeMetrics::get(&m.retransmits),
            ),
            node_family(
                "ssr_node_receives_total",
                "Datagrams received and accepted",
                Counter,
                &|m| NodeMetrics::get(&m.receives),
            ),
            node_family(
                "ssr_node_decode_errors_total",
                "Datagrams rejected by the wire codec",
                Counter,
                &|m| NodeMetrics::get(&m.decode_errors),
            ),
            node_family(
                "ssr_node_stale_drops_total",
                "Datagrams dropped by the generation filter",
                Counter,
                &|m| NodeMetrics::get(&m.stale_drops),
            ),
            node_family(
                "ssr_node_rule_firings_total",
                "Guarded-command rule firings",
                Counter,
                &|m| NodeMetrics::get(&m.rule_firings),
            ),
            node_family(
                "ssr_node_activations_total",
                "Privilege rising edges (CS entries)",
                Counter,
                &|m| NodeMetrics::get(&m.activations),
            ),
            node_family(
                "ssr_node_privileged",
                "1 while the node evaluates itself privileged",
                Gauge,
                &|m| NodeMetrics::get(&m.privileged),
            ),
            node_family(
                "ssr_node_token_primary",
                "1 while the node holds the primary token",
                Gauge,
                &|m| NodeMetrics::get(&m.token_primary),
            ),
            node_family(
                "ssr_node_token_secondary",
                "1 while the node holds the secondary token",
                Gauge,
                &|m| NodeMetrics::get(&m.token_secondary),
            ),
            node_family("ssr_node_generation", "Last transport generation stamped", Gauge, &|m| {
                NodeMetrics::get(&m.generation)
            }),
            node_family(
                "ssr_node_watchdog_resyncs_total",
                "Stage-1 watchdog escalations (republish to both neighbours)",
                Counter,
                &|m| NodeMetrics::get(&m.watchdog_resyncs),
            ),
            node_family(
                "ssr_node_watchdog_restarts_total",
                "Stage-2 watchdog escalations (amnesia self-restart)",
                Counter,
                &|m| NodeMetrics::get(&m.watchdog_restarts),
            ),
            Family::new(
                "ssr_node_up",
                "1 while the node's thread is running",
                Gauge,
                (0..n)
                    .map(|i| {
                        let up = self.shared.up[i].load(Ordering::Relaxed);
                        Sample::labeled("node", i.to_string(), f64::from(u8::from(up)))
                    })
                    .collect(),
            ),
            Family::new(
                "ssr_node_incarnation",
                "Restart count of the node",
                Counter,
                (0..n)
                    .map(|i| {
                        let inc = self.shared.incarnations[i].load(Ordering::Relaxed);
                        Sample::labeled("node", i.to_string(), inc as f64)
                    })
                    .collect(),
            ),
        ];

        let link_label = |link: &LiveLink| format!("{}->{}", link.from, link.to);
        let link_family = |name: &str, help: &str, kind, get: &dyn Fn(&LiveLink) -> f64| {
            Family::new(
                name,
                help,
                kind,
                self.links.iter().map(|l| Sample::labeled("link", link_label(l), get(l))).collect(),
            )
        };
        families.extend([
            link_family(
                "ssr_chaos_forwarded_total",
                "Datagrams forwarded by the link's proxy",
                Counter,
                &|l| l.handle.counters().forwarded as f64,
            ),
            link_family(
                "ssr_chaos_dropped_total",
                "Datagrams dropped by chaos loss",
                Counter,
                &|l| l.handle.counters().dropped as f64,
            ),
            link_family(
                "ssr_chaos_duplicated_total",
                "Extra copies injected by duplication",
                Counter,
                &|l| l.handle.counters().duplicated as f64,
            ),
            link_family(
                "ssr_chaos_reordered_total",
                "Datagrams delayed out of order",
                Counter,
                &|l| l.handle.counters().reordered as f64,
            ),
            link_family(
                "ssr_chaos_blocked_total",
                "Datagrams swallowed by a partition",
                Counter,
                &|l| l.handle.counters().blocked as f64,
            ),
            link_family(
                "ssr_chaos_corrupted_total",
                "Datagrams with a chaos-flipped byte",
                Counter,
                &|l| l.handle.counters().corrupted as f64,
            ),
            link_family(
                "ssr_chaos_truncated_total",
                "Datagrams truncated by chaos",
                Counter,
                &|l| l.handle.counters().truncated as f64,
            ),
            link_family("ssr_chaos_partitioned", "1 while the link is cut", Gauge, &|l| {
                f64::from(u8::from(l.handle.is_partitioned()))
            }),
            link_family(
                "ssr_netem_buffer_drops_total",
                "Datagrams tail-dropped by the netem pacing buffer (congestion, not chaos loss)",
                Counter,
                &|l| l.handle.counters().netem_dropped as f64,
            ),
            link_family(
                "ssr_netem_queue_depth",
                "Frames occupying the netem pacing buffer after the last offer",
                Gauge,
                &|l| l.handle.counters().netem_queue_depth as f64,
            ),
        ]);

        let uptime = self.start.elapsed();
        let recovery = self.live_recovery(uptime);
        let privileged: u64 = (0..n)
            .filter(|&i| self.shared.up[i].load(Ordering::Relaxed))
            .map(|i| NodeMetrics::get(&self.metrics.node(i).privileged))
            .sum();
        let opt_ms = |v: Option<u64>| v.map(|ms| ms as f64).unwrap_or(f64::NAN);
        families.extend([
            Family::new(
                "ssr_supervisor_faults_applied_total",
                "Fault events applied (scheduled + injected)",
                Counter,
                vec![Sample::plain(self.shared.applied.lock().len() as f64)],
            ),
            Family::new(
                "ssr_supervisor_restarts_total",
                "Node restarts performed",
                Counter,
                vec![Sample::plain(self.shared.restarts.load(Ordering::Relaxed) as f64)],
            ),
            Family::new(
                "ssr_supervisor_panics_total",
                "Node threads that died by panic",
                Counter,
                vec![Sample::plain(self.shared.panics.load(Ordering::Relaxed) as f64)],
            ),
            Family::new(
                "ssr_supervisor_watchdog_total",
                "Convergence-watchdog escalations recorded",
                Counter,
                vec![Sample::plain(self.shared.watchdogs.load(Ordering::Relaxed) as f64)],
            ),
            Family::new(
                "ssr_envelope_ms",
                "Theorem 2 wall-clock stabilization envelope for this ring",
                Gauge,
                vec![Sample::plain(self.envelope.as_millis() as f64)],
            ),
            Family::new(
                "ssr_envelope_ok",
                "1 while every measured recovery sits within the envelope",
                Gauge,
                vec![Sample::plain(f64::from(u8::from(
                    recovery.max_ms.is_none_or(|max| Duration::from_millis(max) <= self.envelope),
                )))],
            ),
            Family::new(
                "ssr_recovery_recovered_total",
                "Fault events whose window re-established the invariant",
                Counter,
                vec![Sample::plain(recovery.recovered as f64)],
            ),
            Family::new(
                "ssr_recovery_unrecovered_total",
                "Fault events still violating at window close",
                Counter,
                vec![Sample::plain(recovery.unrecovered as f64)],
            ),
            Family::new(
                "ssr_recovery_ms",
                "Recovery-time quantiles over recovered events (NaN until one recovers)",
                Gauge,
                vec![
                    Sample::labeled("quantile", "p50", opt_ms(recovery.p50_ms)),
                    Sample::labeled("quantile", "p99", opt_ms(recovery.p99_ms)),
                    Sample::labeled("quantile", "max", opt_ms(recovery.max_ms)),
                    Sample::labeled("quantile", "last", opt_ms(recovery.last_ms)),
                ],
            ),
            Family::new(
                "ssr_ring_privileged",
                "Locally-evaluated privileged nodes right now",
                Gauge,
                vec![Sample::plain(privileged as f64)],
            ),
            Family::new(
                "ssr_ring_token_invariant",
                "1 while 1 <= privileged <= 2 (P9/P10 observed)",
                Gauge,
                vec![Sample::plain(f64::from(u8::from((1..=2).contains(&(privileged as usize)))))],
            ),
            Family::new(
                "ssr_uptime_seconds",
                "Seconds since the run started",
                Gauge,
                vec![Sample::plain(uptime.as_secs_f64())],
            ),
        ]);
        families
    }

    fn chaos(&self, cmd: ChaosCmd) -> Result<String, String> {
        match cmd {
            ChaosCmd::Partition { from, to, cut } => {
                let link = self
                    .links
                    .iter()
                    .find(|l| l.from == from && l.to == to)
                    .ok_or_else(|| format!("no directed ring link {from}->{to}"))?;
                link.handle.set_partitioned(cut);
                Ok(format!("link {from}->{to} {}", if cut { "partitioned" } else { "healed" }))
            }
            ChaosCmd::Loss(rate) => {
                self.rate_override("loss", rate, &|h, r| h.set_loss_override(r))
            }
            ChaosCmd::Corrupt(rate) => {
                self.rate_override("corrupt", rate, &|h, r| h.set_corrupt_override(r))
            }
            ChaosCmd::Truncate(rate) => {
                self.rate_override("truncate", rate, &|h, r| h.set_truncate_override(r))
            }
            ChaosCmd::Netem(name) => match name {
                Some(name) => {
                    let profile =
                        ssr_netem::LinkProfile::resolve(&name).map_err(|e| e.to_string())?;
                    let n = self.metrics.len();
                    for link in &self.links {
                        // Forward ring direction is `i → succ(i)`; the
                        // profile's reverse half paces the other way.
                        let forward = link.to == (link.from + 1) % n;
                        let dir = if forward { profile.forward } else { profile.reverse };
                        link.handle.set_netem(Some(dir)).map_err(|e| e.to_string())?;
                    }
                    Ok(format!(
                        "netem profile '{}' pacing all {} links",
                        profile.name,
                        self.links.len()
                    ))
                }
                None => {
                    for link in &self.links {
                        link.handle.set_netem(None).map_err(|e| e.to_string())?;
                    }
                    Ok(format!("netem pacing off on all {} links", self.links.len()))
                }
            },
        }
    }

    fn inject(&self, fault: FaultKind) -> Result<String, String> {
        let n = self.metrics.len();
        let check_node = |node: usize| {
            if node < n {
                Ok(())
            } else {
                Err(format!("node {node} out of range on an {n}-ring"))
            }
        };
        let check_link = |from: usize, to: usize| {
            if self.links.iter().any(|l| l.from == from && l.to == to) {
                Ok(())
            } else {
                Err(format!("no directed ring link {from}->{to}"))
            }
        };
        match fault {
            FaultKind::Crash { node, .. }
            | FaultKind::Restart { node }
            | FaultKind::CorruptSnapshot { node }
            | FaultKind::CorruptState { node }
            | FaultKind::FreezeNode { node }
            | FaultKind::Babble { node } => check_node(node)?,
            FaultKind::Partition { from, to } | FaultKind::Heal { from, to } => {
                check_link(from, to)?
            }
            FaultKind::Watchdog { node, .. } => {
                return Err(format!(
                    "watchdog escalation of node {node} is recorded by the runtime, not injectable"
                ))
            }
            FaultKind::Join { .. } | FaultKind::Leave { .. } => {
                return Err(
                    "membership changes go through the re-splice layer (ssrmin churn or the \
                     serve node routes), not fault injection"
                        .to_string(),
                )
            }
        }
        self.shared.injected.lock().push_back(fault);
        Ok(format!("queued: {fault}"))
    }
}
