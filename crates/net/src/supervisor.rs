//! The fault supervisor: a UDP cluster run driven by a [`FaultSchedule`] —
//! crash/restart with exponential backoff, runtime link partitions, and
//! per-fault recovery measurement.
//!
//! [`run_supervised_cluster`] is [`crate::cluster::run_cluster`] plus a
//! fault plane:
//!
//! * **Crashes** kill the node's thread (the per-node kill flag in
//!   [`NodeControl`]); the thread hands back its transport, so the restarted
//!   incarnation reuses the same sockets and the ring needs no re-wiring.
//!   A thread that *panics* instead of exiting cleanly loses its transport;
//!   the supervisor treats that as an unscheduled crash, binds fresh
//!   sockets, re-aims the two inbound chaos proxies at them
//!   ([`ChaosProxy::set_dst`]) and restarts the node.
//! * **Restarts** come back in one of two [`RestartMode`]s: *amnesia*
//!   (a caller-supplied sampler provides an arbitrary replica — the
//!   self-stabilization stress case) or *snapshot* (decode the replica the
//!   node persisted through [`NodeControl::snapshot`]; any
//!   [`SnapshotError`] degrades to amnesia and is recorded, never fatal).
//!   Repeated crashes of one node back off exponentially:
//!   `base * 2^(crashes-1)`, capped.
//! * **Partitions** flip a directed link's chaos proxy into 100%-loss mode
//!   ([`ChaosProxy::set_partitioned`]) until the matching heal.
//!
//! Every applied fault gets a recovery measurement: within the window from
//! its application to the next fault (or run end), when did the
//! token-count invariant `1 <= privileged <= 2` last recover? The rows
//! land in a [`RecoveryReport`] (`crate::metrics`) for CSV/ASCII rendering.

use std::cell::Cell;
use std::collections::HashSet;
use std::fmt;
use std::io;
use std::mem;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ssr_core::{Config, Replica, RingAlgorithm, RingParams, SnapshotError, SsrState, WireState};
use ssr_ctl::CtlListener;
use ssr_mpnet::{FaultKind, FaultSchedule, RestartMode};
use ssr_runtime::activity::{analyze, ActivityEvent};

use crate::chaos::{ChaosConfig, ChaosProxy};
use crate::cluster::{
    handover_latencies, recovery_in_window, stabilization_time, ChaosSummary, ClusterConfig,
    ClusterError, ClusterReport,
};
use crate::ctl::{CtlShared, LiveLink, LivePlane};
use crate::frame::encode;
use crate::metrics::{FaultEventRow, MetricsRegistry, NodeMetrics, RecoveryReport};
use crate::runner::{run_node, NodeConfig, NodeControl, Watchdog, WatchdogEvent};
use crate::transport::UdpTransport;

/// Frames per direction of one [`FaultKind::Babble`] burst.
const BABBLE_BURST: u32 = 64;

/// Generation floor/jump unit shared by supervisor rebinds and watchdog
/// self-restarts: far past anything a previous incarnation can have sent.
const GENERATION_STRIDE: u32 = 1 << 24;

/// Parameters of a supervised (fault-injected) cluster run.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The underlying cluster parameters. `duration` should extend past the
    /// last scheduled fault so the final window can re-converge.
    pub cluster: ClusterConfig,
    /// The fault script; times are milliseconds from run start. Must
    /// validate against the ring size.
    pub schedule: FaultSchedule,
    /// Backoff of a node's first restart; the `c`-th crash of the same node
    /// waits `backoff_base * 2^(c-1)`.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Per-node convergence watchdog. `None` (the default) runs without
    /// one — existing soaks keep their exact restart accounting.
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            cluster: ClusterConfig::default(),
            schedule: FaultSchedule::new(),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(80),
            watchdog: None,
        }
    }
}

/// Budget knobs of the per-node convergence watchdog.
///
/// The paper's Lemma 5 bounds a full token circulation by `3n` steps; one
/// "step" on real sockets costs up to a retransmit period (the cluster
/// tick), so the starvation budget is `tick * 3n * scale` with `scale`
/// absorbing scheduling noise, and never below `floor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Multiplier on the 3n-step circulation bound.
    pub scale: u32,
    /// Lower bound of the budget regardless of ring size and tick.
    pub floor: Duration,
}

impl Default for WatchdogConfig {
    /// `scale` 16 (a node waits sixteen worst-case circulations before
    /// declaring starvation) and a 400 ms floor: paranoid enough for loaded
    /// single-core CI hosts, yet still reached quickly by a genuinely stuck
    /// ring.
    fn default() -> Self {
        WatchdogConfig { scale: 16, floor: Duration::from_millis(400) }
    }
}

impl WatchdogConfig {
    /// The starvation budget for an `n`-ring with retransmit period `tick`.
    pub fn budget(&self, n: usize, tick: Duration) -> Duration {
        let steps = 3u32.saturating_mul(n as u32).saturating_mul(self.scale);
        tick.saturating_mul(steps.max(1)).max(self.floor)
    }

    /// A [`SharedBudget`] over the live ring-size counter `ring_size`, so
    /// watchdog budgets rescale when a membership re-splice changes `n`.
    pub fn shared_budget(
        &self,
        ring_size: std::sync::Arc<std::sync::atomic::AtomicUsize>,
        tick: Duration,
    ) -> crate::runner::SharedBudget {
        crate::runner::SharedBudget::new(ring_size, tick, self.scale, self.floor)
    }
}

/// The Theorem 2 stabilization envelope on wall clocks: `O(n^2)` rule steps
/// at up to one retransmit period (`tick`) each, with a constant factor of
/// 4 absorbing message latency and scheduling noise. Measured per-fault
/// recovery times are compared against this bound by `ssrmin adversary` and
/// [`SupervisedReport::within_envelope`].
pub fn convergence_envelope(n: usize, tick: Duration) -> Duration {
    let steps = (n * n).max(1) as u32;
    tick.saturating_mul(steps.saturating_mul(4))
}

/// One restart performed by the supervisor (scheduled or panic-triggered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartRecord {
    /// Ring index of the restarted node.
    pub node: usize,
    /// Wall-clock offset of the restart (after backoff).
    pub at: Duration,
    /// 1-based count of this node's restarts so far.
    pub incarnation: u32,
    /// The mode the schedule asked for.
    pub mode: RestartMode,
    /// Backoff slept before this restart.
    pub backoff: Duration,
    /// `Some(err)` iff a snapshot restore failed and the node degraded to
    /// amnesia — corruption is detected and survived, never fatal.
    pub degraded: Option<SnapshotError>,
}

/// A [`ClusterReport`] plus the supervisor's fault plane: per-fault
/// recovery rows, the restart log, and the panic count.
#[derive(Debug, Clone)]
pub struct SupervisedReport<S> {
    /// The usual cluster observations (coverage, metrics, chaos counters).
    pub cluster: ClusterReport<S>,
    /// One recovery row per applied fault, in application order.
    pub recovery: RecoveryReport,
    /// The fault kind behind each row of [`SupervisedReport::recovery`]
    /// (parallel vectors).
    pub kinds: Vec<FaultKind>,
    /// Every restart performed, scheduled and panic-triggered.
    pub restarts: Vec<RestartRecord>,
    /// Node threads that died by panic instead of a clean kill.
    pub panics: usize,
    /// The Theorem 2 wall-clock stabilization envelope for this run's ring
    /// size and tick ([`convergence_envelope`]).
    pub envelope: Duration,
}

impl<S> SupervisedReport<S> {
    /// True iff the ring re-converged after every fault that *restores full
    /// operation*: each restart and each heal after which no node is down
    /// and no partition is open has a measured recovery within its window.
    /// Windows where a disruption is still in force — a crash or partition
    /// window, or a heal that lands while some node is still crashed — are
    /// allowed to stay broken; the invariant is not required of a ring that
    /// is still under attack.
    pub fn reconverged(&self) -> bool {
        restoration_points(&self.kinds)
            .into_iter()
            .zip(&self.recovery.rows)
            .all(|(restores, row)| !restores || row.recovery.is_some())
    }

    /// Restarts that detected a corrupt snapshot and degraded to amnesia.
    pub fn degraded_restarts(&self) -> usize {
        self.restarts.iter().filter(|r| r.degraded.is_some()).count()
    }

    /// Convergence-watchdog escalations recorded as recovery rows (both
    /// resyncs and self-restarts).
    pub fn watchdog_escalations(&self) -> usize {
        self.kinds.iter().filter(|k| matches!(k, FaultKind::Watchdog { .. })).count()
    }

    /// True iff every *measured* recovery landed within the Theorem 2
    /// stabilization envelope ([`convergence_envelope`]). Unmeasured
    /// windows (still-broken mid-disruption rows) are not counted — use
    /// [`SupervisedReport::reconverged`] for that.
    pub fn within_envelope(&self) -> bool {
        self.recovery.rows.iter().filter_map(|r| r.recovery).all(|d| d <= self.envelope)
    }
}

/// A seeded amnesia sampler for SSRmin rings: every restart wakes with a
/// fully arbitrary own state *and* arbitrary caches — the adversarial
/// initial condition self-stabilization must absorb.
pub fn ssr_amnesia(params: RingParams, seed: u64) -> impl FnMut(usize, u32) -> Replica<SsrState> {
    move |node, incarnation| {
        let mut rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(((node as u64) << 32) | u64::from(incarnation)),
        );
        let draw = |rng: &mut StdRng| {
            SsrState::new(
                rng.random_range(0..params.k()),
                rng.random_range(0..2u8),
                rng.random_range(0..2u8),
            )
        };
        Replica::coherent(draw(&mut rng), draw(&mut rng), draw(&mut rng))
    }
}

/// A seeded *adversarial* sampler for SSRmin rings: where [`ssr_amnesia`]
/// draws uniformly, this one draws Hoepman's worst cases — counter values
/// at the extremes of the `0..K` circle (the maximal-gap configurations his
/// K=N analysis shows dominate stabilization time), caches that maximally
/// disagree with the own state, and conflicting handshake flags. The own
/// `tra` bit is always set: the poisoned node *holds the secondary token*,
/// so a [`FaultKind::CorruptState`] injection never empties the ring of
/// privileges (the P7/P9 "at least one token" criterion is attacked on the
/// upper bound, not trivially broken on the lower one).
pub fn ssr_adversary(params: RingParams, seed: u64) -> impl FnMut(usize, u32) -> Replica<SsrState> {
    move |node, salt| {
        let mut rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(((node as u64) << 32) | u64::from(salt)),
        );
        let k = params.k();
        // Own counter at a circle extreme, secondary token held.
        let own_x = if rng.random_bool(0.5) { 0 } else { k - 1 };
        let own = SsrState::new(own_x, rng.random_range(0..2u8), 1);
        // Caches at the opposite extreme and mid-gap, flags inverted: the
        // node believes a maximally wrong picture of its neighbourhood.
        let flip = |b: bool| u8::from(!b);
        let pred = SsrState::new((own_x + (k - 1)) % k, flip(own.rts), flip(own.tra));
        let succ = SsrState::new((own_x + k / 2) % k, flip(own.rts), rng.random_range(0..2u8));
        Replica::coherent(own, pred, succ)
    }
}

/// For each applied fault, whether it is a *restoration point*: an event
/// after which the ring is fully operational again — no node down, no
/// partition open, no rule engine frozen — and from which re-convergence is
/// therefore demanded. Replays the script, so a heal that fires while some
/// node is still crashed (the windows overlap) is correctly exempted.
///
/// [`FaultKind::CorruptState`] and [`FaultKind::Babble`] are *transient*
/// disturbances: the ring keeps running, so their own windows must
/// re-converge (when nothing else is broken). [`FaultKind::FreezeNode`]
/// opens a disruption that only a restart — scheduled, or a stage-2
/// watchdog self-restart — closes. Watchdog rows themselves are recorded as
/// recovery rows but never *demand* recovery: they land mid-healing, and
/// their short windows (often truncated by the next escalation) say nothing
/// about the final outcome; the last row's run-end window does.
fn restoration_points(kinds: &[FaultKind]) -> Vec<bool> {
    let mut down = HashSet::new();
    let mut open = HashSet::new();
    let mut frozen = HashSet::new();
    kinds
        .iter()
        .map(|kind| {
            let restores_kind = match *kind {
                FaultKind::Crash { node, .. } => {
                    down.insert(node);
                    false
                }
                FaultKind::Restart { node } => {
                    down.remove(&node);
                    frozen.remove(&node);
                    true
                }
                FaultKind::Partition { from, to } => {
                    open.insert((from, to));
                    false
                }
                FaultKind::Heal { from, to } => {
                    open.remove(&(from, to));
                    true
                }
                FaultKind::CorruptSnapshot { .. } => false,
                FaultKind::CorruptState { .. } | FaultKind::Babble { .. } => true,
                FaultKind::FreezeNode { node } => {
                    frozen.insert(node);
                    false
                }
                FaultKind::Watchdog { node, restart } => {
                    if restart {
                        frozen.remove(&node);
                    }
                    false
                }
                // Membership events only validate on a whole ring, and the
                // post-splice ring must re-converge to the new n's envelope.
                FaultKind::Join { .. } | FaultKind::Leave { .. } => true,
            };
            restores_kind && down.is_empty() && open.is_empty() && frozen.is_empty()
        })
        .collect()
}

/// Backoff of the `crashes`-th restart: `base * 2^(crashes-1)`, capped.
fn backoff_for(base: Duration, cap: Duration, crashes: u32) -> Duration {
    let shift = crashes.saturating_sub(1).min(16);
    base.saturating_mul(1u32 << shift).min(cap)
}

/// A node's lifecycle slot.
enum Slot<S: WireState> {
    /// Thread running; the kill flag crashes it.
    Up { handle: JoinHandle<(Replica<S>, UdpTransport<S>)>, kill: Arc<AtomicBool> },
    /// Crashed. The transport survives a clean kill (`Some`) and is reused
    /// on restart; a panic loses it (`None`) and forces fresh sockets.
    Down { transport: Option<UdpTransport<S>>, last_own: S },
}

/// Everything the supervisor needs to spawn, crash and restart nodes.
struct Harness<'a, A: RingAlgorithm> {
    algo: &'a A,
    initial: &'a Config<A::State>,
    cfg: ClusterConfig,
    node_cfg: NodeConfig,
    stop: Arc<AtomicBool>,
    log: Arc<Mutex<Vec<ActivityEvent>>>,
    start: Instant,
    metrics: &'a MetricsRegistry,
    snapshots: &'a [Arc<Mutex<Vec<u8>>>],
    poisons: &'a [Arc<Mutex<Option<Vec<u8>>>>],
    frozens: &'a [Arc<AtomicBool>],
    watchdog: Option<Watchdog>,
    proxies: &'a [ChaosProxy],
    shared: Arc<CtlShared>,
    n: usize,
}

impl<'a, A> Harness<'a, A>
where
    A: RingAlgorithm + Clone + Send + Sync + 'static,
    A::State: WireState + Send + 'static,
{
    fn spawn_slot(
        &self,
        i: usize,
        replica: Replica<A::State>,
        transport: UdpTransport<A::State>,
    ) -> Slot<A::State> {
        let kill = Arc::new(AtomicBool::new(false));
        let control = NodeControl {
            stop: Arc::clone(&self.stop),
            kill: Arc::clone(&kill),
            snapshot: Some(Arc::clone(&self.snapshots[i])),
            poison: Arc::clone(&self.poisons[i]),
            frozen: Arc::clone(&self.frozens[i]),
            // The harness has no membership layer, hence no degraded mode:
            // the flag exists but nothing ever sets it.
            suspended: Arc::new(AtomicBool::new(false)),
            watchdog: self.watchdog.clone(),
        };
        let algo = self.algo.clone();
        let log = Arc::clone(&self.log);
        let node_metrics = self.metrics.arc_node(i);
        let node_cfg = self.node_cfg;
        let start = self.start;
        let handle = thread::spawn(move || {
            run_node(algo, i, replica, transport, node_cfg, control, log, start, node_metrics)
        });
        Slot::Up { handle, kill }
    }

    /// Kill node `i` and join its thread. A dead node holds no privilege,
    /// so an `active: false` event is logged unconditionally (the replay in
    /// `analyze`/`recovery_in_window` treats repeats idempotently).
    fn crash(&self, i: usize, slots: &mut [Slot<A::State>], panics: &mut usize) {
        let placeholder = Slot::Down { transport: None, last_own: self.initial[i].clone() };
        let Slot::Up { handle, kill } = mem::replace(&mut slots[i], placeholder) else {
            return; // already down (validated schedules never do this)
        };
        kill.store(true, Ordering::Relaxed);
        slots[i] = match handle.join() {
            Ok((replica, transport)) => {
                Slot::Down { transport: Some(transport), last_own: replica.own }
            }
            Err(_) => {
                *panics += 1;
                NodeMetrics::inc(&self.shared.panics);
                // Thread state is gone; the persisted snapshot is the best
                // available record of where the node was.
                let last_own = Replica::<A::State>::from_snapshot(&self.snapshots[i].lock())
                    .map(|r| r.own)
                    .unwrap_or_else(|_| self.initial[i].clone());
                Slot::Down { transport: None, last_own }
            }
        };
        // Live view: the node is down and can hold nothing.
        self.shared.up[i].store(false, Ordering::Relaxed);
        let m = self.metrics.node(i);
        NodeMetrics::set(&m.privileged, 0);
        NodeMetrics::set(&m.token_primary, 0);
        NodeMetrics::set(&m.token_secondary, 0);
        self.log.lock().push(ActivityEvent { node: i, at: self.start.elapsed(), active: false });
    }

    /// Fresh sockets for a node whose transport died with a panicked
    /// thread: bind, jump the generation counter past anything the old
    /// incarnation sent, wire outbound through the existing proxies, and
    /// re-aim the two inbound proxies at the new local addresses.
    fn rebind(&self, i: usize, incarnation: u32) -> io::Result<UdpTransport<A::State>> {
        let pred = (i + self.n - 1) % self.n;
        let succ = (i + 1) % self.n;
        let mut transport = UdpTransport::bind(
            i as u16,
            pred as u16,
            succ as u16,
            self.cfg.tick,
            self.cfg.seed.wrapping_add(i as u64).wrapping_add(u64::from(incarnation) << 32),
            self.metrics.arc_node(i),
        )?;
        transport.advance_generation_to(incarnation.saturating_mul(GENERATION_STRIDE));
        transport.wire(self.proxies[2 * i + 1].addr(), self.proxies[2 * i].addr());
        let local = transport.local_addrs()?;
        self.proxies[2 * pred].set_dst(local.pred);
        self.proxies[2 * succ + 1].set_dst(local.succ);
        Ok(transport)
    }

    /// Bring a crashed node back after `backoff`, in `mode`; a failed
    /// snapshot restore degrades to amnesia and is recorded.
    #[allow(clippy::too_many_arguments)]
    fn restart<F>(
        &self,
        i: usize,
        slots: &mut [Slot<A::State>],
        mode: RestartMode,
        incarnation: u32,
        backoff: Duration,
        amnesia: &mut F,
    ) -> Result<RestartRecord, ClusterError>
    where
        F: FnMut(usize, u32) -> Replica<A::State>,
    {
        thread::sleep(backoff);
        let (replica, degraded) = match mode {
            RestartMode::Amnesia => (amnesia(i, incarnation), None),
            RestartMode::Snapshot => {
                let bytes = self.snapshots[i].lock().clone();
                match Replica::from_snapshot(&bytes) {
                    Ok(r) => (r, None),
                    Err(e) => (amnesia(i, incarnation), Some(e)),
                }
            }
        };
        let placeholder = Slot::Down { transport: None, last_own: self.initial[i].clone() };
        let transport = match mem::replace(&mut slots[i], placeholder) {
            Slot::Down { transport: Some(t), .. } => t,
            Slot::Down { transport: None, .. } => self.rebind(i, incarnation)?,
            up @ Slot::Up { .. } => {
                // Already running (panic auto-restart beat the schedule).
                slots[i] = up;
                return Ok(RestartRecord {
                    node: i,
                    at: self.start.elapsed(),
                    incarnation,
                    mode,
                    backoff,
                    degraded: None,
                });
            }
        };
        let at = self.start.elapsed();
        if replica.is_privileged(self.algo, i) {
            self.log.lock().push(ActivityEvent { node: i, at, active: true });
        }
        // A restart wipes any adversarial residue: a pending poison meant
        // for the dead incarnation and a stuck-daemon freeze both die with
        // the old thread.
        *self.poisons[i].lock() = None;
        self.frozens[i].store(false, Ordering::Relaxed);
        slots[i] = self.spawn_slot(i, replica, transport);
        self.shared.up[i].store(true, Ordering::Relaxed);
        self.shared.incarnations[i].store(u64::from(incarnation), Ordering::Relaxed);
        NodeMetrics::inc(&self.shared.restarts);
        Ok(RestartRecord { node: i, at, incarnation, mode, backoff, degraded })
    }

    /// Spray a burst of *stale-generation* frames impersonating `node` at
    /// both of its neighbours ([`FaultKind::Babble`]). The frames are
    /// CRC-valid and carry the node's initial state, but their generations
    /// sit a million behind the live counter — every one must die in the
    /// receivers' staleness filter (`stale_drops`), never in a cache.
    /// Returns whether at least one frame left the socket.
    fn babble(&self, node: usize) -> bool {
        let Ok(socket) = UdpSocket::bind("127.0.0.1:0") else {
            return false;
        };
        let gen_now = NodeMetrics::get(&self.metrics.node(node).generation) as u32;
        let state = self.initial[node].clone();
        let mut sent = false;
        for k in 0..BABBLE_BURST {
            let stale = gen_now.wrapping_sub(1_000_000).wrapping_sub(k);
            let frame = encode(node as u16, stale, &state);
            sent |= socket.send_to(&frame, self.proxies[2 * node].addr()).is_ok();
            sent |= socket.send_to(&frame, self.proxies[2 * node + 1].addr()).is_ok();
        }
        sent
    }
}

/// Run a fault-injected cluster: like [`crate::cluster::run_cluster`], but
/// every directed link goes through a chaos proxy (even with chaos off, so
/// partitions and restart re-aiming work), every node persists snapshots,
/// and the supervisor executes `sup.schedule` while measuring per-fault
/// recovery.
///
/// `amnesia(node, incarnation)` supplies the arbitrary replica an
/// amnesia-mode (or degraded snapshot-mode) restart wakes up with; use
/// [`ssr_amnesia`] for SSRmin rings.
pub fn run_supervised_cluster<A, F>(
    algo: A,
    initial: Config<A::State>,
    sup: SupervisorConfig,
    amnesia: F,
) -> Result<SupervisedReport<A::State>, ClusterError>
where
    A: RingAlgorithm + Clone + Send + Sync + 'static,
    A::State: WireState + fmt::Display + PartialEq + Send + 'static,
    F: FnMut(usize, u32) -> Replica<A::State>,
{
    run_supervised_cluster_with_ctl(algo, initial, sup, amnesia, None)
}

/// [`run_supervised_cluster`] with an optional live control plane: when
/// `ctl` carries a bound [`CtlListener`], an `ssr-ctl` HTTP server runs for
/// the duration of the run, serving `/metrics`, `/status` and `/top` from
/// the live counters and accepting `POST /chaos` / `POST /faults` admin
/// commands. HTTP-injected faults are drained by the supervisor loop at its
/// 2 ms polling granularity and measured exactly like scheduled ones — each
/// applied injection gets its own recovery row.
///
/// The listener is a separate parameter (not a `SupervisorConfig` field)
/// because a bound socket is neither `Clone` nor `Debug`; pass `None` and
/// this is exactly [`run_supervised_cluster`] — no thread, no socket, no
/// overhead.
pub fn run_supervised_cluster_with_ctl<A, F>(
    algo: A,
    initial: Config<A::State>,
    sup: SupervisorConfig,
    mut amnesia: F,
    ctl: Option<CtlListener>,
) -> Result<SupervisedReport<A::State>, ClusterError>
where
    A: RingAlgorithm + Clone + Send + Sync + 'static,
    A::State: WireState + fmt::Display + PartialEq + Send + 'static,
    F: FnMut(usize, u32) -> Replica<A::State>,
{
    algo.validate_config(&initial)?;
    let n = algo.n();
    sup.schedule.validate(n).map_err(|e| ClusterError::Schedule(e.to_string()))?;
    // The supervised cluster keeps a fixed topology; membership churn runs
    // through `crate::membership::RingMembership` (`ssrmin churn`) instead.
    if let Some(ev) = sup
        .schedule
        .events()
        .iter()
        .find(|e| matches!(e.kind, FaultKind::Join { .. } | FaultKind::Leave { .. }))
    {
        return Err(ClusterError::Schedule(format!(
            "membership event '{}' needs the re-splice layer (ssrmin churn); \
             the fixed-n supervisor cannot resize its ring",
            ev.kind
        )));
    }
    let cfg = sup.cluster;
    let metrics = MetricsRegistry::new(n);

    // Bind every node's socket pair.
    let mut transports: Vec<UdpTransport<A::State>> = Vec::with_capacity(n);
    for i in 0..n {
        let pred = (i + n - 1) % n;
        let succ = (i + 1) % n;
        transports.push(UdpTransport::bind(
            i as u16,
            pred as u16,
            succ as u16,
            cfg.tick,
            cfg.seed.wrapping_add(i as u64),
            metrics.arc_node(i),
        )?);
    }
    let addrs: Vec<_> =
        transports.iter().map(|t| t.local_addrs()).collect::<io::Result<Vec<_>>>()?;

    // One proxy per directed link, unconditionally: link `2i` is
    // `i → succ(i)`, `2i + 1` is `i → pred(i)`. With chaos off the proxy is
    // a pass-through, but partitions and restart re-aiming need it there.
    let chaos_base = cfg.chaos.unwrap_or_default();
    let mut proxies: Vec<ChaosProxy> = Vec::with_capacity(2 * n);
    for i in 0..n {
        let pred = (i + n - 1) % n;
        let succ = (i + 1) % n;
        let mk = |link_idx: usize, dst| -> io::Result<ChaosProxy> {
            ChaosProxy::spawn(
                dst,
                ChaosConfig {
                    seed: cfg
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(link_idx as u64),
                    // Odd link indices run `i → pred(i)`: resolve the
                    // asymmetric delay/netem knobs for that direction.
                    ..chaos_base.for_direction(link_idx % 2 == 1)
                },
            )
        };
        proxies.push(mk(2 * i, addrs[succ].pred)?);
        proxies.push(mk(2 * i + 1, addrs[pred].succ)?);
    }
    for (i, transport) in transports.iter_mut().enumerate() {
        transport.wire(proxies[2 * i + 1].addr(), proxies[2 * i].addr());
    }

    let stop = Arc::new(AtomicBool::new(false));
    let log: Arc<Mutex<Vec<ActivityEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let snapshots: Vec<Arc<Mutex<Vec<u8>>>> =
        (0..n).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
    let poisons: Vec<Arc<Mutex<Option<Vec<u8>>>>> =
        (0..n).map(|_| Arc::new(Mutex::new(None))).collect();
    let frozens: Vec<Arc<AtomicBool>> = (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let watchdog_outbox: Arc<Mutex<Vec<WatchdogEvent>>> = Arc::new(Mutex::new(Vec::new()));
    // The budget reads `n` through a shared counter rather than capturing
    // it: the supervised cluster itself never resizes, but the same
    // watchdog serves the membership layer, where `n` changes live.
    let ring_size = Arc::new(std::sync::atomic::AtomicUsize::new(n));
    let watchdog = sup.watchdog.map(|w| Watchdog {
        budget: w.shared_budget(Arc::clone(&ring_size), cfg.tick),
        generation_bump: GENERATION_STRIDE,
        outbox: Arc::clone(&watchdog_outbox),
    });
    let start = Instant::now();
    let shared = CtlShared::new(n);
    let harness = Harness {
        algo: &algo,
        initial: &initial,
        cfg,
        node_cfg: NodeConfig { exec_delay: cfg.exec_delay, ..NodeConfig::default() },
        stop: Arc::clone(&stop),
        log: Arc::clone(&log),
        start,
        metrics: &metrics,
        snapshots: &snapshots,
        poisons: &poisons,
        frozens: &frozens,
        watchdog,
        proxies: &proxies,
        shared: Arc::clone(&shared),
        n,
    };

    let mut initial_active = Vec::with_capacity(n);
    let mut slots: Vec<Slot<A::State>> = Vec::with_capacity(n);
    for (i, transport) in transports.into_iter().enumerate() {
        let pred = (i + n - 1) % n;
        let succ = (i + 1) % n;
        let replica: Replica<A::State> =
            Replica::coherent(initial[i].clone(), initial[pred].clone(), initial[succ].clone());
        initial_active.push(replica.is_privileged(&algo, i));
        slots.push(harness.spawn_slot(i, replica, transport));
    }

    // The control plane reads through the same shared handles the ring
    // already maintains (atomics, snapshot mutexes, chaos handles); the
    // server thread exists only when a listener was passed in.
    let ctl_server = ctl.map(|listener| {
        let links = (0..n)
            .flat_map(|i| {
                [
                    LiveLink { from: i, to: (i + 1) % n, handle: proxies[2 * i].handle() },
                    LiveLink { from: i, to: (i + n - 1) % n, handle: proxies[2 * i + 1].handle() },
                ]
            })
            .collect();
        listener.serve(Arc::new(LivePlane::<A::State> {
            start,
            warmup: cfg.warmup,
            initial_active: initial_active.clone(),
            metrics: metrics.clone(),
            links,
            snapshots: snapshots.clone(),
            log: Arc::clone(&log),
            shared: Arc::clone(&shared),
            envelope: convergence_envelope(n, cfg.tick),
            state: std::marker::PhantomData,
        }))
    });

    let mut crash_counts = vec![0u32; n];
    let mut incarnations = vec![0u32; n];
    let mut pending_mode = vec![RestartMode::Amnesia; n];
    let mut restarts: Vec<RestartRecord> = Vec::new();
    let mut panics = 0usize;
    // Poison draws get a salt disjoint from restart incarnations so one
    // amnesia sampler serves both without ever repeating a state.
    let poison_seq = Cell::new(0u32);

    // Turn node-local watchdog escalations into recovery rows: each drained
    // event is recorded exactly like an applied fault, so `/status`, the
    // recovery table and the re-convergence verdict all see the ring
    // healing itself.
    let drain_watchdog = || {
        let events: Vec<WatchdogEvent> = mem::take(&mut *watchdog_outbox.lock());
        for ev in events {
            NodeMetrics::inc(&shared.watchdogs);
            shared
                .applied
                .lock()
                .push((FaultKind::Watchdog { node: ev.node, restart: ev.restart }, ev.at));
        }
    };

    // Restart any node whose thread died without being told to — a panic.
    // Treated as an unscheduled crash: amnesia restart with backoff.
    let scan_panics = |slots: &mut Vec<Slot<A::State>>,
                       crash_counts: &mut Vec<u32>,
                       incarnations: &mut Vec<u32>,
                       restarts: &mut Vec<RestartRecord>,
                       panics: &mut usize,
                       amnesia: &mut F|
     -> Result<(), ClusterError> {
        for i in 0..n {
            let died = matches!(&slots[i], Slot::Up { handle, .. } if handle.is_finished());
            if died && !stop.load(Ordering::Relaxed) {
                harness.crash(i, slots, panics);
                crash_counts[i] += 1;
                incarnations[i] += 1;
                let backoff = backoff_for(sup.backoff_base, sup.backoff_cap, crash_counts[i]);
                restarts.push(harness.restart(
                    i,
                    slots,
                    RestartMode::Amnesia,
                    incarnations[i],
                    backoff,
                    amnesia,
                )?);
            }
        }
        Ok(())
    };

    // Apply faults injected over HTTP (`POST /faults`). Unlike scheduled
    // events — which a validated schedule guarantees are consistent — an
    // injection races the ring's actual state, so each is applied only
    // where it still makes sense (crash an up node, restart a down one,
    // flip a partition that actually changes) and recorded with a recovery
    // window only when applied.
    let drain_injected = |slots: &mut Vec<Slot<A::State>>,
                          crash_counts: &mut Vec<u32>,
                          incarnations: &mut Vec<u32>,
                          pending_mode: &mut Vec<RestartMode>,
                          restarts: &mut Vec<RestartRecord>,
                          panics: &mut usize,
                          amnesia: &mut F|
     -> Result<(), ClusterError> {
        loop {
            let Some(fault) = shared.injected.lock().pop_front() else {
                return Ok(());
            };
            let applied_now = match fault {
                FaultKind::Crash { node, restart } => {
                    let up = matches!(slots[node], Slot::Up { .. });
                    if up {
                        harness.crash(node, slots, panics);
                        crash_counts[node] += 1;
                        pending_mode[node] = restart;
                    }
                    up
                }
                FaultKind::Restart { node } => {
                    let down = matches!(slots[node], Slot::Down { .. });
                    if down {
                        incarnations[node] += 1;
                        let backoff =
                            backoff_for(sup.backoff_base, sup.backoff_cap, crash_counts[node]);
                        restarts.push(harness.restart(
                            node,
                            slots,
                            pending_mode[node],
                            incarnations[node],
                            backoff,
                            amnesia,
                        )?);
                    }
                    down
                }
                FaultKind::Partition { from, to } => {
                    let proxy = &proxies[link_index(n, from, to)];
                    let flips = !proxy.is_partitioned();
                    proxy.set_partitioned(true);
                    flips
                }
                FaultKind::Heal { from, to } => {
                    let proxy = &proxies[link_index(n, from, to)];
                    let flips = proxy.is_partitioned();
                    proxy.set_partitioned(false);
                    flips
                }
                FaultKind::CorruptSnapshot { node } => {
                    corrupt_snapshot(&snapshots[node]);
                    true
                }
                FaultKind::CorruptState { node } => {
                    let up = matches!(slots[node], Slot::Up { .. });
                    if up {
                        let salt = 900 + poison_seq.get();
                        poison_seq.set(poison_seq.get() + 1);
                        *poisons[node].lock() = Some(amnesia(node, salt).snapshot());
                    }
                    up
                }
                FaultKind::FreezeNode { node } => {
                    let up = matches!(slots[node], Slot::Up { .. });
                    if up {
                        frozens[node].store(true, Ordering::Relaxed);
                    }
                    up
                }
                FaultKind::Babble { node } => harness.babble(node),
                // Watchdog rows are recorded by the runtime, never injected
                // (validate/inject both reject them), and membership events
                // need the re-splice layer; drop both defensively.
                FaultKind::Watchdog { .. } | FaultKind::Join { .. } | FaultKind::Leave { .. } => {
                    false
                }
            };
            if applied_now {
                shared.applied.lock().push((fault, start.elapsed()));
            }
        }
    };

    for ev in sup.schedule.events() {
        let target = Duration::from_millis(ev.at);
        loop {
            scan_panics(
                &mut slots,
                &mut crash_counts,
                &mut incarnations,
                &mut restarts,
                &mut panics,
                &mut amnesia,
            )?;
            drain_injected(
                &mut slots,
                &mut crash_counts,
                &mut incarnations,
                &mut pending_mode,
                &mut restarts,
                &mut panics,
                &mut amnesia,
            )?;
            drain_watchdog();
            let now = start.elapsed();
            if now >= target {
                break;
            }
            thread::sleep((target - now).min(Duration::from_millis(2)));
        }
        let at = start.elapsed();
        match ev.kind {
            FaultKind::Crash { node, restart } => {
                harness.crash(node, &mut slots, &mut panics);
                crash_counts[node] += 1;
                pending_mode[node] = restart;
            }
            FaultKind::Restart { node } => {
                if matches!(slots[node], Slot::Down { .. }) {
                    incarnations[node] += 1;
                    let backoff =
                        backoff_for(sup.backoff_base, sup.backoff_cap, crash_counts[node]);
                    restarts.push(harness.restart(
                        node,
                        &mut slots,
                        pending_mode[node],
                        incarnations[node],
                        backoff,
                        &mut amnesia,
                    )?);
                }
            }
            FaultKind::Partition { from, to } => {
                proxies[link_index(n, from, to)].set_partitioned(true);
            }
            FaultKind::Heal { from, to } => {
                proxies[link_index(n, from, to)].set_partitioned(false);
            }
            FaultKind::CorruptSnapshot { node } => {
                corrupt_snapshot(&snapshots[node]);
            }
            FaultKind::CorruptState { node } => {
                let salt = 900 + poison_seq.get();
                poison_seq.set(poison_seq.get() + 1);
                *poisons[node].lock() = Some(amnesia(node, salt).snapshot());
            }
            FaultKind::FreezeNode { node } => {
                frozens[node].store(true, Ordering::Relaxed);
            }
            FaultKind::Babble { node } => {
                harness.babble(node);
            }
            // Unreachable: `FaultSchedule::validate` rejects watchdog rows
            // and the membership pre-check above rejects join/leave.
            FaultKind::Watchdog { .. } | FaultKind::Join { .. } | FaultKind::Leave { .. } => {}
        }
        shared.applied.lock().push((ev.kind, at));
    }

    // Run out the clock (re-convergence time for the final window).
    loop {
        scan_panics(
            &mut slots,
            &mut crash_counts,
            &mut incarnations,
            &mut restarts,
            &mut panics,
            &mut amnesia,
        )?;
        drain_injected(
            &mut slots,
            &mut crash_counts,
            &mut incarnations,
            &mut pending_mode,
            &mut restarts,
            &mut panics,
            &mut amnesia,
        )?;
        drain_watchdog();
        let now = start.elapsed();
        if now >= cfg.duration {
            break;
        }
        thread::sleep((cfg.duration - now).min(Duration::from_millis(2)));
    }
    stop.store(true, Ordering::Relaxed);
    drop(harness); // releases its Arc clones so the log can be unwrapped

    let mut final_states = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Slot::Up { handle, .. } => match handle.join() {
                Ok((replica, transport)) => {
                    drop(transport);
                    final_states.push(replica.own);
                }
                Err(_) => {
                    panics += 1;
                    let own = Replica::<A::State>::from_snapshot(&snapshots[i].lock())
                        .map(|r| r.own)
                        .unwrap_or_else(|_| initial[i].clone());
                    final_states.push(own);
                }
            },
            Slot::Down { last_own, .. } => final_states.push(last_own),
        }
    }
    let observed = start.elapsed();

    // Stop the ctl server before unwrapping the log below: its thread owns
    // the plane, whose `Arc` clones of the log/registry die with it.
    drop(ctl_server);

    let mut chaos = ChaosSummary::default();
    for proxy in proxies {
        chaos.absorb(&proxy.shutdown());
    }

    let mut events = Arc::try_unwrap(log).expect("all threads joined").into_inner();
    events.sort_by_key(|e| e.at);

    let coverage = analyze(&initial_active, &events, observed, cfg.warmup);
    let stabilized_at = stabilization_time(&initial_active, &events, observed);
    let handover = handover_latencies(n, &events, cfg.warmup);
    let metrics = metrics.report(&handover);

    // Per-fault recovery: each applied fault owns the window up to the next
    // applied fault (or run end). Watchdog escalations that landed between
    // the last poll and the stop flag are collected first, and the whole
    // list is ordered by wall clock — node-local events drain with up to a
    // poll period of lag, so they can arrive slightly out of order.
    drain_watchdog();
    let mut applied = mem::take(&mut *shared.applied.lock());
    applied.sort_by_key(|&(_, at)| at);
    let mut rows = Vec::with_capacity(applied.len());
    let mut kinds = Vec::with_capacity(applied.len());
    for (index, &(kind, at)) in applied.iter().enumerate() {
        let window_end = applied.get(index + 1).map_or(observed, |&(_, next)| next);
        let recovery = recovery_in_window(&initial_active, &events, at, window_end);
        rows.push(FaultEventRow {
            index,
            at,
            label: kind.to_string(),
            window: window_end.saturating_sub(at),
            recovery,
        });
        kinds.push(kind);
    }

    Ok(SupervisedReport {
        cluster: ClusterReport {
            final_states,
            initial_active,
            events,
            observed,
            coverage,
            stabilized_at,
            metrics,
            chaos,
        },
        recovery: RecoveryReport { rows },
        kinds,
        restarts,
        panics,
        envelope: convergence_envelope(n, cfg.tick),
    })
}

/// Flip stored bytes of a persisted snapshot at rest (or plant garbage when
/// nothing was persisted yet) so the next snapshot-mode restart must detect
/// the damage and degrade to amnesia.
fn corrupt_snapshot(store: &Mutex<Vec<u8>>) {
    let mut bytes = store.lock();
    if bytes.is_empty() {
        bytes.extend_from_slice(b"not a snapshot");
    } else {
        for b in bytes.iter_mut().take(8) {
            *b ^= 0xA5;
        }
    }
}

/// Index into the proxy vector of the directed link `from → to`; `to` must
/// be a ring neighbour of `from` (validated schedules guarantee it).
fn link_index(n: usize, from: usize, to: usize) -> usize {
    if to == (from + 1) % n {
        2 * from
    } else {
        2 * from + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::SsrMin;

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(5);
        let cap = Duration::from_millis(60);
        assert_eq!(backoff_for(base, cap, 1), Duration::from_millis(5));
        assert_eq!(backoff_for(base, cap, 2), Duration::from_millis(10));
        assert_eq!(backoff_for(base, cap, 4), Duration::from_millis(40));
        assert_eq!(backoff_for(base, cap, 5), cap);
        assert_eq!(backoff_for(base, cap, 30), cap, "large counts must not overflow");
    }

    #[test]
    fn ssr_amnesia_is_deterministic_per_node_and_incarnation() {
        let params = RingParams::minimal(5).unwrap();
        let mut a = ssr_amnesia(params, 7);
        let mut b = ssr_amnesia(params, 7);
        assert_eq!(a(2, 1), b(2, 1));
        assert_ne!(a(2, 1), a(3, 1), "different nodes draw different states");
        let mut c = ssr_amnesia(params, 8);
        assert_ne!(a(2, 1), c(2, 1), "different seeds draw different states");
    }

    #[test]
    fn link_index_maps_both_directions() {
        assert_eq!(link_index(5, 2, 3), 4, "2 -> succ(2) is link 2*2");
        assert_eq!(link_index(5, 2, 1), 5, "2 -> pred(2) is link 2*2+1");
        assert_eq!(link_index(5, 4, 0), 8, "wraps around the ring");
        assert_eq!(link_index(5, 0, 4), 1);
    }

    #[test]
    fn empty_schedule_behaves_like_a_plain_run() {
        let algo = SsrMin::new(RingParams::minimal(3).unwrap());
        let sup = SupervisorConfig {
            cluster: ClusterConfig {
                seed: 11,
                duration: Duration::from_millis(400),
                warmup: Duration::from_millis(200),
                ..ClusterConfig::default()
            },
            ..SupervisorConfig::default()
        };
        let report = run_supervised_cluster(
            algo,
            algo.legitimate_anchor(0),
            sup,
            ssr_amnesia(algo.params(), 11),
        )
        .unwrap();
        assert!(report.recovery.rows.is_empty());
        assert!(report.restarts.is_empty());
        assert_eq!(report.panics, 0);
        assert!(report.reconverged());
        assert!(
            report.cluster.coverage.uncovered.is_zero(),
            "fault-free supervised run must keep continuous coverage"
        );
    }

    #[test]
    fn overlapping_fault_windows_exempt_the_mid_disruption_heal() {
        use RestartMode::Amnesia;
        // partition opens, node crashes, heal fires while the node is still
        // down, then the restart closes the last disruption.
        let kinds = [
            FaultKind::Partition { from: 1, to: 2 },
            FaultKind::Crash { node: 1, restart: Amnesia },
            FaultKind::Heal { from: 1, to: 2 },
            FaultKind::Restart { node: 1 },
        ];
        assert_eq!(
            restoration_points(&kinds),
            [false, false, false, true],
            "only the final restart restores full operation"
        );
        // Non-overlapping script: both the heal and the restart must
        // re-converge.
        let kinds = [
            FaultKind::Partition { from: 1, to: 2 },
            FaultKind::Heal { from: 1, to: 2 },
            FaultKind::Crash { node: 0, restart: Amnesia },
            FaultKind::Restart { node: 0 },
        ];
        assert_eq!(restoration_points(&kinds), [false, true, false, true]);
    }

    #[test]
    fn ssr_adversary_is_deterministic_and_holds_the_secondary_token() {
        let params = RingParams::minimal(5).unwrap();
        let mut a = ssr_adversary(params, 7);
        let mut b = ssr_adversary(params, 7);
        assert_eq!(a(2, 1), b(2, 1));
        for node in 0..5 {
            for salt in 0..4 {
                let replica = a(node, salt);
                assert!(replica.own.tra, "adversarial states always hold the secondary token");
                assert!(replica.own.x == 0 || replica.own.x == params.k() - 1);
                assert_ne!(
                    replica.own.x, replica.cache_pred.x,
                    "caches must disagree with the own counter"
                );
            }
        }
    }

    #[test]
    fn adversarial_kinds_are_restoration_points_only_when_ring_is_whole() {
        use RestartMode::Amnesia;
        // A corruption while a node is down must not demand re-convergence;
        // the same corruption on a whole ring must.
        let kinds = [
            FaultKind::Crash { node: 1, restart: Amnesia },
            FaultKind::CorruptState { node: 2 },
            FaultKind::Restart { node: 1 },
            FaultKind::Babble { node: 0 },
        ];
        assert_eq!(restoration_points(&kinds), [false, false, true, true]);
    }

    #[test]
    fn freeze_is_restored_by_watchdog_restart_or_scheduled_restart() {
        use RestartMode::Amnesia;
        // Watchdog rows never demand recovery themselves, but a stage-2
        // self-restart closes the freeze so later events must re-converge.
        let kinds = [
            FaultKind::FreezeNode { node: 2 },
            FaultKind::Watchdog { node: 2, restart: false },
            FaultKind::Watchdog { node: 2, restart: true },
            FaultKind::Babble { node: 0 },
        ];
        assert_eq!(restoration_points(&kinds), [false, false, false, true]);
        // A scheduled crash+restart also clears the freeze.
        let kinds = [
            FaultKind::FreezeNode { node: 2 },
            FaultKind::Crash { node: 2, restart: Amnesia },
            FaultKind::Restart { node: 2 },
        ];
        assert_eq!(restoration_points(&kinds), [false, false, true]);
    }

    #[test]
    fn watchdog_budget_and_envelope_scale_with_ring_and_tick() {
        let tick = Duration::from_millis(5);
        let wd = WatchdogConfig::default();
        // 3 * 5 * 16 = 240 steps at 5 ms = 1200 ms, above the floor.
        assert_eq!(wd.budget(5, tick), Duration::from_millis(1200));
        // Tiny rings/ticks are clamped to the floor.
        assert_eq!(
            WatchdogConfig { scale: 1, floor: Duration::from_millis(400) }.budget(3, tick),
            Duration::from_millis(400)
        );
        // Envelope: 4 * n^2 ticks.
        assert_eq!(convergence_envelope(5, tick), Duration::from_millis(500));
        assert!(convergence_envelope(10, tick) > convergence_envelope(5, tick));
    }

    #[test]
    fn schedule_validation_failures_surface_as_errors() {
        let algo = SsrMin::new(RingParams::minimal(3).unwrap());
        let sup = SupervisorConfig {
            schedule: FaultSchedule::new().with(10, FaultKind::Restart { node: 0 }),
            ..SupervisorConfig::default()
        };
        let err = run_supervised_cluster(
            algo,
            algo.legitimate_anchor(0),
            sup,
            ssr_amnesia(algo.params(), 0),
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::Schedule(_)), "{err}");
    }
}
