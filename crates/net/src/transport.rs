//! The datagram transport: a [`Transport`] abstraction plus its UDP
//! implementation over per-neighbour socket pairs.
//!
//! Semantics mirror the paper's links (and `ssr_mpnet::link`): CST messages
//! carry the sender's entire state, so only the *latest* state matters —
//! the sender keeps exactly one outbound state per direction and the
//! periodic retransmit timer (with jittered backoff) re-offers it until
//! something newer replaces it. Receivers drop datagrams whose generation
//! counter is not newer than the last accepted one from that sender, which
//! turns UDP's reordering and duplication into the paper's latest-state
//! coalescing.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ssr_core::WireState;

use crate::frame::{decode, encode, Frame};
use crate::metrics::NodeMetrics;

/// Which ring neighbour a message relates to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Neighbor {
    /// The ring predecessor `v_{i-1}`.
    Pred,
    /// The ring successor `v_{i+1}`.
    Succ,
}

/// A state received from a neighbour.
#[derive(Debug, Clone, PartialEq)]
pub struct Inbound<S> {
    /// Which neighbour sent it.
    pub from: Neighbor,
    /// The neighbour's state.
    pub state: S,
}

/// The transport a CST node runner drives: broadcast own state, pump the
/// retransmit timer, poll for neighbour states.
pub trait Transport<S> {
    /// Publish a new own state to both neighbours (replaces any pending
    /// retransmission).
    fn publish(&mut self, state: &S) -> io::Result<()>;

    /// Give the transport CPU: retransmit the latest state if the jittered
    /// timer expired.
    fn pump(&mut self) -> io::Result<()>;

    /// Non-blocking poll for the next accepted inbound state.
    fn try_recv(&mut self) -> Option<Inbound<S>>;
}

/// One direction of the node's connectivity: a socket plus the peer (or
/// chaos proxy) address it sends to.
#[derive(Debug)]
struct LinkEnd {
    socket: UdpSocket,
    /// Where `publish` sends to — the neighbour's opposite link end, or a
    /// chaos proxy standing in front of it.
    peer: SocketAddr,
    /// Ring index expected in frames arriving on this socket.
    expect_sender: u16,
    /// Highest generation accepted from that sender (staleness filter).
    last_generation: Option<u32>,
}

/// [`Transport`] over real UDP sockets on per-neighbour socket pairs.
///
/// Construction is two-phase because ring wiring needs every node's socket
/// addresses before any peer can be set: [`UdpTransport::bind`] first, then
/// [`UdpTransport::wire`].
#[derive(Debug)]
pub struct UdpTransport<S> {
    me: u16,
    pred: LinkEnd,
    succ: LinkEnd,
    latest: Option<S>,
    generation: u32,
    retransmit_base: Duration,
    next_retransmit: Instant,
    rng: StdRng,
    metrics: Arc<NodeMetrics>,
    recv_buf: Vec<u8>,
}

/// The two local socket addresses of a bound, not-yet-wired transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalAddrs {
    /// Address of the socket facing the predecessor.
    pub pred: SocketAddr,
    /// Address of the socket facing the successor.
    pub succ: SocketAddr,
}

impl<S: WireState> UdpTransport<S> {
    /// Bind both link sockets on the loopback interface with OS-assigned
    /// ports. `retransmit` is the base period of the CST timer; actual
    /// periods are jittered uniformly in `[0.5, 1.5] * retransmit` to
    /// de-synchronize the ring.
    pub fn bind(
        me: u16,
        pred_index: u16,
        succ_index: u16,
        retransmit: Duration,
        seed: u64,
        metrics: Arc<NodeMetrics>,
    ) -> io::Result<Self> {
        let mk = |expect_sender: u16| -> io::Result<LinkEnd> {
            let socket = UdpSocket::bind("127.0.0.1:0")?;
            socket.set_nonblocking(true)?;
            Ok(LinkEnd {
                peer: socket.local_addr()?, // placeholder until `wire`
                socket,
                expect_sender,
                last_generation: None,
            })
        };
        Ok(UdpTransport {
            me,
            pred: mk(pred_index)?,
            succ: mk(succ_index)?,
            latest: None,
            generation: 0,
            retransmit_base: retransmit,
            next_retransmit: Instant::now(),
            rng: StdRng::seed_from_u64(seed),
            metrics,
            recv_buf: vec![0u8; 64 * 1024],
        })
    }

    /// The local addresses neighbours (or proxies) must send to.
    pub fn local_addrs(&self) -> io::Result<LocalAddrs> {
        Ok(LocalAddrs {
            pred: self.pred.socket.local_addr()?,
            succ: self.succ.socket.local_addr()?,
        })
    }

    /// Set the destination addresses: where states for the predecessor and
    /// the successor are sent (directly their link ends, or chaos proxies).
    pub fn wire(&mut self, pred_peer: SocketAddr, succ_peer: SocketAddr) {
        self.pred.peer = pred_peer;
        self.succ.peer = succ_peer;
    }

    /// Jump the send-side generation counter forward to at least `floor`.
    ///
    /// A node restarted on a *fresh* transport (its old sockets died with a
    /// panicked thread) would otherwise start again at generation 0, and the
    /// neighbours' staleness filters — which only accept generations in the
    /// forward half of the u32 circle — would discard everything it sends.
    /// The supervisor overshoots past anything the old incarnation can have
    /// sent.
    pub fn advance_generation_to(&mut self, floor: u32) {
        self.generation = self.generation.max(floor);
    }

    fn send_both(&mut self, retransmission: bool) -> io::Result<()> {
        let Some(state) = &self.latest else {
            return Ok(());
        };
        // A fresh generation per datagram keeps retransmissions from being
        // mistaken for stale duplicates by the receiver's filter.
        for end in [&self.pred, &self.succ] {
            self.generation = self.generation.wrapping_add(1);
            let buf = encode(self.me, self.generation, state);
            match end.socket.send_to(&buf, end.peer) {
                Ok(_) => {
                    NodeMetrics::inc(&self.metrics.sends);
                    if retransmission {
                        NodeMetrics::inc(&self.metrics.retransmits);
                    }
                }
                // A neighbour that is not up yet (or a full socket buffer)
                // is indistinguishable from loss; the timer will retry.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {}
                Err(e) => return Err(e),
            }
        }
        // Live-introspection gauge: the last generation this node stamped.
        NodeMetrics::set(&self.metrics.generation, u64::from(self.generation));
        self.schedule_retransmit();
        Ok(())
    }

    fn schedule_retransmit(&mut self) {
        let base = self.retransmit_base.as_micros().max(1) as u64;
        let jittered = self.rng.random_range((base / 2).max(1)..=base + base / 2);
        self.next_retransmit = Instant::now() + Duration::from_micros(jittered);
    }

    fn poll_end(
        end: &mut LinkEnd,
        from: Neighbor,
        buf: &mut [u8],
        metrics: &NodeMetrics,
    ) -> Option<Inbound<S>> {
        loop {
            let len = match end.socket.recv_from(buf) {
                Ok((len, _)) => len,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return None,
                Err(_) => return None,
            };
            match decode::<S>(&buf[..len]) {
                Ok(Frame { sender, generation, state }) => {
                    if sender != end.expect_sender {
                        // Mis-wired or spoofed: not from the ring neighbour
                        // this socket belongs to.
                        NodeMetrics::inc(&metrics.decode_errors);
                        continue;
                    }
                    // Newer iff the wrapping distance from the last accepted
                    // generation is in the forward half of the u32 circle.
                    let stale = end.last_generation.is_some_and(|last| {
                        let delta = generation.wrapping_sub(last);
                        delta == 0 || delta > u32::MAX / 2
                    });
                    if stale {
                        NodeMetrics::inc(&metrics.stale_drops);
                        continue;
                    }
                    end.last_generation = Some(generation);
                    NodeMetrics::inc(&metrics.receives);
                    return Some(Inbound { from, state });
                }
                Err(_) => {
                    NodeMetrics::inc(&metrics.decode_errors);
                    continue;
                }
            }
        }
    }
}

impl<S: WireState + Clone> Transport<S> for UdpTransport<S> {
    fn publish(&mut self, state: &S) -> io::Result<()> {
        self.latest = Some(state.clone());
        self.send_both(false)
    }

    fn pump(&mut self) -> io::Result<()> {
        if self.latest.is_some() && Instant::now() >= self.next_retransmit {
            self.send_both(true)?;
        }
        Ok(())
    }

    fn try_recv(&mut self) -> Option<Inbound<S>> {
        if let Some(got) =
            Self::poll_end(&mut self.pred, Neighbor::Pred, &mut self.recv_buf, &self.metrics)
        {
            return Some(got);
        }
        Self::poll_end(&mut self.succ, Neighbor::Succ, &mut self.recv_buf, &self.metrics)
    }
}
