//! The datagram transport: a [`Transport`] abstraction plus its UDP
//! implementation over per-neighbour socket pairs.
//!
//! Semantics mirror the paper's links (and `ssr_mpnet::link`): CST messages
//! carry the sender's entire state, so only the *latest* state matters —
//! the sender keeps exactly one outbound state per direction and the
//! periodic retransmit timer (with jittered backoff) re-offers it until
//! something newer replaces it. Receivers drop datagrams whose generation
//! counter is not newer than the last accepted one from that sender, which
//! turns UDP's reordering and duplication into the paper's latest-state
//! coalescing.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ssr_core::WireState;

use crate::frame::{decode, encode, encode_tenant, Frame};
use crate::metrics::NodeMetrics;

/// Which ring neighbour a message relates to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Neighbor {
    /// The ring predecessor `v_{i-1}`.
    Pred,
    /// The ring successor `v_{i+1}`.
    Succ,
}

/// A state received from a neighbour.
#[derive(Debug, Clone, PartialEq)]
pub struct Inbound<S> {
    /// Which neighbour sent it.
    pub from: Neighbor,
    /// The neighbour's state.
    pub state: S,
}

/// The transport a CST node runner drives: broadcast own state, pump the
/// retransmit timer, poll for neighbour states.
pub trait Transport<S> {
    /// Publish a new own state to both neighbours (replaces any pending
    /// retransmission).
    fn publish(&mut self, state: &S) -> io::Result<()>;

    /// Give the transport CPU: retransmit the latest state if the jittered
    /// timer expired.
    fn pump(&mut self) -> io::Result<()>;

    /// Non-blocking poll for the next accepted inbound state.
    fn try_recv(&mut self) -> Option<Inbound<S>>;

    /// Jump the send-side freshness counter forward by `bump`, if the
    /// transport has one. A node performing a watchdog *self*-restart keeps
    /// its sockets (unlike a supervisor restart) but must still overshoot
    /// its neighbours' staleness filters past anything its pre-restart self
    /// can have sent. Default: no-op, for transports without generations.
    fn bump_generation(&mut self, _bump: u32) {}
}

/// One direction of the node's connectivity: a socket plus the peer (or
/// chaos proxy) address it sends to.
#[derive(Debug)]
struct LinkEnd {
    socket: UdpSocket,
    /// Where `publish` sends to — the neighbour's opposite link end, or a
    /// chaos proxy standing in front of it.
    peer: SocketAddr,
    /// Ring index expected in frames arriving on this socket.
    expect_sender: u16,
    /// Highest generation accepted from that sender (staleness filter).
    last_generation: Option<u32>,
}

/// [`Transport`] over real UDP sockets on per-neighbour socket pairs.
///
/// Construction is two-phase because ring wiring needs every node's socket
/// addresses before any peer can be set: [`UdpTransport::bind`] first, then
/// [`UdpTransport::wire`].
#[derive(Debug)]
pub struct UdpTransport<S> {
    me: u16,
    /// Ring (tenant) id stamped on outgoing frames and required on incoming
    /// ones. Tenant 0 — the single-ring default — keeps the version-1 wire
    /// format byte-for-byte; any other tenant switches to version-2 frames.
    tenant: u16,
    pred: LinkEnd,
    succ: LinkEnd,
    latest: Option<S>,
    generation: u32,
    retransmit_base: Duration,
    next_retransmit: Instant,
    /// Exponent of the retransmit backoff: consecutive retransmissions with
    /// no accepted inbound datagram stretch the period by `2^exp` (capped),
    /// so a dead or partitioned neighbourhood is probed, not hammered. Any
    /// accepted receive — the CST equivalent of an ACK — resets it.
    backoff_exp: u32,
    rng: StdRng,
    metrics: Arc<NodeMetrics>,
    recv_buf: Vec<u8>,
}

/// Cap of the retransmit backoff exponent: the period never stretches past
/// `2^MAX_BACKOFF_EXP` (32×) the configured base, so a healed link is
/// re-probed within a bounded interval.
const MAX_BACKOFF_EXP: u32 = 5;

/// The two local socket addresses of a bound, not-yet-wired transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalAddrs {
    /// Address of the socket facing the predecessor.
    pub pred: SocketAddr,
    /// Address of the socket facing the successor.
    pub succ: SocketAddr,
}

impl<S: WireState> UdpTransport<S> {
    /// Bind both link sockets on the loopback interface with OS-assigned
    /// ports. `retransmit` is the base period of the CST timer; actual
    /// periods are jittered uniformly in `[0.5, 1.5] * retransmit` to
    /// de-synchronize the ring.
    pub fn bind(
        me: u16,
        pred_index: u16,
        succ_index: u16,
        retransmit: Duration,
        seed: u64,
        metrics: Arc<NodeMetrics>,
    ) -> io::Result<Self> {
        let mk = |expect_sender: u16| -> io::Result<LinkEnd> {
            let socket = UdpSocket::bind("127.0.0.1:0")?;
            socket.set_nonblocking(true)?;
            Ok(LinkEnd {
                peer: socket.local_addr()?, // placeholder until `wire`
                socket,
                expect_sender,
                last_generation: None,
            })
        };
        Ok(UdpTransport {
            me,
            tenant: 0,
            pred: mk(pred_index)?,
            succ: mk(succ_index)?,
            latest: None,
            generation: 0,
            retransmit_base: retransmit,
            next_retransmit: Instant::now(),
            backoff_exp: 0,
            rng: StdRng::seed_from_u64(seed),
            metrics,
            recv_buf: vec![0u8; 64 * 1024],
        })
    }

    /// The local addresses neighbours (or proxies) must send to.
    pub fn local_addrs(&self) -> io::Result<LocalAddrs> {
        Ok(LocalAddrs {
            pred: self.pred.socket.local_addr()?,
            succ: self.succ.socket.local_addr()?,
        })
    }

    /// Set the destination addresses: where states for the predecessor and
    /// the successor are sent (directly their link ends, or chaos proxies).
    pub fn wire(&mut self, pred_peer: SocketAddr, succ_peer: SocketAddr) {
        self.pred.peer = pred_peer;
        self.succ.peer = succ_peer;
    }

    /// Join ring `tenant`: outgoing frames are stamped with it and inbound
    /// frames from any other tenant are dropped (counted in
    /// `tenant_drops`). The multi-tenant mux of `ssr-serve` — sockets are
    /// per-ring anyway, so this is the defence against mis-wired proxies or
    /// stale peers delivering another ring's traffic.
    pub fn set_tenant(&mut self, tenant: u16) {
        self.tenant = tenant;
    }

    /// The ring (tenant) id this transport is joined to.
    pub fn tenant(&self) -> u16 {
        self.tenant
    }

    /// Re-point one link end at a new ring neighbour — the membership
    /// re-splice. `side` names the direction being re-spliced, `expect` the
    /// new neighbour's ring (slot) index, and `peer` where this end now
    /// sends to (the new neighbour's opposite link end, or a chaos proxy in
    /// front of it). The staleness filter is reset: the new neighbour's
    /// generation counter is unrelated to the old one's, so the first frame
    /// from it must be accepted — while in-flight frames from the departed
    /// neighbour still die on the `expect` sender check.
    pub fn resplice(&mut self, side: Neighbor, expect: u16, peer: SocketAddr) {
        let end = match side {
            Neighbor::Pred => &mut self.pred,
            Neighbor::Succ => &mut self.succ,
        };
        end.expect_sender = expect;
        end.peer = peer;
        end.last_generation = None;
    }

    /// Jump the send-side generation counter forward to at least `floor`.
    ///
    /// A node restarted on a *fresh* transport (its old sockets died with a
    /// panicked thread) would otherwise start again at generation 0, and the
    /// neighbours' staleness filters — which only accept generations in the
    /// forward half of the u32 circle — would discard everything it sends.
    /// The supervisor overshoots past anything the old incarnation can have
    /// sent.
    pub fn advance_generation_to(&mut self, floor: u32) {
        self.generation = self.generation.max(floor);
    }

    fn send_both(&mut self, retransmission: bool) -> io::Result<()> {
        let Some(state) = &self.latest else {
            return Ok(());
        };
        // A fresh generation per datagram keeps retransmissions from being
        // mistaken for stale duplicates by the receiver's filter.
        for end in [&self.pred, &self.succ] {
            self.generation = self.generation.wrapping_add(1);
            let buf = if self.tenant == 0 {
                encode(self.me, self.generation, state)
            } else {
                encode_tenant(self.tenant, self.me, self.generation, state)
            };
            match end.socket.send_to(&buf, end.peer) {
                Ok(_) => {
                    NodeMetrics::inc(&self.metrics.sends);
                    if retransmission {
                        NodeMetrics::inc(&self.metrics.retransmits);
                    }
                }
                // A neighbour that is not up yet (or a full socket buffer)
                // is indistinguishable from loss; the timer will retry.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {}
                Err(e) => return Err(e),
            }
        }
        // Live-introspection gauge: the last generation this node stamped.
        NodeMetrics::set(&self.metrics.generation, u64::from(self.generation));
        self.schedule_retransmit();
        Ok(())
    }

    fn schedule_retransmit(&mut self) {
        // The jitter window scales with the backed-off period, keeping the
        // ring de-synchronized at every backoff stage.
        let mult = 1u64 << self.backoff_exp.min(MAX_BACKOFF_EXP);
        let base = (self.retransmit_base.as_micros().max(1) as u64).saturating_mul(mult);
        let jittered = self.rng.random_range((base / 2).max(1)..=base + base / 2);
        self.next_retransmit = Instant::now() + Duration::from_micros(jittered);
    }

    fn poll_end(
        end: &mut LinkEnd,
        from: Neighbor,
        tenant: u16,
        buf: &mut [u8],
        metrics: &NodeMetrics,
    ) -> Option<Inbound<S>> {
        loop {
            let len = match end.socket.recv_from(buf) {
                Ok((len, _)) => len,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return None,
                Err(_) => return None,
            };
            match decode::<S>(&buf[..len]) {
                Ok(Frame { tenant: frame_tenant, sender, generation, state }) => {
                    if frame_tenant != tenant {
                        // Another ring's traffic: well-formed, wrong tenant.
                        NodeMetrics::inc(&metrics.tenant_drops);
                        continue;
                    }
                    if sender != end.expect_sender {
                        // Mis-wired or spoofed: not from the ring neighbour
                        // this socket belongs to.
                        NodeMetrics::inc(&metrics.decode_errors);
                        continue;
                    }
                    // Newer iff the wrapping distance from the last accepted
                    // generation is in the forward half of the u32 circle.
                    let stale = end.last_generation.is_some_and(|last| {
                        let delta = generation.wrapping_sub(last);
                        delta == 0 || delta > u32::MAX / 2
                    });
                    if stale {
                        NodeMetrics::inc(&metrics.stale_drops);
                        continue;
                    }
                    end.last_generation = Some(generation);
                    NodeMetrics::inc(&metrics.receives);
                    return Some(Inbound { from, state });
                }
                Err(_) => {
                    NodeMetrics::inc(&metrics.decode_errors);
                    continue;
                }
            }
        }
    }
}

impl<S: WireState + Clone> Transport<S> for UdpTransport<S> {
    fn publish(&mut self, state: &S) -> io::Result<()> {
        self.latest = Some(state.clone());
        self.send_both(false)
    }

    fn pump(&mut self) -> io::Result<()> {
        if self.latest.is_some() && Instant::now() >= self.next_retransmit {
            // Each retransmission into silence stretches the next period;
            // the accepted-receive reset in `try_recv` undoes it.
            self.backoff_exp = (self.backoff_exp + 1).min(MAX_BACKOFF_EXP);
            self.send_both(true)?;
        }
        Ok(())
    }

    fn try_recv(&mut self) -> Option<Inbound<S>> {
        let tenant = self.tenant;
        let got = Self::poll_end(
            &mut self.pred,
            Neighbor::Pred,
            tenant,
            &mut self.recv_buf,
            &self.metrics,
        )
        .or_else(|| {
            Self::poll_end(
                &mut self.succ,
                Neighbor::Succ,
                tenant,
                &mut self.recv_buf,
                &self.metrics,
            )
        });
        if got.is_some() && self.backoff_exp != 0 {
            // First accepted datagram after a silent spell: the neighbour
            // is alive again — resume the base cadence AND pull the
            // already-scheduled (backed-off) deadline back in, otherwise one
            // stretched period would linger after every reset.
            self.backoff_exp = 0;
            self.schedule_retransmit();
        }
        got
    }

    fn bump_generation(&mut self, bump: u32) {
        self.generation = self.generation.wrapping_add(bump);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transport(retransmit: Duration) -> (UdpTransport<u32>, UdpSocket) {
        let metrics = Arc::new(NodeMetrics::default());
        let mut t = UdpTransport::<u32>::bind(0, 1, 1, retransmit, 1, metrics).unwrap();
        // A sink socket stands in for both neighbours; it never replies.
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        let sink_addr = sink.local_addr().unwrap();
        t.wire(sink_addr, sink_addr);
        (t, sink)
    }

    /// Silent-neighbour policy: every retransmission into silence stretches
    /// the period, up to the 32× cap — a dead link is probed, not hammered.
    #[test]
    fn retransmit_backoff_grows_to_the_cap_while_silent() {
        let (mut t, _sink) = transport(Duration::from_micros(500));
        t.publish(&7u32).unwrap();
        assert_eq!(t.backoff_exp, 0, "a fresh publish is not a retransmission");
        let deadline = Instant::now() + Duration::from_secs(2);
        while t.backoff_exp < MAX_BACKOFF_EXP && Instant::now() < deadline {
            t.pump().unwrap();
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(t.backoff_exp, MAX_BACKOFF_EXP, "backoff must reach and hold the cap");
        // The scheduled period is now in the backed-off range, well past the
        // base's maximum jitter (1.5 × 500µs).
        let gap = t.next_retransmit.saturating_duration_since(Instant::now());
        assert!(gap > Duration::from_micros(750), "period not backed off: {gap:?}");
    }

    /// The first *accepted* inbound datagram — the CST equivalent of an ACK
    /// — resets the backoff to the base cadence.
    #[test]
    fn accepted_receive_resets_the_backoff() {
        let (mut t, _sink) = transport(Duration::from_micros(500));
        t.publish(&7u32).unwrap();
        for _ in 0..200 {
            t.pump().unwrap();
            if t.backoff_exp >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_micros(300));
        }
        assert!(t.backoff_exp >= 2, "backoff must have started");

        let peer = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addrs = t.local_addrs().unwrap();
        peer.send_to(&encode(1u16, 5u32, &42u32), addrs.pred).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        let got = loop {
            if let Some(got) = t.try_recv() {
                break got;
            }
            assert!(Instant::now() < deadline, "inbound datagram never accepted");
            std::thread::sleep(Duration::from_micros(100));
        };
        assert_eq!(got.state, 42);
        assert_eq!(t.backoff_exp, 0, "an accepted receive resets the backoff");
    }

    /// A rejected datagram (wrong sender) does NOT reset the backoff: only
    /// an accepted neighbour state counts as liveness.
    #[test]
    fn rejected_datagrams_do_not_reset_the_backoff() {
        let (mut t, _sink) = transport(Duration::from_micros(500));
        t.publish(&7u32).unwrap();
        for _ in 0..200 {
            t.pump().unwrap();
            if t.backoff_exp >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_micros(300));
        }
        let exp = t.backoff_exp;
        assert!(exp >= 2);

        let peer = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addrs = t.local_addrs().unwrap();
        // Sender index 9 is not the expected neighbour on either socket.
        peer.send_to(&encode(9u16, 5u32, &42u32), addrs.pred).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(t.try_recv(), None, "mis-addressed frame must be rejected");
        assert_eq!(t.backoff_exp, exp, "rejected frames are not ACKs");
    }

    /// Frames carrying another ring's tenant id — including v1 frames,
    /// which are tenant 0 — are dropped before the sender and staleness
    /// checks: the multi-tenant mux.
    #[test]
    fn tenant_mismatch_is_dropped() {
        use crate::frame::encode_tenant;
        let (mut t, _sink) = transport(Duration::from_millis(50));
        t.set_tenant(3);
        assert_eq!(t.tenant(), 3);
        let peer = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addrs = t.local_addrs().unwrap();
        peer.send_to(&encode_tenant(4u16, 1u16, 5u32, &42u32), addrs.pred).unwrap();
        peer.send_to(&encode(1u16, 6u32, &41u32), addrs.pred).unwrap();
        peer.send_to(&encode_tenant(3u16, 1u16, 7u32, &40u32), addrs.pred).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        let got = loop {
            if let Some(got) = t.try_recv() {
                break got;
            }
            assert!(Instant::now() < deadline, "own-tenant frame never accepted");
            std::thread::sleep(Duration::from_micros(100));
        };
        assert_eq!(got.state, 40, "only the own-tenant frame may be accepted");
        assert_eq!(NodeMetrics::get(&t.metrics.tenant_drops), 2);
        assert_eq!(t.try_recv(), None);
    }

    /// A tenant-joined transport stamps its tenant on the wire in v2 frames
    /// (tenant 0 keeps the v1 format byte-for-byte).
    #[test]
    fn publish_stamps_the_tenant() {
        use crate::frame::VERSION_TENANT;
        let (mut t, sink) = transport(Duration::from_millis(50));
        t.set_tenant(9);
        t.publish(&5u32).unwrap();
        let mut buf = [0u8; 128];
        sink.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let (len, _) = sink.recv_from(&mut buf).unwrap();
        assert_eq!(buf[2], VERSION_TENANT);
        assert_eq!(decode::<u32>(&buf[..len]).unwrap().tenant, 9);
    }

    /// `bump_generation` jumps the stamped generation forward so post-bump
    /// frames pass a receiver's staleness filter.
    #[test]
    fn bump_generation_overshoots_the_staleness_filter() {
        let (mut t, sink) = transport(Duration::from_millis(50));
        t.publish(&1u32).unwrap();
        let before = t.generation;
        t.bump_generation(1 << 24);
        assert_eq!(t.generation, before.wrapping_add(1 << 24));
        t.publish(&2u32).unwrap();
        // Both publishes delivered datagrams to the sink; the post-bump ones
        // must carry generations past the jump.
        let mut buf = [0u8; 128];
        let mut max_gen = 0u32;
        sink.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
        while let Ok((len, _)) = sink.recv_from(&mut buf) {
            max_gen = max_gen.max(decode::<u32>(&buf[..len]).unwrap().generation);
        }
        assert!(max_gen > before, "post-bump frames carry the jumped generation: {max_gen}");
        assert!(max_gen >= 1 << 24, "the jump is visible on the wire: {max_gen}");
    }
}
