//! # ssr-net — real UDP socket transport for CST rings
//!
//! The discrete-event simulator (`ssr-mpnet`) and the threaded channel
//! runtime (`ssr-runtime`) both *model* the paper's message-passing system.
//! This crate runs it for real: every node is a thread with its own UDP
//! sockets, every CST state broadcast is a datagram with a versioned,
//! checksummed wire format, and faults are injected by an actual
//! store-and-forward proxy rather than by flipping a simulator branch.
//!
//! Layers, bottom up:
//!
//! * [`frame`] — the wire codec: magic, version, payload kind, sender,
//!   generation counter, length, CRC-32; payload encoding comes from
//!   [`ssr_core::WireState`]. Decoding is total — corruption yields a
//!   [`frame::CodecError`], never a panic.
//! * [`transport`] — the [`transport::Transport`] trait and its UDP
//!   implementation on per-neighbour socket pairs, with jittered periodic
//!   retransmission and receiver-side latest-state (generation) filtering —
//!   the paper's single-capacity coalescing links over real sockets.
//! * [`chaos`] — a seeded per-link proxy dropping (i.i.d. and
//!   Gilbert–Elliott burst, via [`ssr_mpnet::loss`]), delaying, duplicating,
//!   reordering, byte-corrupting and truncating datagrams (the last two
//!   exercising the codec's CRC rejection path on the wire).
//! * [`runner`] — the per-node thread driving the shared
//!   [`ssr_core::Replica`] over a transport (Algorithm 4 on sockets), with
//!   an optional per-node convergence watchdog (resync, then amnesia
//!   self-restart) escalating when token handover starves past the
//!   Lemma 5 `3n`-step budget.
//! * [`metrics`] — per-node atomic counters (sends, retransmits, rule
//!   firings, ...) rendered as CSV or an ASCII table.
//! * [`audit`] — live (ℓ,k)-critical-section auditing: replays the
//!   activity stream against an [`ssr_core::CsSpec`], measuring satisfied
//!   vs violating time and counting violation episodes — incrementally for
//!   `ssr-serve`'s per-tenant `cs_violations_total`, or post-hoc over a
//!   recorded trace for `ssrmin soak`.
//! * [`cluster`] — orchestration: bind, wire (optionally through chaos
//!   proxies), run, observe; reports convergence time, handover latency
//!   and the token-count invariant on wall clocks.
//! * [`supervisor`] — fault-injected runs driven by an
//!   [`ssr_mpnet::FaultSchedule`]: crash/restart with exponential backoff
//!   (amnesia or CRC-checked snapshot restore), runtime link partitions,
//!   adversarial state corruption / rule-engine freezes / stale babble
//!   bursts, and per-fault recovery-time measurement checked against the
//!   Theorem 2 `O(n^2)` stabilization envelope.
//! * [`membership`] — live ring resizing: a [`membership::RingMembership`]
//!   host where join and leave are first-class runtime operations, realized
//!   as a park → re-splice → cache-seed → relaunch handshake between a
//!   member and its two neighbours, with stable slot ids, a liveness-timeout
//!   reaper for crashed-forever members, and watchdog budgets that rescale
//!   to the live ring size through [`runner::SharedBudget`].
//! * `ctl` (via [`supervisor::run_supervised_cluster_with_ctl`]) — the
//!   live control plane: an embedded `ssr-ctl` HTTP server exposing
//!   `/metrics`, `/status` and `/top` from the running ring's counters and
//!   accepting runtime chaos adjustments and fault injections.
//!
//! ```no_run
//! use ssr_core::{RingParams, SsrMin};
//! use ssr_net::{run_cluster, ClusterConfig};
//!
//! let algo = SsrMin::new(RingParams::minimal(5).unwrap());
//! let report =
//!     run_cluster(algo, algo.legitimate_anchor(0), ClusterConfig::default()).unwrap();
//! assert!(report.continuous()); // P9 over real UDP
//! println!("{}", report.metrics.to_ascii());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod chaos;
pub mod cluster;
pub(crate) mod ctl;
pub mod frame;
pub mod membership;
pub mod metrics;
pub mod runner;
pub mod supervisor;
pub mod transport;

pub use audit::{audit_trace, TraceAuditor, TraceCsAudit};
pub use chaos::{
    ChaosConfig, ChaosCounters, ChaosHandle, ChaosProxy, ChaosStats, InvalidChaosConfig,
};
pub use cluster::{run_cluster, ChaosSummary, ClusterConfig, ClusterError, ClusterReport};
pub use frame::{crc32, decode, encode, encode_tenant, CodecError, Frame};
pub use membership::{FallbackConfig, MembershipConfig, MembershipError, RingMembership};
pub use metrics::{
    FaultEventRow, MetricsRegistry, MetricsReport, NodeMetrics, NodeMetricsRow, RecoveryHistogram,
    RecoveryReport,
};
pub use runner::{run_node, NodeConfig, NodeControl, SharedBudget, Watchdog, WatchdogEvent};
pub use supervisor::{
    convergence_envelope, run_supervised_cluster, run_supervised_cluster_with_ctl, ssr_adversary,
    ssr_amnesia, RestartRecord, SupervisedReport, SupervisorConfig, WatchdogConfig,
};
pub use transport::{Inbound, LocalAddrs, Neighbor, Transport, UdpTransport};
