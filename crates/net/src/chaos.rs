//! A seeded chaos proxy for one directed UDP link.
//!
//! The proxy binds its own loopback socket; the sender is pointed at the
//! proxy instead of the real destination, and the proxy forwards datagrams
//! subject to a seeded fault process: i.i.d. and Gilbert–Elliott burst loss
//! (the exact [`ssr_mpnet::loss::LossChannel`] the discrete-event simulator
//! uses), uniform random delay, duplication and reordering. Two runs with
//! equal seeds draw identical fault decisions.
//!
//! On top of the seeded process the proxy supports two *runtime* controls
//! used by the fault supervisor (`crate::supervisor`):
//!
//! * [`ChaosProxy::set_partitioned`] — a time-windowed 100% loss switch for
//!   this directed link (datagrams already delayed in flight still arrive,
//!   like packets that left the wire before the cut);
//! * [`ChaosProxy::set_dst`] — re-aim the forwarding destination, needed
//!   when a crashed node comes back on fresh sockets.

use std::fmt;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ssr_mpnet::loss::{GilbertElliott, LossChannel};

/// Why a [`ChaosConfig`] is not executable.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidChaosConfig(String);

impl fmt::Display for InvalidChaosConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid chaos config: {}", self.0)
    }
}

impl std::error::Error for InvalidChaosConfig {}

/// Fault knobs of one proxied link (mirrors the simulator's fault model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// RNG seed of this link's fault process.
    pub seed: u64,
    /// Good-state (i.i.d.) loss probability.
    pub loss: f64,
    /// Optional Gilbert–Elliott burst overlay.
    pub burst: Option<GilbertElliott>,
    /// Forwarding delay drawn uniformly from this range per datagram.
    pub delay: (Duration, Duration),
    /// Probability that a forwarded datagram is sent twice.
    pub duplicate: f64,
    /// Probability that a datagram's delay is re-drawn from a doubled
    /// range, letting later datagrams overtake it (reordering).
    pub reorder: f64,
    /// Probability that a forwarded datagram has one random byte XOR'd with
    /// a random non-zero value — a wire bit-error the CRC-32 codec must
    /// reject (a one-byte change cannot preserve the checksum).
    pub corrupt: f64,
    /// Probability that a forwarded datagram is cut to a random strictly
    /// shorter prefix (possibly empty) — a fragmentation/MTU-style wire
    /// error the codec's length checks must reject.
    pub truncate: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            loss: 0.0,
            burst: None,
            delay: (Duration::ZERO, Duration::ZERO),
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            truncate: 0.0,
        }
    }
}

impl ChaosConfig {
    /// Check every knob is executable: probabilities in `[0, 1]` (including
    /// the burst overlay's), `delay.0 <= delay.1`. [`ChaosProxy::spawn`]
    /// rejects invalid configs, mirroring the CLI-side validation, so a
    /// typo'd probability fails fast instead of silently misbehaving.
    pub fn validate(&self) -> Result<(), InvalidChaosConfig> {
        let prob = |name: &str, p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(InvalidChaosConfig(format!("{name} must be a probability in [0, 1], got {p}")))
            }
        };
        prob("loss", self.loss)?;
        prob("duplicate", self.duplicate)?;
        prob("reorder", self.reorder)?;
        prob("corrupt", self.corrupt)?;
        prob("truncate", self.truncate)?;
        if let Some(ge) = self.burst {
            prob("burst.p_enter", ge.p_enter)?;
            prob("burst.p_exit", ge.p_exit)?;
            prob("burst.loss_bad", ge.loss_bad)?;
        }
        if self.delay.0 > self.delay.1 {
            return Err(InvalidChaosConfig(format!(
                "delay range is inverted: {:?} > {:?}",
                self.delay.0, self.delay.1
            )));
        }
        Ok(())
    }
}

/// Counters of one proxy, shared with the spawner.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Datagrams forwarded to the destination (duplicates included).
    pub forwarded: AtomicU64,
    /// Datagrams dropped by the loss process.
    pub dropped: AtomicU64,
    /// Extra copies sent by the duplication process.
    pub duplicated: AtomicU64,
    /// Datagrams whose delay was re-drawn by the reorder process.
    pub reordered: AtomicU64,
    /// Datagrams dropped because the link was partitioned
    /// ([`ChaosProxy::set_partitioned`]).
    pub blocked: AtomicU64,
    /// Datagrams forwarded with one byte flipped by the corruption process.
    pub corrupted: AtomicU64,
    /// Datagrams forwarded cut to a shorter prefix by the truncation
    /// process.
    pub truncated: AtomicU64,
}

impl ChaosStats {
    /// A plain-value snapshot of the counters (relaxed loads; safe to call
    /// from any thread while the proxy runs).
    pub fn counters(&self) -> ChaosCounters {
        ChaosCounters {
            forwarded: self.forwarded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            blocked: self.blocked.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
        }
    }
}

/// Frozen [`ChaosStats`] values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// See [`ChaosStats::forwarded`].
    pub forwarded: u64,
    /// See [`ChaosStats::dropped`].
    pub dropped: u64,
    /// See [`ChaosStats::duplicated`].
    pub duplicated: u64,
    /// See [`ChaosStats::reordered`].
    pub reordered: u64,
    /// See [`ChaosStats::blocked`].
    pub blocked: u64,
    /// See [`ChaosStats::corrupted`].
    pub corrupted: u64,
    /// See [`ChaosStats::truncated`].
    pub truncated: u64,
}

/// Sentinel for "no override": the bits of `f64::NAN`.
/// (A NaN probability is rejected by [`ChaosConfig::validate`], so it can
/// never be a legitimate override value.)
fn no_override() -> u64 {
    f64::NAN.to_bits()
}

/// Store an optional probability override into its atomic cell.
fn store_override(cell: &AtomicU64, what: &str, rate: Option<f64>) {
    let bits = match rate {
        Some(p) => {
            assert!((0.0..=1.0).contains(&p), "{what} override {p} outside [0, 1]");
            p.to_bits()
        }
        None => no_override(),
    };
    cell.store(bits, Ordering::Relaxed);
}

/// Read an optional probability override back from its atomic cell.
fn load_override(cell: &AtomicU64) -> Option<f64> {
    let v = f64::from_bits(cell.load(Ordering::Relaxed));
    if v.is_nan() {
        None
    } else {
        Some(v)
    }
}

/// The shared runtime-control cells of one proxy: the partition switch and
/// the live probability overrides, cloned between the proxy thread, the
/// owning [`ChaosProxy`] and every [`ChaosHandle`].
#[derive(Debug, Clone)]
struct Controls {
    partitioned: Arc<AtomicBool>,
    loss_override: Arc<AtomicU64>,
    corrupt_override: Arc<AtomicU64>,
    truncate_override: Arc<AtomicU64>,
}

impl Controls {
    fn new() -> Self {
        Controls {
            partitioned: Arc::new(AtomicBool::new(false)),
            loss_override: Arc::new(AtomicU64::new(no_override())),
            corrupt_override: Arc::new(AtomicU64::new(no_override())),
            truncate_override: Arc::new(AtomicU64::new(no_override())),
        }
    }
}

/// A cheap cloneable view of one proxy's counters and runtime controls.
///
/// The proxy thread owns the sockets; everything an outside observer or
/// admin plane needs — counters, the partition switch, live probability
/// overrides — is behind `Arc`s, so handles outlive neither soundly nor
/// expensively: cloning is a few refcount bumps, and a handle kept after
/// [`ChaosProxy::shutdown`] simply reads final values.
#[derive(Debug, Clone)]
pub struct ChaosHandle {
    stats: Arc<ChaosStats>,
    controls: Controls,
}

impl ChaosHandle {
    /// The proxy's live counters.
    pub fn counters(&self) -> ChaosCounters {
        self.stats.counters()
    }

    /// Cut (`true`) or heal (`false`) the link, exactly like
    /// [`ChaosProxy::set_partitioned`].
    pub fn set_partitioned(&self, cut: bool) {
        self.controls.partitioned.store(cut, Ordering::Relaxed);
    }

    /// True iff the link is currently cut.
    pub fn is_partitioned(&self) -> bool {
        self.controls.partitioned.load(Ordering::Relaxed)
    }

    /// Override the configured loss rate at runtime (`None` restores the
    /// seeded config). The override replaces the whole loss process —
    /// including a Gilbert–Elliott burst overlay — with i.i.d. loss at
    /// `rate`, which is the predictable semantics an operator poking a live
    /// ring wants.
    pub fn set_loss_override(&self, rate: Option<f64>) {
        store_override(&self.controls.loss_override, "loss", rate);
    }

    /// The currently active loss override, if any.
    pub fn loss_override(&self) -> Option<f64> {
        load_override(&self.controls.loss_override)
    }

    /// Override the configured byte-corruption rate at runtime (`None`
    /// restores the seeded config).
    pub fn set_corrupt_override(&self, rate: Option<f64>) {
        store_override(&self.controls.corrupt_override, "corrupt", rate);
    }

    /// The currently active corruption override, if any.
    pub fn corrupt_override(&self) -> Option<f64> {
        load_override(&self.controls.corrupt_override)
    }

    /// Override the configured truncation rate at runtime (`None` restores
    /// the seeded config).
    pub fn set_truncate_override(&self, rate: Option<f64>) {
        store_override(&self.controls.truncate_override, "truncate", rate);
    }

    /// The currently active truncation override, if any.
    pub fn truncate_override(&self) -> Option<f64> {
        load_override(&self.controls.truncate_override)
    }
}

/// A running chaos proxy thread for one directed link.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    controls: Controls,
    dst: Arc<Mutex<SocketAddr>>,
    handle: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Spawn a proxy forwarding to `dst`. Point the link's sender at
    /// [`ChaosProxy::addr`]. Fails on an invalid `cfg`
    /// ([`ChaosConfig::validate`]) or socket setup error.
    pub fn spawn(dst: SocketAddr, cfg: ChaosConfig) -> std::io::Result<ChaosProxy> {
        cfg.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_micros(500)))?;
        let addr = socket.local_addr()?;
        let stats = Arc::new(ChaosStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let controls = Controls::new();
        let dst = Arc::new(Mutex::new(dst));
        let handle = {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let controls = controls.clone();
            let dst = Arc::clone(&dst);
            thread::spawn(move || proxy_main(socket, dst, cfg, stats, stop, controls))
        };
        Ok(ChaosProxy { addr, stats, stop, controls, dst, handle: Some(handle) })
    }

    /// A cheap cloneable handle to this proxy's counters and runtime
    /// controls (partition switch, loss/corrupt/truncate overrides) for
    /// observers like `ssr-ctl` that outlive no sockets.
    pub fn handle(&self) -> ChaosHandle {
        ChaosHandle { stats: Arc::clone(&self.stats), controls: self.controls.clone() }
    }

    /// The address senders must target.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The proxy's live counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Cut (`true`) or heal (`false`) this directed link at runtime: while
    /// partitioned, every arriving datagram is dropped (counted in
    /// [`ChaosStats::blocked`]). Datagrams already in the delay queue still
    /// deliver — they left the sender before the cut.
    pub fn set_partitioned(&self, cut: bool) {
        self.controls.partitioned.store(cut, Ordering::Relaxed);
    }

    /// True iff the link is currently cut.
    pub fn is_partitioned(&self) -> bool {
        self.controls.partitioned.load(Ordering::Relaxed)
    }

    /// Re-aim the forwarding destination (a restarted node's fresh socket).
    pub fn set_dst(&self, dst: SocketAddr) {
        *self.dst.lock() = dst;
    }

    /// Stop the proxy thread and wait for it to exit.
    pub fn shutdown(mut self) -> Arc<ChaosStats> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        Arc::clone(&self.stats)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The per-datagram loss decision: the seeded channel unless a runtime
/// override is active, in which case i.i.d. loss at the override rate
/// (replacing the burst overlay too — the predictable semantics an operator
/// poking a live ring wants).
fn step_drop(channel: &mut LossChannel, rng: &mut StdRng, loss_override: &AtomicU64) -> bool {
    let over = f64::from_bits(loss_override.load(Ordering::Relaxed));
    if over.is_nan() {
        channel.step_drop(rng)
    } else {
        over > 0.0 && rng.random_bool(over)
    }
}

/// The per-datagram damage decision: the configured probability unless a
/// runtime override is active.
fn effective_rate(configured: f64, cell: &AtomicU64) -> f64 {
    let over = f64::from_bits(cell.load(Ordering::Relaxed));
    if over.is_nan() {
        configured
    } else {
        over
    }
}

fn proxy_main(
    socket: UdpSocket,
    dst: Arc<Mutex<SocketAddr>>,
    cfg: ChaosConfig,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    controls: Controls,
) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut channel = LossChannel::new(cfg.loss, cfg.burst);
    // Delay queue: (due, payload). Kept small; datagrams are tiny.
    let mut queue: Vec<(Instant, Vec<u8>)> = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];

    let draw_delay = |rng: &mut StdRng, lo: Duration, hi: Duration| -> Duration {
        if hi <= lo {
            lo
        } else {
            let span = (hi - lo).as_micros().max(1) as u64;
            lo + Duration::from_micros(rng.random_range(0..span))
        }
    };

    while !stop.load(Ordering::Relaxed) {
        match socket.recv_from(&mut buf) {
            Ok((len, _)) => {
                if controls.partitioned.load(Ordering::Relaxed) {
                    stats.blocked.fetch_add(1, Ordering::Relaxed);
                } else if step_drop(&mut channel, &mut rng, &controls.loss_override) {
                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                } else {
                    // Byte-level wire damage, applied before queueing so
                    // duplicates of a damaged frame are identically damaged
                    // (one wire error, two deliveries — like real UDP).
                    let mut payload = buf[..len].to_vec();
                    let corrupt = effective_rate(cfg.corrupt, &controls.corrupt_override);
                    if !payload.is_empty() && corrupt > 0.0 && rng.random_bool(corrupt) {
                        let pos = rng.random_range(0..payload.len());
                        payload[pos] ^= rng.random_range(1..=255u8);
                        stats.corrupted.fetch_add(1, Ordering::Relaxed);
                    }
                    let truncate = effective_rate(cfg.truncate, &controls.truncate_override);
                    if !payload.is_empty() && truncate > 0.0 && rng.random_bool(truncate) {
                        // Strictly shorter prefix; an empty datagram is fine.
                        payload.truncate(rng.random_range(0..payload.len()));
                        stats.truncated.fetch_add(1, Ordering::Relaxed);
                    }
                    let (lo, hi) = cfg.delay;
                    let mut delay = draw_delay(&mut rng, lo, hi);
                    if cfg.reorder > 0.0 && rng.random_bool(cfg.reorder) {
                        // Push this datagram further out so its successors
                        // can overtake it.
                        delay += draw_delay(&mut rng, hi, hi * 2 + Duration::from_micros(200));
                        stats.reordered.fetch_add(1, Ordering::Relaxed);
                    }
                    let due = Instant::now() + delay;
                    if cfg.duplicate > 0.0 && rng.random_bool(cfg.duplicate) {
                        let extra = draw_delay(&mut rng, lo, hi);
                        queue.push((Instant::now() + extra, payload.clone()));
                        stats.duplicated.fetch_add(1, Ordering::Relaxed);
                    }
                    queue.push((due, payload));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
        // Flush everything due.
        let now = Instant::now();
        let to = *dst.lock();
        let mut i = 0;
        while i < queue.len() {
            if queue[i].0 <= now {
                let (_, payload) = queue.swap_remove(i);
                if socket.send_to(&payload, to).is_ok() {
                    stats.forwarded.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                i += 1;
            }
        }
    }
    // Drain: deliver whatever is still queued so shutdown does not act as
    // an extra loss process.
    let to = *dst.lock();
    for (_, payload) in queue {
        if socket.send_to(&payload, to).is_ok() {
            stats.forwarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv_all(socket: &UdpSocket, window: Duration) -> Vec<Vec<u8>> {
        let mut buf = [0u8; 2048];
        let mut got = Vec::new();
        let deadline = Instant::now() + window;
        socket.set_read_timeout(Some(Duration::from_millis(5))).unwrap();
        while Instant::now() < deadline {
            if let Ok((len, _)) = socket.recv_from(&mut buf) {
                got.push(buf[..len].to_vec());
            }
        }
        got
    }

    #[test]
    fn lossless_proxy_forwards_everything() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..20u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
        }
        let got = recv_all(&dst, Duration::from_millis(200));
        let stats = proxy.shutdown();
        assert_eq!(got.len(), 20, "forwarded {}", stats.forwarded.load(Ordering::Relaxed));
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn lossy_proxy_drops_a_fraction_deterministically() {
        let run = |seed: u64| -> u64 {
            let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
            let cfg = ChaosConfig { seed, loss: 0.5, ..ChaosConfig::default() };
            let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
            let src = UdpSocket::bind("127.0.0.1:0").unwrap();
            for i in 0..100u8 {
                src.send_to(&[i], proxy.addr()).unwrap();
                // Pace sends so the proxy keeps up on small socket buffers.
                std::thread::sleep(Duration::from_micros(200));
            }
            std::thread::sleep(Duration::from_millis(50));
            let stats = proxy.shutdown();
            stats.dropped.load(Ordering::Relaxed)
        };
        let d1 = run(9);
        assert!((20..=80).contains(&d1), "dropped {d1} of 100 at loss 0.5");
        assert_eq!(d1, run(9), "same seed must drop the same datagrams");
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let cfg = ChaosConfig { seed: 4, duplicate: 1.0, ..ChaosConfig::default() };
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..10u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let got = recv_all(&dst, Duration::from_millis(200));
        proxy.shutdown();
        assert_eq!(got.len(), 20, "every datagram must arrive twice");
    }

    #[test]
    fn invalid_configs_are_rejected_at_spawn() {
        for bad in [
            ChaosConfig { loss: 1.5, ..ChaosConfig::default() },
            ChaosConfig { loss: -0.1, ..ChaosConfig::default() },
            ChaosConfig { duplicate: 2.0, ..ChaosConfig::default() },
            ChaosConfig { reorder: f64::NAN, ..ChaosConfig::default() },
            ChaosConfig {
                delay: (Duration::from_millis(5), Duration::from_millis(1)),
                ..ChaosConfig::default()
            },
            ChaosConfig {
                burst: Some(GilbertElliott { p_enter: 7.0, p_exit: 0.2, loss_bad: 0.9 }),
                ..ChaosConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must not validate");
            let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
            let err = ChaosProxy::spawn(dst.local_addr().unwrap(), bad).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{bad:?}");
        }
        ChaosConfig { loss: 1.0, duplicate: 0.0, ..ChaosConfig::default() }.validate().unwrap();
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();

        proxy.set_partitioned(true);
        assert!(proxy.is_partitioned());
        for i in 0..10u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let during = recv_all(&dst, Duration::from_millis(100));
        assert!(during.is_empty(), "partitioned link must deliver nothing, got {during:?}");

        proxy.set_partitioned(false);
        for i in 10..20u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let after = recv_all(&dst, Duration::from_millis(200));
        let stats = proxy.shutdown();
        assert_eq!(after.len(), 10, "healed link must deliver everything");
        assert_eq!(stats.blocked.load(Ordering::Relaxed), 10);
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 0, "blocked is not chaos loss");
    }

    #[test]
    fn handle_controls_partition_and_reads_counters() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let handle = proxy.handle();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();

        handle.set_partitioned(true);
        assert!(proxy.is_partitioned(), "handle and proxy share the switch");
        src.send_to(&[1], proxy.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        handle.set_partitioned(false);
        src.send_to(&[2], proxy.addr()).unwrap();
        let got = recv_all(&dst, Duration::from_millis(150));
        assert_eq!(got, vec![vec![2]]);

        let counters = handle.counters();
        assert_eq!(counters.blocked, 1);
        assert_eq!(counters.forwarded, 1);
        proxy.shutdown();
        // A handle kept after shutdown still reads the final values.
        assert_eq!(handle.counters().blocked, 1);
    }

    #[test]
    fn loss_override_replaces_and_restores_the_seeded_process() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        // Configured lossless; override to 100% loss, then back off.
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let handle = proxy.handle();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();

        assert_eq!(handle.loss_override(), None);
        handle.set_loss_override(Some(1.0));
        assert_eq!(handle.loss_override(), Some(1.0));
        for i in 0..5u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let during = recv_all(&dst, Duration::from_millis(100));
        assert!(during.is_empty(), "override 1.0 must drop everything, got {during:?}");

        handle.set_loss_override(None);
        for i in 5..10u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let after = recv_all(&dst, Duration::from_millis(150));
        let stats = proxy.shutdown();
        assert_eq!(after.len(), 5, "restoring the config restores losslessness");
        assert_eq!(stats.counters().dropped, 5, "overridden drops count as chaos loss");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn loss_override_rejects_non_probabilities() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        proxy.handle().set_loss_override(Some(1.5));
    }

    #[test]
    fn corrupt_mode_flips_exactly_one_byte_per_datagram() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let cfg = ChaosConfig { seed: 6, corrupt: 1.0, ..ChaosConfig::default() };
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        let original = [7u8; 32];
        for _ in 0..10 {
            src.send_to(&original, proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let got = recv_all(&dst, Duration::from_millis(200));
        let stats = proxy.shutdown();
        assert_eq!(got.len(), 10, "corruption damages, it does not drop");
        for payload in &got {
            assert_eq!(payload.len(), original.len());
            let differing = payload.iter().zip(&original).filter(|(a, b)| a != b).count();
            assert_eq!(differing, 1, "exactly one byte must differ, got {differing}");
        }
        assert_eq!(stats.counters().corrupted, 10);
        assert_eq!(stats.counters().dropped, 0);
    }

    #[test]
    fn truncate_mode_cuts_strictly_shorter_prefixes() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let cfg = ChaosConfig { seed: 8, truncate: 1.0, ..ChaosConfig::default() };
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        let original: Vec<u8> = (0..32).collect();
        for _ in 0..10 {
            src.send_to(&original, proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let got = recv_all(&dst, Duration::from_millis(200));
        let stats = proxy.shutdown();
        assert_eq!(got.len(), 10);
        for payload in &got {
            assert!(payload.len() < original.len(), "must be strictly shorter");
            assert_eq!(payload[..], original[..payload.len()], "must be a prefix");
        }
        assert_eq!(stats.counters().truncated, 10);
    }

    #[test]
    fn corrupt_and_truncate_overrides_flip_at_runtime() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let handle = proxy.handle();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();

        assert_eq!(handle.corrupt_override(), None);
        assert_eq!(handle.truncate_override(), None);
        handle.set_corrupt_override(Some(1.0));
        assert_eq!(handle.corrupt_override(), Some(1.0));
        src.send_to(&[1, 2, 3, 4], proxy.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        handle.set_corrupt_override(None);
        handle.set_truncate_override(Some(1.0));
        src.send_to(&[5, 6, 7, 8], proxy.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        handle.set_truncate_override(None);
        src.send_to(&[9, 10, 11, 12], proxy.addr()).unwrap();
        let got = recv_all(&dst, Duration::from_millis(150));
        let stats = proxy.shutdown();
        assert_eq!(got.len(), 3);
        assert_eq!(stats.counters().corrupted, 1);
        assert_eq!(stats.counters().truncated, 1);
        assert_eq!(got[2], vec![9, 10, 11, 12], "restored link forwards untouched");
    }

    #[test]
    fn invalid_corrupt_truncate_probabilities_are_rejected() {
        for bad in [
            ChaosConfig { corrupt: 1.5, ..ChaosConfig::default() },
            ChaosConfig { truncate: -0.5, ..ChaosConfig::default() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must not validate");
        }
        ChaosConfig { corrupt: 0.3, truncate: 0.3, ..ChaosConfig::default() }.validate().unwrap();
    }

    #[test]
    fn set_dst_reaims_forwarding() {
        let old = UdpSocket::bind("127.0.0.1:0").unwrap();
        let new = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(old.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        src.send_to(&[1], proxy.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        proxy.set_dst(new.local_addr().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        src.send_to(&[2], proxy.addr()).unwrap();
        let got_new = recv_all(&new, Duration::from_millis(150));
        proxy.shutdown();
        assert_eq!(got_new, vec![vec![2]], "post-reaim datagrams go to the new socket");
    }

    #[test]
    fn delay_holds_datagrams_back() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let cfg = ChaosConfig {
            seed: 5,
            delay: (Duration::from_millis(30), Duration::from_millis(40)),
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        let sent_at = Instant::now();
        src.send_to(&[42], proxy.addr()).unwrap();
        dst.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let mut buf = [0u8; 16];
        let (len, _) = dst.recv_from(&mut buf).unwrap();
        let waited = sent_at.elapsed();
        proxy.shutdown();
        assert_eq!(&buf[..len], &[42]);
        assert!(waited >= Duration::from_millis(25), "arrived after {waited:?}");
    }
}
