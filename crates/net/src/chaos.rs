//! A seeded chaos proxy for one directed UDP link.
//!
//! The proxy binds its own loopback socket; the sender is pointed at the
//! proxy instead of the real destination, and the proxy forwards datagrams
//! subject to a seeded fault process: i.i.d. and Gilbert–Elliott burst loss
//! (the exact [`ssr_mpnet::loss::LossChannel`] the discrete-event simulator
//! uses), uniform random delay, duplication and reordering. Two runs with
//! equal seeds draw identical fault decisions.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ssr_mpnet::loss::{GilbertElliott, LossChannel};

/// Fault knobs of one proxied link (mirrors the simulator's fault model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// RNG seed of this link's fault process.
    pub seed: u64,
    /// Good-state (i.i.d.) loss probability.
    pub loss: f64,
    /// Optional Gilbert–Elliott burst overlay.
    pub burst: Option<GilbertElliott>,
    /// Forwarding delay drawn uniformly from this range per datagram.
    pub delay: (Duration, Duration),
    /// Probability that a forwarded datagram is sent twice.
    pub duplicate: f64,
    /// Probability that a datagram's delay is re-drawn from a doubled
    /// range, letting later datagrams overtake it (reordering).
    pub reorder: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            loss: 0.0,
            burst: None,
            delay: (Duration::ZERO, Duration::ZERO),
            duplicate: 0.0,
            reorder: 0.0,
        }
    }
}

/// Counters of one proxy, shared with the spawner.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Datagrams forwarded to the destination (duplicates included).
    pub forwarded: AtomicU64,
    /// Datagrams dropped by the loss process.
    pub dropped: AtomicU64,
    /// Extra copies sent by the duplication process.
    pub duplicated: AtomicU64,
    /// Datagrams whose delay was re-drawn by the reorder process.
    pub reordered: AtomicU64,
}

/// A running chaos proxy thread for one directed link.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Spawn a proxy forwarding to `dst`. Point the link's sender at
    /// [`ChaosProxy::addr`].
    pub fn spawn(dst: SocketAddr, cfg: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_micros(500)))?;
        let addr = socket.local_addr()?;
        let stats = Arc::new(ChaosStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            thread::spawn(move || proxy_main(socket, dst, cfg, stats, stop))
        };
        Ok(ChaosProxy { addr, stats, stop, handle: Some(handle) })
    }

    /// The address senders must target.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The proxy's live counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Stop the proxy thread and wait for it to exit.
    pub fn shutdown(mut self) -> Arc<ChaosStats> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        Arc::clone(&self.stats)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn proxy_main(
    socket: UdpSocket,
    dst: SocketAddr,
    cfg: ChaosConfig,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut channel = LossChannel::new(cfg.loss, cfg.burst);
    // Delay queue: (due, payload). Kept small; datagrams are tiny.
    let mut queue: Vec<(Instant, Vec<u8>)> = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];

    let draw_delay = |rng: &mut StdRng, lo: Duration, hi: Duration| -> Duration {
        if hi <= lo {
            lo
        } else {
            let span = (hi - lo).as_micros().max(1) as u64;
            lo + Duration::from_micros(rng.random_range(0..span))
        }
    };

    while !stop.load(Ordering::Relaxed) {
        match socket.recv_from(&mut buf) {
            Ok((len, _)) => {
                if channel.step_drop(&mut rng) {
                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                } else {
                    let (lo, hi) = cfg.delay;
                    let mut delay = draw_delay(&mut rng, lo, hi);
                    if cfg.reorder > 0.0 && rng.random_bool(cfg.reorder) {
                        // Push this datagram further out so its successors
                        // can overtake it.
                        delay += draw_delay(&mut rng, hi, hi * 2 + Duration::from_micros(200));
                        stats.reordered.fetch_add(1, Ordering::Relaxed);
                    }
                    let due = Instant::now() + delay;
                    queue.push((due, buf[..len].to_vec()));
                    if cfg.duplicate > 0.0 && rng.random_bool(cfg.duplicate) {
                        let extra = draw_delay(&mut rng, lo, hi);
                        queue.push((Instant::now() + extra, buf[..len].to_vec()));
                        stats.duplicated.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
        // Flush everything due.
        let now = Instant::now();
        let mut i = 0;
        while i < queue.len() {
            if queue[i].0 <= now {
                let (_, payload) = queue.swap_remove(i);
                if socket.send_to(&payload, dst).is_ok() {
                    stats.forwarded.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                i += 1;
            }
        }
    }
    // Drain: deliver whatever is still queued so shutdown does not act as
    // an extra loss process.
    for (_, payload) in queue {
        if socket.send_to(&payload, dst).is_ok() {
            stats.forwarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv_all(socket: &UdpSocket, window: Duration) -> Vec<Vec<u8>> {
        let mut buf = [0u8; 2048];
        let mut got = Vec::new();
        let deadline = Instant::now() + window;
        socket.set_read_timeout(Some(Duration::from_millis(5))).unwrap();
        while Instant::now() < deadline {
            if let Ok((len, _)) = socket.recv_from(&mut buf) {
                got.push(buf[..len].to_vec());
            }
        }
        got
    }

    #[test]
    fn lossless_proxy_forwards_everything() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..20u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
        }
        let got = recv_all(&dst, Duration::from_millis(200));
        let stats = proxy.shutdown();
        assert_eq!(got.len(), 20, "forwarded {}", stats.forwarded.load(Ordering::Relaxed));
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn lossy_proxy_drops_a_fraction_deterministically() {
        let run = |seed: u64| -> u64 {
            let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
            let cfg = ChaosConfig { seed, loss: 0.5, ..ChaosConfig::default() };
            let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
            let src = UdpSocket::bind("127.0.0.1:0").unwrap();
            for i in 0..100u8 {
                src.send_to(&[i], proxy.addr()).unwrap();
                // Pace sends so the proxy keeps up on small socket buffers.
                std::thread::sleep(Duration::from_micros(200));
            }
            std::thread::sleep(Duration::from_millis(50));
            let stats = proxy.shutdown();
            stats.dropped.load(Ordering::Relaxed)
        };
        let d1 = run(9);
        assert!((20..=80).contains(&d1), "dropped {d1} of 100 at loss 0.5");
        assert_eq!(d1, run(9), "same seed must drop the same datagrams");
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let cfg = ChaosConfig { seed: 4, duplicate: 1.0, ..ChaosConfig::default() };
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..10u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let got = recv_all(&dst, Duration::from_millis(200));
        proxy.shutdown();
        assert_eq!(got.len(), 20, "every datagram must arrive twice");
    }

    #[test]
    fn delay_holds_datagrams_back() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let cfg = ChaosConfig {
            seed: 5,
            delay: (Duration::from_millis(30), Duration::from_millis(40)),
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        let sent_at = Instant::now();
        src.send_to(&[42], proxy.addr()).unwrap();
        dst.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let mut buf = [0u8; 16];
        let (len, _) = dst.recv_from(&mut buf).unwrap();
        let waited = sent_at.elapsed();
        proxy.shutdown();
        assert_eq!(&buf[..len], &[42]);
        assert!(waited >= Duration::from_millis(25), "arrived after {waited:?}");
    }
}
