//! A seeded chaos proxy for one directed UDP link.
//!
//! The proxy binds its own loopback socket; the sender is pointed at the
//! proxy instead of the real destination, and the proxy forwards datagrams
//! subject to a seeded fault process: i.i.d. and Gilbert–Elliott burst loss
//! (the exact [`ssr_mpnet::loss::LossChannel`] the discrete-event simulator
//! uses), uniform random delay, duplication and reordering. Two runs with
//! equal seeds draw identical fault decisions.
//!
//! On top of the seeded process the proxy supports two *runtime* controls
//! used by the fault supervisor (`crate::supervisor`):
//!
//! * [`ChaosProxy::set_partitioned`] — a time-windowed 100% loss switch for
//!   this directed link (datagrams already delayed in flight still arrive,
//!   like packets that left the wire before the cut);
//! * [`ChaosProxy::set_dst`] — re-aim the forwarding destination, needed
//!   when a crashed node comes back on fresh sockets.
//!
//! Since the netem work the proxy also carries an optional **pacing
//! stage** ahead of the damage model: an [`ssr_netem::NetemLink`]
//! (serialization rate + propagation latency + jitter + finite drop-tail
//! buffer) evaluated on the proxy's microsecond clock. A datagram first
//! meets the pacer — which may tail-drop it (counted separately in
//! [`ChaosStats::netem_dropped`], *not* in `dropped`: congestion is not
//! random loss) or assign its earliest delivery instant — and only then
//! the seeded loss/damage process. Profiles swap at runtime via
//! [`ChaosHandle::set_netem`] (the `POST /chaos netem <profile>` path)
//! without disturbing the seeded RNG streams: pacer jitter draws from its
//! own per-link stream, so enabling or swapping a profile never shifts
//! the loss/damage decisions of a seeded run.

use std::fmt;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ssr_mpnet::loss::{GilbertElliott, LossChannel};
use ssr_netem::{DirProfile, NetemLink, ProfileError, Verdict};

/// Why a [`ChaosConfig`] is not executable.
#[derive(Debug, Clone, PartialEq)]
pub enum InvalidChaosConfig {
    /// A probability knob is outside `[0, 1]` (or NaN).
    Probability {
        /// Which knob (`loss`, `duplicate`, `burst.p_enter`, …).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A delay range has its lower bound above its upper bound.
    InvertedDelay {
        /// Which range (`delay` or `delay_reverse`).
        name: &'static str,
        /// Lower bound.
        lo: Duration,
        /// Upper bound.
        hi: Duration,
    },
    /// A netem pacing profile fails [`DirProfile::validate`]: zero rate,
    /// buffer smaller than one frame, jitter exceeding latency, bad
    /// lognormal sigma or loss outside `[0, 1]`.
    Netem(ProfileError),
}

impl fmt::Display for InvalidChaosConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidChaosConfig::Probability { name, value } => {
                write!(
                    f,
                    "invalid chaos config: {name} must be a probability in [0, 1], got {value}"
                )
            }
            InvalidChaosConfig::InvertedDelay { name, lo, hi } => {
                write!(f, "invalid chaos config: {name} range is inverted: {lo:?} > {hi:?}")
            }
            InvalidChaosConfig::Netem(e) => write!(f, "invalid chaos config: {e}"),
        }
    }
}

impl std::error::Error for InvalidChaosConfig {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InvalidChaosConfig::Netem(e) => Some(e),
            _ => None,
        }
    }
}

/// Fault knobs of one proxied link (mirrors the simulator's fault model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// RNG seed of this link's fault process.
    pub seed: u64,
    /// Good-state (i.i.d.) loss probability.
    pub loss: f64,
    /// Optional Gilbert–Elliott burst overlay.
    pub burst: Option<GilbertElliott>,
    /// Forwarding delay drawn uniformly from this range per datagram.
    pub delay: (Duration, Duration),
    /// Probability that a forwarded datagram is sent twice.
    pub duplicate: f64,
    /// Probability that a datagram's delay is re-drawn from a doubled
    /// range, letting later datagrams overtake it (reordering).
    pub reorder: f64,
    /// Probability that a forwarded datagram has one random byte XOR'd with
    /// a random non-zero value — a wire bit-error the CRC-32 codec must
    /// reject (a one-byte change cannot preserve the checksum).
    pub corrupt: f64,
    /// Probability that a forwarded datagram is cut to a random strictly
    /// shorter prefix (possibly empty) — a fragmentation/MTU-style wire
    /// error the codec's length checks must reject.
    pub truncate: f64,
    /// Delay range of the *reverse* direction (`i → pred(i)`, odd link
    /// indices). `None` = symmetric: reverse links use [`ChaosConfig::delay`].
    /// Resolved per directed link by [`ChaosConfig::for_direction`] before a
    /// proxy is spawned.
    pub delay_reverse: Option<(Duration, Duration)>,
    /// Optional netem pacing profile of the *forward* direction
    /// (`i → succ(i)`, even link indices): serialization rate, propagation
    /// latency, jitter and a finite drop-tail buffer, applied ahead of the
    /// damage model. `None` = no pacing stage.
    pub netem: Option<DirProfile>,
    /// Pacing profile of the *reverse* direction. `None` = symmetric:
    /// reverse links use [`ChaosConfig::netem`].
    pub netem_reverse: Option<DirProfile>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            loss: 0.0,
            burst: None,
            delay: (Duration::ZERO, Duration::ZERO),
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            truncate: 0.0,
            delay_reverse: None,
            netem: None,
            netem_reverse: None,
        }
    }
}

impl ChaosConfig {
    /// Check every knob is executable: probabilities in `[0, 1]` (including
    /// the burst overlay's), delay ranges not inverted, netem profiles
    /// passing [`DirProfile::validate`]. [`ChaosProxy::spawn`] rejects
    /// invalid configs, mirroring the CLI-side validation, so a typo'd
    /// probability fails fast instead of silently misbehaving.
    pub fn validate(&self) -> Result<(), InvalidChaosConfig> {
        let prob = |name: &'static str, p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(InvalidChaosConfig::Probability { name, value: p })
            }
        };
        prob("loss", self.loss)?;
        prob("duplicate", self.duplicate)?;
        prob("reorder", self.reorder)?;
        prob("corrupt", self.corrupt)?;
        prob("truncate", self.truncate)?;
        if let Some(ge) = self.burst {
            prob("burst.p_enter", ge.p_enter)?;
            prob("burst.p_exit", ge.p_exit)?;
            prob("burst.loss_bad", ge.loss_bad)?;
        }
        let range = |name: &'static str, (lo, hi): (Duration, Duration)| {
            if lo > hi {
                Err(InvalidChaosConfig::InvertedDelay { name, lo, hi })
            } else {
                Ok(())
            }
        };
        range("delay", self.delay)?;
        if let Some(r) = self.delay_reverse {
            range("delay_reverse", r)?;
        }
        if let Some(p) = self.netem {
            p.validate("netem.forward").map_err(InvalidChaosConfig::Netem)?;
        }
        if let Some(p) = self.netem_reverse {
            p.validate("netem.reverse").map_err(InvalidChaosConfig::Netem)?;
        }
        Ok(())
    }

    /// Resolve the per-direction knobs into the concrete config of one
    /// directed link: forward links (`i → succ(i)`, even indices) use
    /// `delay`/`netem` as-is; reverse links (`i → pred(i)`, odd indices)
    /// substitute `delay_reverse`/`netem_reverse` when set, falling back to
    /// the forward values (symmetric default). The `_reverse` fields are
    /// cleared in the result so a proxy never sees unresolved asymmetry.
    ///
    /// When the resolved direction carries a pacing profile, that profile's
    /// `loss` becomes the direction's i.i.d. loss rate, replacing
    /// [`ChaosConfig::loss`] — the same ownership the DES gives a profile
    /// ([`ssr_mpnet::CstSim`]'s `set_netem` rebuilds each link's loss
    /// channel from the profile), so `lossy-wan` loses datagrams on UDP
    /// exactly where it loses frames in simulation.
    pub fn for_direction(&self, reverse: bool) -> ChaosConfig {
        let mut cfg = *self;
        if reverse {
            if let Some(d) = self.delay_reverse {
                cfg.delay = d;
            }
            if let Some(p) = self.netem_reverse {
                cfg.netem = Some(p);
            }
        }
        if let Some(p) = cfg.netem {
            cfg.loss = p.loss;
        }
        cfg.delay_reverse = None;
        cfg.netem_reverse = None;
        cfg
    }
}

/// Counters of one proxy, shared with the spawner.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Datagrams forwarded to the destination (duplicates included).
    pub forwarded: AtomicU64,
    /// Datagrams dropped by the loss process.
    pub dropped: AtomicU64,
    /// Extra copies sent by the duplication process.
    pub duplicated: AtomicU64,
    /// Datagrams whose delay was re-drawn by the reorder process.
    pub reordered: AtomicU64,
    /// Datagrams dropped because the link was partitioned
    /// ([`ChaosProxy::set_partitioned`]).
    pub blocked: AtomicU64,
    /// Datagrams forwarded with one byte flipped by the corruption process.
    pub corrupted: AtomicU64,
    /// Datagrams forwarded cut to a shorter prefix by the truncation
    /// process.
    pub truncated: AtomicU64,
    /// Datagrams tail-dropped by the netem pacing buffer. Deliberately
    /// distinct from [`ChaosStats::dropped`]: congestion loss is a
    /// deterministic consequence of offered load, not a draw of the seeded
    /// random-loss process.
    pub netem_dropped: AtomicU64,
    /// Gauge: frames occupying the netem pacing buffer after the most
    /// recent offer (zero when pacing is off).
    pub netem_queue_depth: AtomicU64,
}

impl ChaosStats {
    /// A plain-value snapshot of the counters (relaxed loads; safe to call
    /// from any thread while the proxy runs).
    pub fn counters(&self) -> ChaosCounters {
        ChaosCounters {
            forwarded: self.forwarded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            blocked: self.blocked.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            netem_dropped: self.netem_dropped.load(Ordering::Relaxed),
            netem_queue_depth: self.netem_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Frozen [`ChaosStats`] values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// See [`ChaosStats::forwarded`].
    pub forwarded: u64,
    /// See [`ChaosStats::dropped`].
    pub dropped: u64,
    /// See [`ChaosStats::duplicated`].
    pub duplicated: u64,
    /// See [`ChaosStats::reordered`].
    pub reordered: u64,
    /// See [`ChaosStats::blocked`].
    pub blocked: u64,
    /// See [`ChaosStats::corrupted`].
    pub corrupted: u64,
    /// See [`ChaosStats::truncated`].
    pub truncated: u64,
    /// See [`ChaosStats::netem_dropped`].
    pub netem_dropped: u64,
    /// See [`ChaosStats::netem_queue_depth`].
    pub netem_queue_depth: u64,
}

/// Sentinel for "no override": the bits of `f64::NAN`.
/// (A NaN probability is rejected by [`ChaosConfig::validate`], so it can
/// never be a legitimate override value.)
fn no_override() -> u64 {
    f64::NAN.to_bits()
}

/// Store an optional probability override into its atomic cell.
fn store_override(cell: &AtomicU64, what: &str, rate: Option<f64>) {
    let bits = match rate {
        Some(p) => {
            assert!((0.0..=1.0).contains(&p), "{what} override {p} outside [0, 1]");
            p.to_bits()
        }
        None => no_override(),
    };
    cell.store(bits, Ordering::Relaxed);
}

/// Read an optional probability override back from its atomic cell.
fn load_override(cell: &AtomicU64) -> Option<f64> {
    let v = f64::from_bits(cell.load(Ordering::Relaxed));
    if v.is_nan() {
        None
    } else {
        Some(v)
    }
}

/// The requested netem pacing state, written by handles and polled by the
/// proxy thread. `epoch` bumps on every [`ChaosHandle::set_netem`] so the
/// proxy applies each swap exactly once.
#[derive(Debug, Clone, Copy)]
struct NetemCell {
    profile: Option<DirProfile>,
    epoch: u64,
}

/// The shared runtime-control cells of one proxy: the partition switch,
/// the live probability overrides and the netem pacing profile, cloned
/// between the proxy thread, the owning [`ChaosProxy`] and every
/// [`ChaosHandle`].
#[derive(Debug, Clone)]
struct Controls {
    partitioned: Arc<AtomicBool>,
    loss_override: Arc<AtomicU64>,
    corrupt_override: Arc<AtomicU64>,
    truncate_override: Arc<AtomicU64>,
    netem: Arc<Mutex<NetemCell>>,
}

impl Controls {
    fn new(netem: Option<DirProfile>) -> Self {
        Controls {
            partitioned: Arc::new(AtomicBool::new(false)),
            loss_override: Arc::new(AtomicU64::new(no_override())),
            corrupt_override: Arc::new(AtomicU64::new(no_override())),
            truncate_override: Arc::new(AtomicU64::new(no_override())),
            netem: Arc::new(Mutex::new(NetemCell { profile: netem, epoch: 0 })),
        }
    }
}

/// A cheap cloneable view of one proxy's counters and runtime controls.
///
/// The proxy thread owns the sockets; everything an outside observer or
/// admin plane needs — counters, the partition switch, live probability
/// overrides — is behind `Arc`s, so handles outlive neither soundly nor
/// expensively: cloning is a few refcount bumps, and a handle kept after
/// [`ChaosProxy::shutdown`] simply reads final values.
#[derive(Debug, Clone)]
pub struct ChaosHandle {
    stats: Arc<ChaosStats>,
    controls: Controls,
}

impl ChaosHandle {
    /// The proxy's live counters.
    pub fn counters(&self) -> ChaosCounters {
        self.stats.counters()
    }

    /// Cut (`true`) or heal (`false`) the link, exactly like
    /// [`ChaosProxy::set_partitioned`].
    pub fn set_partitioned(&self, cut: bool) {
        self.controls.partitioned.store(cut, Ordering::Relaxed);
    }

    /// True iff the link is currently cut.
    pub fn is_partitioned(&self) -> bool {
        self.controls.partitioned.load(Ordering::Relaxed)
    }

    /// Override the configured loss rate at runtime (`None` restores the
    /// seeded config). The override replaces the whole loss process —
    /// including a Gilbert–Elliott burst overlay — with i.i.d. loss at
    /// `rate`, which is the predictable semantics an operator poking a live
    /// ring wants.
    pub fn set_loss_override(&self, rate: Option<f64>) {
        store_override(&self.controls.loss_override, "loss", rate);
    }

    /// The currently active loss override, if any.
    pub fn loss_override(&self) -> Option<f64> {
        load_override(&self.controls.loss_override)
    }

    /// Override the configured byte-corruption rate at runtime (`None`
    /// restores the seeded config).
    pub fn set_corrupt_override(&self, rate: Option<f64>) {
        store_override(&self.controls.corrupt_override, "corrupt", rate);
    }

    /// The currently active corruption override, if any.
    pub fn corrupt_override(&self) -> Option<f64> {
        load_override(&self.controls.corrupt_override)
    }

    /// Override the configured truncation rate at runtime (`None` restores
    /// the seeded config).
    pub fn set_truncate_override(&self, rate: Option<f64>) {
        store_override(&self.controls.truncate_override, "truncate", rate);
    }

    /// The currently active truncation override, if any.
    pub fn truncate_override(&self) -> Option<f64> {
        load_override(&self.controls.truncate_override)
    }

    /// Swap the netem pacing profile at runtime (`None` switches pacing
    /// off) — the `POST /chaos netem <profile>|off` path. The profile is
    /// validated first; the proxy applies the swap on its next loop
    /// iteration (≤ its read timeout away). Frames already paced keep
    /// their assigned delivery instants; when pacing was already on, the
    /// link's jitter stream and counters continue uninterrupted.
    pub fn set_netem(&self, profile: Option<DirProfile>) -> Result<(), InvalidChaosConfig> {
        if let Some(p) = profile {
            p.validate("netem").map_err(InvalidChaosConfig::Netem)?;
        }
        let mut cell = self.controls.netem.lock();
        cell.profile = profile;
        cell.epoch += 1;
        Ok(())
    }

    /// The pacing profile currently requested (`None` = pacing off).
    pub fn netem_profile(&self) -> Option<DirProfile> {
        self.controls.netem.lock().profile
    }
}

/// A running chaos proxy thread for one directed link.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    controls: Controls,
    dst: Arc<Mutex<SocketAddr>>,
    handle: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Spawn a proxy forwarding to `dst`. Point the link's sender at
    /// [`ChaosProxy::addr`]. Fails on an invalid `cfg`
    /// ([`ChaosConfig::validate`]) or socket setup error.
    pub fn spawn(dst: SocketAddr, cfg: ChaosConfig) -> std::io::Result<ChaosProxy> {
        cfg.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_micros(500)))?;
        let addr = socket.local_addr()?;
        let stats = Arc::new(ChaosStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let controls = Controls::new(cfg.netem);
        let dst = Arc::new(Mutex::new(dst));
        let handle = {
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let controls = controls.clone();
            let dst = Arc::clone(&dst);
            thread::spawn(move || proxy_main(socket, dst, cfg, stats, stop, controls))
        };
        Ok(ChaosProxy { addr, stats, stop, controls, dst, handle: Some(handle) })
    }

    /// A cheap cloneable handle to this proxy's counters and runtime
    /// controls (partition switch, loss/corrupt/truncate overrides) for
    /// observers like `ssr-ctl` that outlive no sockets.
    pub fn handle(&self) -> ChaosHandle {
        ChaosHandle { stats: Arc::clone(&self.stats), controls: self.controls.clone() }
    }

    /// The address senders must target.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The proxy's live counters.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Cut (`true`) or heal (`false`) this directed link at runtime: while
    /// partitioned, every arriving datagram is dropped (counted in
    /// [`ChaosStats::blocked`]). Datagrams already in the delay queue still
    /// deliver — they left the sender before the cut.
    pub fn set_partitioned(&self, cut: bool) {
        self.controls.partitioned.store(cut, Ordering::Relaxed);
    }

    /// True iff the link is currently cut.
    pub fn is_partitioned(&self) -> bool {
        self.controls.partitioned.load(Ordering::Relaxed)
    }

    /// Re-aim the forwarding destination (a restarted node's fresh socket).
    pub fn set_dst(&self, dst: SocketAddr) {
        *self.dst.lock() = dst;
    }

    /// Stop the proxy thread and wait for it to exit.
    pub fn shutdown(mut self) -> Arc<ChaosStats> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        Arc::clone(&self.stats)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The per-datagram loss decision: the seeded channel unless a runtime
/// override is active, in which case i.i.d. loss at the override rate
/// (replacing the burst overlay too — the predictable semantics an operator
/// poking a live ring wants).
fn step_drop(channel: &mut LossChannel, rng: &mut StdRng, loss_override: &AtomicU64) -> bool {
    let over = f64::from_bits(loss_override.load(Ordering::Relaxed));
    if over.is_nan() {
        channel.step_drop(rng)
    } else {
        over > 0.0 && rng.random_bool(over)
    }
}

/// The per-datagram damage decision: the configured probability unless a
/// runtime override is active.
fn effective_rate(configured: f64, cell: &AtomicU64) -> f64 {
    let over = f64::from_bits(cell.load(Ordering::Relaxed));
    if over.is_nan() {
        configured
    } else {
        over
    }
}

fn proxy_main(
    socket: UdpSocket,
    dst: Arc<Mutex<SocketAddr>>,
    cfg: ChaosConfig,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    controls: Controls,
) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut channel = LossChannel::new(cfg.loss, cfg.burst);
    // Delay queue: (due, payload). Kept small; datagrams are tiny.
    let mut queue: Vec<(Instant, Vec<u8>)> = Vec::new();
    let mut buf = vec![0u8; 64 * 1024];
    // Netem pacing: the link emulator runs on microseconds elapsed since
    // the proxy started, and its verdicts map back onto wall-clock
    // instants. The jitter stream is the per-link netem stream (stream
    // index 0 of this link's already-unique seed) — deliberately disjoint
    // from `rng` so pacing never shifts the seeded loss/damage decisions.
    let epoch = Instant::now();
    let mut netem: Option<NetemLink> = cfg.netem.map(|p| NetemLink::new(p, cfg.seed, 0));
    let mut netem_epoch = 0u64;

    let draw_delay = |rng: &mut StdRng, lo: Duration, hi: Duration| -> Duration {
        if hi <= lo {
            lo
        } else {
            let span = (hi - lo).as_micros().max(1) as u64;
            lo + Duration::from_micros(rng.random_range(0..span))
        }
    };

    while !stop.load(Ordering::Relaxed) {
        // Apply a pending netem profile swap exactly once per epoch bump.
        {
            let cell = *controls.netem.lock();
            if cell.epoch != netem_epoch {
                netem_epoch = cell.epoch;
                match (cell.profile, netem.as_mut()) {
                    (Some(p), Some(link)) => link.set_profile(p),
                    (Some(p), None) => netem = Some(NetemLink::new(p, cfg.seed, 0)),
                    (None, _) => {
                        netem = None;
                        stats.netem_queue_depth.store(0, Ordering::Relaxed);
                    }
                }
            }
        }
        match socket.recv_from(&mut buf) {
            Ok((len, _)) => {
                // Pacing stage, ahead of the damage model: the netem link
                // either tail-drops the datagram (a congestion loss, not a
                // chaos one) or fixes its earliest delivery instant. A
                // partitioned link is cut before the pacer — blocked frames
                // never occupy its buffer.
                let mut paced: Option<Instant> = None;
                let mut paced_drop = false;
                let partitioned = controls.partitioned.load(Ordering::Relaxed);
                if let Some(link) = netem.as_mut().filter(|_| !partitioned) {
                    let now_us = epoch.elapsed().as_micros() as u64;
                    match link.offer(now_us, len) {
                        Verdict::Dropped => {
                            paced_drop = true;
                            stats.netem_dropped.fetch_add(1, Ordering::Relaxed);
                        }
                        Verdict::DeliverAt(at_us) => {
                            paced = Some(epoch + Duration::from_micros(at_us));
                        }
                    }
                    stats
                        .netem_queue_depth
                        .store(link.queue_depth(now_us) as u64, Ordering::Relaxed);
                }
                if partitioned {
                    stats.blocked.fetch_add(1, Ordering::Relaxed);
                } else if paced_drop {
                    // Already counted; the frame never reaches the wire.
                } else if step_drop(&mut channel, &mut rng, &controls.loss_override) {
                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                } else {
                    // Byte-level wire damage, applied before queueing so
                    // duplicates of a damaged frame are identically damaged
                    // (one wire error, two deliveries — like real UDP).
                    let mut payload = buf[..len].to_vec();
                    let corrupt = effective_rate(cfg.corrupt, &controls.corrupt_override);
                    if !payload.is_empty() && corrupt > 0.0 && rng.random_bool(corrupt) {
                        let pos = rng.random_range(0..payload.len());
                        payload[pos] ^= rng.random_range(1..=255u8);
                        stats.corrupted.fetch_add(1, Ordering::Relaxed);
                    }
                    let truncate = effective_rate(cfg.truncate, &controls.truncate_override);
                    if !payload.is_empty() && truncate > 0.0 && rng.random_bool(truncate) {
                        // Strictly shorter prefix; an empty datagram is fine.
                        payload.truncate(rng.random_range(0..payload.len()));
                        stats.truncated.fetch_add(1, Ordering::Relaxed);
                    }
                    let (lo, hi) = cfg.delay;
                    let mut delay = draw_delay(&mut rng, lo, hi);
                    if cfg.reorder > 0.0 && rng.random_bool(cfg.reorder) {
                        // Push this datagram further out so its successors
                        // can overtake it.
                        delay += draw_delay(&mut rng, hi, hi * 2 + Duration::from_micros(200));
                        stats.reordered.fetch_add(1, Ordering::Relaxed);
                    }
                    // With pacing on, the netem delivery instant is the
                    // earliest the frame clears the emulated wire; the
                    // chaos delay rides on top of it.
                    let base = paced.unwrap_or_else(Instant::now);
                    let due = base + delay;
                    if cfg.duplicate > 0.0 && rng.random_bool(cfg.duplicate) {
                        let extra = draw_delay(&mut rng, lo, hi);
                        queue.push((base + extra, payload.clone()));
                        stats.duplicated.fetch_add(1, Ordering::Relaxed);
                    }
                    queue.push((due, payload));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
        // Flush everything due.
        let now = Instant::now();
        let to = *dst.lock();
        let mut i = 0;
        while i < queue.len() {
            if queue[i].0 <= now {
                let (_, payload) = queue.swap_remove(i);
                if socket.send_to(&payload, to).is_ok() {
                    stats.forwarded.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                i += 1;
            }
        }
    }
    // Drain: deliver whatever is still queued so shutdown does not act as
    // an extra loss process.
    let to = *dst.lock();
    for (_, payload) in queue {
        if socket.send_to(&payload, to).is_ok() {
            stats.forwarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv_all(socket: &UdpSocket, window: Duration) -> Vec<Vec<u8>> {
        let mut buf = [0u8; 2048];
        let mut got = Vec::new();
        let deadline = Instant::now() + window;
        socket.set_read_timeout(Some(Duration::from_millis(5))).unwrap();
        while Instant::now() < deadline {
            if let Ok((len, _)) = socket.recv_from(&mut buf) {
                got.push(buf[..len].to_vec());
            }
        }
        got
    }

    #[test]
    fn lossless_proxy_forwards_everything() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..20u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
        }
        let got = recv_all(&dst, Duration::from_millis(200));
        let stats = proxy.shutdown();
        assert_eq!(got.len(), 20, "forwarded {}", stats.forwarded.load(Ordering::Relaxed));
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn lossy_proxy_drops_a_fraction_deterministically() {
        let run = |seed: u64| -> u64 {
            let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
            let cfg = ChaosConfig { seed, loss: 0.5, ..ChaosConfig::default() };
            let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
            let src = UdpSocket::bind("127.0.0.1:0").unwrap();
            for i in 0..100u8 {
                src.send_to(&[i], proxy.addr()).unwrap();
                // Pace sends so the proxy keeps up on small socket buffers.
                std::thread::sleep(Duration::from_micros(200));
            }
            std::thread::sleep(Duration::from_millis(50));
            let stats = proxy.shutdown();
            stats.dropped.load(Ordering::Relaxed)
        };
        let d1 = run(9);
        assert!((20..=80).contains(&d1), "dropped {d1} of 100 at loss 0.5");
        assert_eq!(d1, run(9), "same seed must drop the same datagrams");
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let cfg = ChaosConfig { seed: 4, duplicate: 1.0, ..ChaosConfig::default() };
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..10u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let got = recv_all(&dst, Duration::from_millis(200));
        proxy.shutdown();
        assert_eq!(got.len(), 20, "every datagram must arrive twice");
    }

    #[test]
    fn invalid_configs_are_rejected_at_spawn() {
        for bad in [
            ChaosConfig { loss: 1.5, ..ChaosConfig::default() },
            ChaosConfig { loss: -0.1, ..ChaosConfig::default() },
            ChaosConfig { duplicate: 2.0, ..ChaosConfig::default() },
            ChaosConfig { reorder: f64::NAN, ..ChaosConfig::default() },
            ChaosConfig {
                delay: (Duration::from_millis(5), Duration::from_millis(1)),
                ..ChaosConfig::default()
            },
            ChaosConfig {
                burst: Some(GilbertElliott { p_enter: 7.0, p_exit: 0.2, loss_bad: 0.9 }),
                ..ChaosConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must not validate");
            let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
            let err = ChaosProxy::spawn(dst.local_addr().unwrap(), bad).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{bad:?}");
        }
        ChaosConfig { loss: 1.0, duplicate: 0.0, ..ChaosConfig::default() }.validate().unwrap();
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();

        proxy.set_partitioned(true);
        assert!(proxy.is_partitioned());
        for i in 0..10u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let during = recv_all(&dst, Duration::from_millis(100));
        assert!(during.is_empty(), "partitioned link must deliver nothing, got {during:?}");

        proxy.set_partitioned(false);
        for i in 10..20u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let after = recv_all(&dst, Duration::from_millis(200));
        let stats = proxy.shutdown();
        assert_eq!(after.len(), 10, "healed link must deliver everything");
        assert_eq!(stats.blocked.load(Ordering::Relaxed), 10);
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 0, "blocked is not chaos loss");
    }

    #[test]
    fn handle_controls_partition_and_reads_counters() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let handle = proxy.handle();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();

        handle.set_partitioned(true);
        assert!(proxy.is_partitioned(), "handle and proxy share the switch");
        src.send_to(&[1], proxy.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        handle.set_partitioned(false);
        src.send_to(&[2], proxy.addr()).unwrap();
        let got = recv_all(&dst, Duration::from_millis(150));
        assert_eq!(got, vec![vec![2]]);

        let counters = handle.counters();
        assert_eq!(counters.blocked, 1);
        assert_eq!(counters.forwarded, 1);
        proxy.shutdown();
        // A handle kept after shutdown still reads the final values.
        assert_eq!(handle.counters().blocked, 1);
    }

    #[test]
    fn loss_override_replaces_and_restores_the_seeded_process() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        // Configured lossless; override to 100% loss, then back off.
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let handle = proxy.handle();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();

        assert_eq!(handle.loss_override(), None);
        handle.set_loss_override(Some(1.0));
        assert_eq!(handle.loss_override(), Some(1.0));
        for i in 0..5u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let during = recv_all(&dst, Duration::from_millis(100));
        assert!(during.is_empty(), "override 1.0 must drop everything, got {during:?}");

        handle.set_loss_override(None);
        for i in 5..10u8 {
            src.send_to(&[i], proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let after = recv_all(&dst, Duration::from_millis(150));
        let stats = proxy.shutdown();
        assert_eq!(after.len(), 5, "restoring the config restores losslessness");
        assert_eq!(stats.counters().dropped, 5, "overridden drops count as chaos loss");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn loss_override_rejects_non_probabilities() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        proxy.handle().set_loss_override(Some(1.5));
    }

    #[test]
    fn corrupt_mode_flips_exactly_one_byte_per_datagram() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let cfg = ChaosConfig { seed: 6, corrupt: 1.0, ..ChaosConfig::default() };
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        let original = [7u8; 32];
        for _ in 0..10 {
            src.send_to(&original, proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let got = recv_all(&dst, Duration::from_millis(200));
        let stats = proxy.shutdown();
        assert_eq!(got.len(), 10, "corruption damages, it does not drop");
        for payload in &got {
            assert_eq!(payload.len(), original.len());
            let differing = payload.iter().zip(&original).filter(|(a, b)| a != b).count();
            assert_eq!(differing, 1, "exactly one byte must differ, got {differing}");
        }
        assert_eq!(stats.counters().corrupted, 10);
        assert_eq!(stats.counters().dropped, 0);
    }

    #[test]
    fn truncate_mode_cuts_strictly_shorter_prefixes() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let cfg = ChaosConfig { seed: 8, truncate: 1.0, ..ChaosConfig::default() };
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        let original: Vec<u8> = (0..32).collect();
        for _ in 0..10 {
            src.send_to(&original, proxy.addr()).unwrap();
            std::thread::sleep(Duration::from_micros(200));
        }
        let got = recv_all(&dst, Duration::from_millis(200));
        let stats = proxy.shutdown();
        assert_eq!(got.len(), 10);
        for payload in &got {
            assert!(payload.len() < original.len(), "must be strictly shorter");
            assert_eq!(payload[..], original[..payload.len()], "must be a prefix");
        }
        assert_eq!(stats.counters().truncated, 10);
    }

    #[test]
    fn corrupt_and_truncate_overrides_flip_at_runtime() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let handle = proxy.handle();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();

        assert_eq!(handle.corrupt_override(), None);
        assert_eq!(handle.truncate_override(), None);
        handle.set_corrupt_override(Some(1.0));
        assert_eq!(handle.corrupt_override(), Some(1.0));
        src.send_to(&[1, 2, 3, 4], proxy.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        handle.set_corrupt_override(None);
        handle.set_truncate_override(Some(1.0));
        src.send_to(&[5, 6, 7, 8], proxy.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        handle.set_truncate_override(None);
        src.send_to(&[9, 10, 11, 12], proxy.addr()).unwrap();
        let got = recv_all(&dst, Duration::from_millis(150));
        let stats = proxy.shutdown();
        assert_eq!(got.len(), 3);
        assert_eq!(stats.counters().corrupted, 1);
        assert_eq!(stats.counters().truncated, 1);
        assert_eq!(got[2], vec![9, 10, 11, 12], "restored link forwards untouched");
    }

    #[test]
    fn invalid_corrupt_truncate_probabilities_are_rejected() {
        for bad in [
            ChaosConfig { corrupt: 1.5, ..ChaosConfig::default() },
            ChaosConfig { truncate: -0.5, ..ChaosConfig::default() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must not validate");
        }
        ChaosConfig { corrupt: 0.3, truncate: 0.3, ..ChaosConfig::default() }.validate().unwrap();
    }

    #[test]
    fn set_dst_reaims_forwarding() {
        let old = UdpSocket::bind("127.0.0.1:0").unwrap();
        let new = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(old.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        src.send_to(&[1], proxy.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        proxy.set_dst(new.local_addr().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        src.send_to(&[2], proxy.addr()).unwrap();
        let got_new = recv_all(&new, Duration::from_millis(150));
        proxy.shutdown();
        assert_eq!(got_new, vec![vec![2]], "post-reaim datagrams go to the new socket");
    }

    fn pacing_profile(latency_us: u64, rate_bps: u64, buffer_frames: usize) -> DirProfile {
        DirProfile {
            rate_bps,
            latency_us,
            jitter: ssr_netem::Jitter::None,
            buffer_frames,
            loss: 0.0,
        }
    }

    #[test]
    fn typed_validation_errors_name_the_offending_knob() {
        let bad_prob = ChaosConfig { corrupt: 1.5, ..ChaosConfig::default() };
        assert_eq!(
            bad_prob.validate(),
            Err(InvalidChaosConfig::Probability { name: "corrupt", value: 1.5 })
        );
        let bad_rev = ChaosConfig {
            delay_reverse: Some((Duration::from_millis(9), Duration::from_millis(3))),
            ..ChaosConfig::default()
        };
        assert!(matches!(
            bad_rev.validate(),
            Err(InvalidChaosConfig::InvertedDelay { name: "delay_reverse", .. })
        ));
        for (bad, why) in [
            (pacing_profile(100, 0, 4), "zero rate"),
            (pacing_profile(100, 1_000_000, 0), "buffer below one frame"),
            (
                DirProfile {
                    jitter: ssr_netem::Jitter::Uniform { max_us: 500 },
                    ..pacing_profile(100, 1_000_000, 4)
                },
                "jitter above latency",
            ),
        ] {
            let cfg = ChaosConfig { netem: Some(bad), ..ChaosConfig::default() };
            assert!(
                matches!(cfg.validate(), Err(InvalidChaosConfig::Netem(_))),
                "{why} must be a netem error"
            );
            let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
            let err = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{why}");
        }
        ChaosConfig { netem: Some(pacing_profile(100, 1_000_000, 4)), ..ChaosConfig::default() }
            .validate()
            .unwrap();
    }

    #[test]
    fn for_direction_resolves_asymmetry_with_symmetric_default() {
        let fast = pacing_profile(100, 1_000_000_000, 128);
        let thin = DirProfile { loss: 0.01, ..pacing_profile(30_000, 5_000_000, 16) };
        let cfg = ChaosConfig {
            loss: 0.5,
            delay: (Duration::ZERO, Duration::from_millis(1)),
            delay_reverse: Some((Duration::from_millis(5), Duration::from_millis(9))),
            netem: Some(fast),
            netem_reverse: Some(thin),
            ..ChaosConfig::default()
        };
        let fwd = cfg.for_direction(false);
        assert_eq!(fwd.delay, cfg.delay);
        assert_eq!(fwd.netem, Some(fast));
        assert_eq!(fwd.loss, 0.0, "the profile's loss owns the direction");
        assert_eq!((fwd.delay_reverse, fwd.netem_reverse), (None, None), "resolved");
        let rev = cfg.for_direction(true);
        assert_eq!(rev.delay, (Duration::from_millis(5), Duration::from_millis(9)));
        assert_eq!(rev.netem, Some(thin));
        assert_eq!(rev.loss, 0.01);

        // Symmetric default: no `_reverse` fields means both directions
        // resolve identically (and without a profile, `loss` survives).
        let sym = ChaosConfig { loss: 0.5, ..ChaosConfig::default() };
        assert_eq!(sym.for_direction(false), sym.for_direction(true));
        assert_eq!(sym.for_direction(true).loss, 0.5);
    }

    #[test]
    fn netem_pacing_delays_datagrams() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let cfg = ChaosConfig {
            seed: 3,
            netem: Some(pacing_profile(30_000, 1_000_000_000, 64)),
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        let sent_at = Instant::now();
        src.send_to(&[42], proxy.addr()).unwrap();
        dst.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let mut buf = [0u8; 16];
        let (len, _) = dst.recv_from(&mut buf).unwrap();
        let waited = sent_at.elapsed();
        let stats = proxy.shutdown();
        assert_eq!(&buf[..len], &[42]);
        assert!(waited >= Duration::from_millis(25), "30 ms latency, arrived after {waited:?}");
        assert_eq!(stats.counters().netem_dropped, 0);
        assert_eq!(stats.counters().dropped, 0);
    }

    #[test]
    fn netem_buffer_drops_count_apart_from_chaos_loss() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        // 8 kbit/s: a 32-byte datagram serializes in 32 ms; buffer of one
        // frame, so a back-to-back burst mostly tail-drops.
        let cfg = ChaosConfig {
            seed: 9,
            netem: Some(pacing_profile(0, 8_000, 1)),
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..20u8 {
            src.send_to(&[i; 32], proxy.addr()).unwrap();
        }
        std::thread::sleep(Duration::from_millis(100));
        let stats = proxy.shutdown();
        let c = stats.counters();
        assert!(c.netem_dropped > 0, "a 1-frame buffer under a burst must tail-drop");
        assert_eq!(c.dropped, 0, "congestion loss is not chaos loss");
        assert_eq!(c.forwarded + c.netem_dropped, 20, "every datagram is accounted once");
    }

    #[test]
    fn netem_swaps_at_runtime_through_the_handle() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), ChaosConfig::default()).unwrap();
        let handle = proxy.handle();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        dst.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let mut buf = [0u8; 16];
        let mut round_trip = |tag: u8| {
            let sent_at = Instant::now();
            src.send_to(&[tag], proxy.addr()).unwrap();
            let (len, _) = dst.recv_from(&mut buf).unwrap();
            assert_eq!(&buf[..len], &[tag]);
            sent_at.elapsed()
        };

        assert_eq!(handle.netem_profile(), None);
        assert!(round_trip(1) < Duration::from_millis(20), "no pacing yet");

        let slow = pacing_profile(50_000, 1_000_000_000, 64);
        handle.set_netem(Some(slow)).unwrap();
        assert_eq!(handle.netem_profile(), Some(slow));
        std::thread::sleep(Duration::from_millis(10)); // let the proxy apply it
        assert!(round_trip(2) >= Duration::from_millis(40), "50 ms pacing latency");

        handle.set_netem(None).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(round_trip(3) < Duration::from_millis(20), "pacing off again");

        assert!(
            matches!(
                handle.set_netem(Some(pacing_profile(1, 0, 1))),
                Err(InvalidChaosConfig::Netem(_))
            ),
            "swaps validate like spawns"
        );
        proxy.shutdown();
    }

    #[test]
    fn delay_holds_datagrams_back() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        let cfg = ChaosConfig {
            seed: 5,
            delay: (Duration::from_millis(30), Duration::from_millis(40)),
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::spawn(dst.local_addr().unwrap(), cfg).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        let sent_at = Instant::now();
        src.send_to(&[42], proxy.addr()).unwrap();
        dst.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let mut buf = [0u8; 16];
        let (len, _) = dst.recv_from(&mut buf).unwrap();
        let waited = sent_at.elapsed();
        proxy.shutdown();
        assert_eq!(&buf[..len], &[42]);
        assert!(waited >= Duration::from_millis(25), "arrived after {waited:?}");
    }
}
