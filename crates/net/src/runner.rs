//! The CST node runner: one thread driving a shared-core [`Replica`] over a
//! [`Transport`].
//!
//! This is Algorithm 4 against real sockets: on receipt refresh the cache,
//! log any privilege change, dwell `exec_delay` in the critical section,
//! execute one enabled rule and republish; the transport's own jittered
//! timer handles the periodic rebroadcast (line 11).
//!
//! The runner exits on either of two flags in its [`NodeControl`]: the
//! shared `stop` (graceful end of the whole run) or the per-node `kill`
//! (fault injection — the supervisor in [`crate::supervisor`] flips it to
//! simulate a process crash). Either way it hands back both the final
//! replica and the transport, so a restarted incarnation can reuse the same
//! sockets and the ring needs no re-wiring.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use ssr_core::{Replica, RingAlgorithm, WireState};
use ssr_runtime::activity::ActivityEvent;

use crate::metrics::NodeMetrics;
use crate::transport::{Inbound, Neighbor, Transport};

/// Per-node runner parameters.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Critical-section dwell before handing the token on. Keep this well
    /// above the OS scheduling quantum on single-core hosts so activity
    /// logs show the true privilege overlap.
    pub exec_delay: Duration,
    /// Sleep when the sockets are idle (bounds busy-waiting; also the
    /// granularity of the retransmit timer).
    pub idle_sleep: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig { exec_delay: Duration::from_millis(1), idle_sleep: Duration::from_micros(300) }
    }
}

/// Control surface of one running node: how the outside world stops it and
/// where it persists its state.
#[derive(Debug, Clone)]
pub struct NodeControl {
    /// Graceful end of the whole run (shared by every node).
    pub stop: Arc<AtomicBool>,
    /// Crash this node now (per-node; set by the fault supervisor).
    pub kill: Arc<AtomicBool>,
    /// When present, the node writes an [`ssr_core::wire`] snapshot of its
    /// replica here after every state change — the persisted state a
    /// snapshot-mode restart recovers from.
    pub snapshot: Option<Arc<Mutex<Vec<u8>>>>,
}

impl NodeControl {
    /// A control that only answers to the shared `stop` flag.
    pub fn new(stop: Arc<AtomicBool>) -> Self {
        NodeControl { stop, kill: Arc::new(AtomicBool::new(false)), snapshot: None }
    }

    /// True iff the node should exit its main loop.
    pub fn should_exit(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || self.kill.load(Ordering::Relaxed)
    }
}

/// Run one node until its [`NodeControl`] tells it to exit; returns the
/// final replica together with the transport (reused across restarts).
///
/// `log` collects privilege transitions with wall-clock offsets from
/// `start`, in the exact format `ssr_runtime::activity::analyze` consumes.
#[allow(clippy::too_many_arguments)]
pub fn run_node<A, T>(
    algo: A,
    i: usize,
    mut replica: Replica<A::State>,
    mut transport: T,
    cfg: NodeConfig,
    control: NodeControl,
    log: Arc<Mutex<Vec<ActivityEvent>>>,
    start: Instant,
    metrics: Arc<NodeMetrics>,
) -> (Replica<A::State>, T)
where
    A: RingAlgorithm,
    A::State: WireState,
    T: Transport<A::State>,
{
    let mut last_privileged = replica.is_privileged(&algo, i);

    // Live-introspection gauges: locally-evaluated privilege and token
    // holdings, refreshed on every replica change. Relaxed stores on the hot
    // path — no scrape, no lock, no extra cost beyond two atomic writes.
    let set_gauges = |replica: &Replica<A::State>, metrics: &NodeMetrics| {
        let tokens = replica.tokens(&algo, i);
        NodeMetrics::set(&metrics.privileged, u64::from(tokens.any()));
        NodeMetrics::set(&metrics.token_primary, u64::from(tokens.primary));
        NodeMetrics::set(&metrics.token_secondary, u64::from(tokens.secondary));
    };

    let log_transition = |replica: &Replica<A::State>, last: &mut bool, metrics: &NodeMetrics| {
        set_gauges(replica, metrics);
        let now_privileged = replica.is_privileged(&algo, i);
        if now_privileged != *last {
            *last = now_privileged;
            if now_privileged {
                NodeMetrics::inc(&metrics.activations);
            }
            log.lock().push(ActivityEvent { node: i, at: start.elapsed(), active: now_privileged });
        }
    };

    let persist = |replica: &Replica<A::State>| {
        if let Some(store) = &control.snapshot {
            *store.lock() = replica.snapshot();
        }
    };

    // Announce the initial state so coherent peers stay coherent and
    // incoherent ones converge; persist it so a crash before the first rule
    // firing still leaves a restorable snapshot.
    let _ = transport.publish(&replica.own);
    persist(&replica);
    set_gauges(&replica, &metrics);

    while !control.should_exit() {
        let _ = transport.pump();
        match transport.try_recv() {
            Some(Inbound { from, state }) => {
                match from {
                    Neighbor::Pred => replica.cache_pred = state,
                    Neighbor::Succ => replica.cache_succ = state,
                }
                replica.messages_received += 1;
                // Privilege may change on a pure cache refresh (e.g. the
                // primary token arriving) — log before any dwell.
                log_transition(&replica, &mut last_privileged, &metrics);
                if replica.enabled_rule(&algo, i).is_some() {
                    if !cfg.exec_delay.is_zero() {
                        // Critical-section dwell: the node stays privileged
                        // while it does its work.
                        thread::sleep(cfg.exec_delay);
                    }
                    if replica.execute_one(&algo, i).is_some() {
                        NodeMetrics::inc(&metrics.rule_firings);
                        let _ = transport.publish(&replica.own);
                    }
                    log_transition(&replica, &mut last_privileged, &metrics);
                }
                persist(&replica);
            }
            None => thread::sleep(cfg.idle_sleep),
        }
    }
    (replica, transport)
}
