//! The CST node runner: one thread driving a shared-core [`Replica`] over a
//! [`Transport`].
//!
//! This is Algorithm 4 against real sockets: on receipt refresh the cache,
//! log any privilege change, dwell `exec_delay` in the critical section,
//! execute one enabled rule and republish; the transport's own jittered
//! timer handles the periodic rebroadcast (line 11).
//!
//! The runner exits on either of two flags in its [`NodeControl`]: the
//! shared `stop` (graceful end of the whole run) or the per-node `kill`
//! (fault injection — the supervisor in [`crate::supervisor`] flips it to
//! simulate a process crash). Either way it hands back both the final
//! replica and the transport, so a restarted incarnation can reuse the same
//! sockets and the ring needs no re-wiring.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use ssr_core::{Replica, RingAlgorithm, WireState};
use ssr_runtime::activity::ActivityEvent;

use crate::metrics::NodeMetrics;
use crate::transport::{Inbound, Neighbor, Transport};

/// Per-node runner parameters.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Critical-section dwell before handing the token on. Keep this well
    /// above the OS scheduling quantum on single-core hosts so activity
    /// logs show the true privilege overlap.
    pub exec_delay: Duration,
    /// Sleep when the sockets are idle (bounds busy-waiting; also the
    /// granularity of the retransmit timer).
    pub idle_sleep: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig { exec_delay: Duration::from_millis(1), idle_sleep: Duration::from_micros(300) }
    }
}

/// One escalation of a node's convergence watchdog, reported through the
/// [`Watchdog::outbox`] so the supervisor can turn it into a recovery row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogEvent {
    /// Ring index of the escalating node.
    pub node: usize,
    /// False: stage-1 resync (republish). True: stage-2 amnesia
    /// self-restart with a generation bump.
    pub restart: bool,
    /// Wall-clock offset from run start.
    pub at: Duration,
}

/// A starvation budget that tracks the *live* ring size instead of
/// capturing `n` at spawn. The Lemma-5 bound the budget derives from is
/// `3n` steps, so the correct budget is a function of the ring size — and
/// since a membership re-splice changes `n` mid-run, every node re-reads
/// the shared size on each watchdog check. Whoever performs the re-splice
/// (the supervisor, a [`crate::membership::RingMembership`], a hosted
/// tenant) updates the shared counter and every node's watchdog rescales
/// on its next check, with no restart and no channel.
#[derive(Debug, Clone)]
pub struct SharedBudget {
    /// Live ring size; shared with the component that performs re-splices.
    ring_size: Arc<AtomicUsize>,
    /// Base retransmit period of the cluster's transports.
    tick: Duration,
    /// Multiplier on the `3n`-step Lemma 5 bound.
    scale: u32,
    /// Lower bound protecting small rings from scheduler noise.
    floor: Duration,
}

impl SharedBudget {
    /// A budget reading the live ring size from `ring_size`.
    pub fn new(ring_size: Arc<AtomicUsize>, tick: Duration, scale: u32, floor: Duration) -> Self {
        SharedBudget { ring_size, tick, scale, floor }
    }

    /// A budget over a ring whose size never changes (no membership layer).
    pub fn fixed(n: usize, tick: Duration, scale: u32, floor: Duration) -> Self {
        SharedBudget::new(Arc::new(AtomicUsize::new(n)), tick, scale, floor)
    }

    /// The shared size counter, for the component that re-splices the ring.
    pub fn ring_size_handle(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.ring_size)
    }

    /// Record a new ring size; every node's next watchdog check uses it.
    pub fn set_ring_size(&self, n: usize) {
        self.ring_size.store(n, Ordering::Relaxed);
    }

    /// The budget for the ring size as of *now*:
    /// `max(tick · 3n · scale, floor)`.
    pub fn current(&self) -> Duration {
        let n = self.ring_size.load(Ordering::Relaxed).max(1);
        let steps = (3 * n as u64).saturating_mul(u64::from(self.scale));
        (self.tick * u32::try_from(steps).unwrap_or(u32::MAX)).max(self.floor)
    }
}

/// Per-node convergence watchdog: the node-local half of the Bernard et al.
/// reloading-wave idea. If the node's rule engine starves — no rule firing
/// — for longer than `budget` (derived from the paper's 3n-step bound,
/// Lemma 5, scaled by the retransmit period), the node escalates locally:
/// first a resync (republish its state to both neighbours), then — if the
/// starvation persists for another budget — an amnesia self-restart: forget
/// both caches, jump the wire generation by `generation_bump` so neighbours'
/// staleness filters accept the reborn sender, republish. No supervisor
/// involvement; the ring heals itself.
#[derive(Debug, Clone)]
pub struct Watchdog {
    /// Starvation budget before each escalation stage, re-read on every
    /// check so it rescales when a re-splice changes the ring size.
    pub budget: SharedBudget,
    /// Generation jump applied by a stage-2 self-restart (mirrors the
    /// supervisor's incarnation-scaled rebind floor).
    pub generation_bump: u32,
    /// Escalation reports, drained by the supervisor's polling loop.
    pub outbox: Arc<Mutex<Vec<WatchdogEvent>>>,
}

/// Control surface of one running node: how the outside world stops it,
/// hurts it, and where it persists its state.
#[derive(Debug, Clone)]
pub struct NodeControl {
    /// Graceful end of the whole run (shared by every node).
    pub stop: Arc<AtomicBool>,
    /// Crash this node now (per-node; set by the fault supervisor).
    pub kill: Arc<AtomicBool>,
    /// When present, the node writes an [`ssr_core::wire`] snapshot of its
    /// replica here after every state change — the persisted state a
    /// snapshot-mode restart recovers from.
    pub snapshot: Option<Arc<Mutex<Vec<u8>>>>,
    /// Adversarial state injection: a replica snapshot deposited here is
    /// swallowed whole on the next loop iteration — the live replica is
    /// overwritten in place ([`ssr_mpnet::FaultKind::CorruptState`]).
    pub poison: Arc<Mutex<Option<Vec<u8>>>>,
    /// While set, the rule engine is suspended: the node keeps receiving,
    /// caching and retransmitting (a stuck daemon still ACKs) but never
    /// executes a rule ([`ssr_mpnet::FaultKind::FreezeNode`]). Cleared by a
    /// supervisor restart or a stage-2 watchdog self-restart.
    pub frozen: Arc<AtomicBool>,
    /// Degraded-mode suspension, usually ring-wide (one flag shared by
    /// every node): while set, the handshake's rule engine must not grant
    /// or hand over privileges because a random-walk fallback token is
    /// circulating instead (see `crate::membership`). Unlike [`frozen`],
    /// this also pauses the watchdog — a suspended engine is not starving
    /// — and a stage-2 self-restart never clears it.
    ///
    /// [`frozen`]: NodeControl::frozen
    pub suspended: Arc<AtomicBool>,
    /// Optional convergence watchdog (None: never escalate).
    pub watchdog: Option<Watchdog>,
}

impl NodeControl {
    /// A control that only answers to the shared `stop` flag.
    pub fn new(stop: Arc<AtomicBool>) -> Self {
        NodeControl {
            stop,
            kill: Arc::new(AtomicBool::new(false)),
            snapshot: None,
            poison: Arc::new(Mutex::new(None)),
            frozen: Arc::new(AtomicBool::new(false)),
            suspended: Arc::new(AtomicBool::new(false)),
            watchdog: None,
        }
    }

    /// True iff the node should exit its main loop.
    pub fn should_exit(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || self.kill.load(Ordering::Relaxed)
    }
}

/// Run one node until its [`NodeControl`] tells it to exit; returns the
/// final replica together with the transport (reused across restarts).
///
/// `log` collects privilege transitions with wall-clock offsets from
/// `start`, in the exact format `ssr_runtime::activity::analyze` consumes.
#[allow(clippy::too_many_arguments)]
pub fn run_node<A, T>(
    algo: A,
    i: usize,
    mut replica: Replica<A::State>,
    mut transport: T,
    cfg: NodeConfig,
    control: NodeControl,
    log: Arc<Mutex<Vec<ActivityEvent>>>,
    start: Instant,
    metrics: Arc<NodeMetrics>,
) -> (Replica<A::State>, T)
where
    A: RingAlgorithm,
    A::State: WireState + Clone,
    T: Transport<A::State>,
{
    let mut last_privileged = replica.is_privileged(&algo, i);
    // Watchdog bookkeeping: when the rule engine last made progress, and
    // whether the stage-1 resync already ran for the current starvation.
    let mut last_progress = Instant::now();
    let mut resynced = false;
    let mut was_suspended = false;

    // Live-introspection gauges: locally-evaluated privilege and token
    // holdings, refreshed on every replica change. Relaxed stores on the hot
    // path — no scrape, no lock, no extra cost beyond two atomic writes.
    let set_gauges = |replica: &Replica<A::State>, metrics: &NodeMetrics| {
        let tokens = replica.tokens(&algo, i);
        NodeMetrics::set(&metrics.privileged, u64::from(tokens.any()));
        NodeMetrics::set(&metrics.token_primary, u64::from(tokens.primary));
        NodeMetrics::set(&metrics.token_secondary, u64::from(tokens.secondary));
    };

    let log_transition = |replica: &Replica<A::State>, last: &mut bool, metrics: &NodeMetrics| {
        set_gauges(replica, metrics);
        let now_privileged = replica.is_privileged(&algo, i);
        if now_privileged != *last {
            *last = now_privileged;
            if now_privileged {
                NodeMetrics::inc(&metrics.activations);
            }
            log.lock().push(ActivityEvent { node: i, at: start.elapsed(), active: now_privileged });
        }
    };

    let persist = |replica: &Replica<A::State>| {
        if let Some(store) = &control.snapshot {
            *store.lock() = replica.snapshot();
        }
    };

    // Announce the initial state so coherent peers stay coherent and
    // incoherent ones converge; persist it so a crash before the first rule
    // firing still leaves a restorable snapshot.
    let _ = transport.publish(&replica.own);
    persist(&replica);
    set_gauges(&replica, &metrics);

    while !control.should_exit() {
        // Adversarial state injection: swallow a deposited poison snapshot
        // whole — own state, both caches — and keep running on it. The
        // replica announces its poisoned state like any other change;
        // self-stabilization must absorb it.
        if let Some(bytes) = control.poison.lock().take() {
            if let Ok(poisoned) = Replica::from_snapshot(&bytes) {
                replica = poisoned;
                log_transition(&replica, &mut last_privileged, &metrics);
                let _ = transport.publish(&replica.own);
                persist(&replica);
            }
        }

        let _ = transport.pump();
        match transport.try_recv() {
            Some(Inbound { from, state }) => {
                match from {
                    Neighbor::Pred => replica.cache_pred = state,
                    Neighbor::Succ => replica.cache_succ = state,
                }
                replica.messages_received += 1;
                // Privilege may change on a pure cache refresh (e.g. the
                // primary token arriving) — log before any dwell.
                log_transition(&replica, &mut last_privileged, &metrics);
                // A frozen rule engine (stuck daemon) still caches and
                // retransmits — only execution is suspended. A degraded-mode
                // suspension behaves the same at this point: the handshake
                // must not fire while the fallback walker is circulating.
                let frozen = control.frozen.load(Ordering::Relaxed)
                    || control.suspended.load(Ordering::Relaxed);
                if !frozen && replica.enabled_rule(&algo, i).is_some() {
                    if !cfg.exec_delay.is_zero() {
                        // Critical-section dwell: the node stays privileged
                        // while it does its work.
                        thread::sleep(cfg.exec_delay);
                    }
                    if replica.execute_one(&algo, i).is_some() {
                        NodeMetrics::inc(&metrics.rule_firings);
                        let _ = transport.publish(&replica.own);
                        last_progress = Instant::now();
                        resynced = false;
                    }
                    log_transition(&replica, &mut last_privileged, &metrics);
                }
                persist(&replica);
            }
            None => thread::sleep(cfg.idle_sleep),
        }

        // Convergence watchdog: escalate locally when the rule engine has
        // starved past its budget — resync first, self-restart second. A
        // degraded-mode suspension pauses the clock: the engine is idle by
        // design, not starving, and a stage-2 amnesia restart mid-fallback
        // would mint handshake privileges against the walker's exclusivity.
        let suspended_now = control.suspended.load(Ordering::Relaxed);
        if suspended_now {
            last_progress = Instant::now();
            resynced = false;
            if !was_suspended {
                NodeMetrics::inc(&metrics.suspensions);
            }
        }
        was_suspended = suspended_now;
        if let Some(wd) = &control.watchdog {
            if last_progress.elapsed() >= wd.budget.current() {
                if !resynced {
                    // Stage 1: resync. Re-offer our state to both
                    // neighbours in case the stall is a lost-message wedge.
                    let _ = transport.publish(&replica.own);
                    NodeMetrics::inc(&metrics.watchdog_resyncs);
                    wd.outbox.lock().push(WatchdogEvent {
                        node: i,
                        restart: false,
                        at: start.elapsed(),
                    });
                    resynced = true;
                } else {
                    // Stage 2: amnesia self-restart. Forget everything we
                    // believed about the neighbours, clear a stuck-daemon
                    // freeze, and rebind past the staleness filters.
                    control.frozen.store(false, Ordering::Relaxed);
                    replica.cache_pred = replica.own.clone();
                    replica.cache_succ = replica.own.clone();
                    transport.bump_generation(wd.generation_bump);
                    let _ = transport.publish(&replica.own);
                    log_transition(&replica, &mut last_privileged, &metrics);
                    persist(&replica);
                    NodeMetrics::inc(&metrics.watchdog_restarts);
                    wd.outbox.lock().push(WatchdogEvent {
                        node: i,
                        restart: true,
                        at: start.elapsed(),
                    });
                    resynced = false;
                }
                last_progress = Instant::now();
            }
        }
    }
    (replica, transport)
}
