//! Live (ℓ,k)-critical-section auditing of activity traces.
//!
//! `ssr_core::lkcs` states the paper's Theorem 1 guarantee as a
//! [`CsSpec`] — "at least ℓ, at most k of the n processes privileged" —
//! and audits *configurations* with [`ssr_core::audit_cs`]. A real cluster
//! never hands us configurations, only the stream of privilege transitions
//! the node runners log ([`ActivityEvent`]). This module replays that
//! stream against a [`CsSpec`]: every interval between consecutive events
//! has a definite privileged count, so the trace partitions into satisfied
//! and violating time, violation *episodes* (maximal violating spans) can
//! be counted, and the whole thing works incrementally — `ssr-serve` feeds
//! events as they arrive and scrapes the running totals into its per-tenant
//! `cs_violations_total` metric, while `ssrmin soak` audits the recorded
//! trace after the fact.
//!
//! The replay is the same fold `cluster::stabilization_time` performs for
//! the (1,2) band, generalized to any spec and taught to measure durations
//! rather than find a single threshold instant.

use std::time::Duration;

use ssr_core::CsSpec;
use ssr_runtime::activity::ActivityEvent;

/// Running totals of a trace audit: how much audited time satisfied the
/// spec, how much violated it, and how often violation episodes began.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCsAudit {
    /// Total audited time (intervals at or after the audit start).
    pub audited: Duration,
    /// Audited time whose privileged count violated the spec.
    pub violated: Duration,
    /// Number of violation episodes: maximal spans of violating time
    /// (consecutive violating intervals count once).
    pub violations: u64,
    /// Smallest privileged count seen over audited time.
    pub min_active: usize,
    /// Largest privileged count seen over audited time.
    pub max_active: usize,
    /// Audited intervals folded (diagnostics).
    pub intervals: u64,
}

impl TraceCsAudit {
    /// True iff no audited time violated the spec.
    pub fn clean(&self) -> bool {
        self.violations == 0 && self.violated.is_zero()
    }
}

/// Incremental trace auditor: feed privilege transitions in time order,
/// read the [`TraceCsAudit`] totals at any point.
#[derive(Debug, Clone)]
pub struct TraceAuditor {
    spec: CsSpec,
    /// Audit window start: time before this (convergence warmup, or the
    /// measured stabilization instant) is not charged either way.
    from: Duration,
    active: Vec<bool>,
    count: usize,
    /// End of the last folded interval.
    cursor: Duration,
    /// Whether the previous audited interval violated the spec (episode
    /// boundary detection).
    in_violation: bool,
    audit: TraceCsAudit,
}

impl TraceAuditor {
    /// Start an audit of a ring whose initial privilege vector is
    /// `initial_active`, ignoring time before `from`.
    ///
    /// # Panics
    ///
    /// If `initial_active.len()` does not match `spec`'s process count.
    pub fn new(spec: CsSpec, initial_active: &[bool], from: Duration) -> Self {
        assert_eq!(
            initial_active.len(),
            spec.n,
            "initial activity vector must cover all n processes"
        );
        TraceAuditor {
            spec,
            from,
            active: initial_active.to_vec(),
            count: initial_active.iter().filter(|&&a| a).count(),
            cursor: Duration::ZERO,
            in_violation: false,
            audit: TraceCsAudit { min_active: usize::MAX, ..TraceCsAudit::default() },
        }
    }

    /// The spec being audited.
    pub fn spec(&self) -> CsSpec {
        self.spec
    }

    /// Current privileged count (as of the last folded instant).
    pub fn privileged(&self) -> usize {
        self.count
    }

    /// Fold one privilege transition. Events must arrive in non-decreasing
    /// `at` order (sort batches first); an event earlier than the cursor is
    /// clamped to it, so a slightly-stale straggler degrades accuracy
    /// rather than corrupting the totals.
    pub fn push(&mut self, event: ActivityEvent) {
        let at = event.at.max(self.cursor);
        self.fold_interval(at);
        if let Some(slot) = self.active.get_mut(event.node) {
            if *slot != event.active {
                *slot = event.active;
                if event.active {
                    self.count += 1;
                } else {
                    self.count -= 1;
                }
            }
        }
    }

    /// Fold audited time up to `now` without a transition — the live
    /// auditor calls this between event batches so idle (steady-state)
    /// time is charged to the current count.
    pub fn advance_to(&mut self, now: Duration) {
        if now > self.cursor {
            self.fold_interval(now);
        }
    }

    /// The running totals.
    pub fn audit(&self) -> TraceCsAudit {
        let mut a = self.audit;
        if a.min_active == usize::MAX {
            a.min_active = 0;
        }
        a
    }

    fn fold_interval(&mut self, until: Duration) {
        let begin = self.cursor.max(self.from);
        self.cursor = until;
        if until <= begin {
            return;
        }
        let span = until - begin;
        let satisfied = self.spec.satisfied_by(self.count);
        self.audit.audited += span;
        self.audit.intervals += 1;
        self.audit.min_active = self.audit.min_active.min(self.count);
        self.audit.max_active = self.audit.max_active.max(self.count);
        if !satisfied {
            self.audit.violated += span;
            if !self.in_violation {
                self.audit.violations += 1;
            }
        }
        self.in_violation = !satisfied;
    }
}

/// Audit a recorded trace in one call: replay `events` (sorted by time)
/// from the ring's initial privilege vector, auditing the window
/// `[from, to]` against `spec`.
pub fn audit_trace(
    spec: CsSpec,
    initial_active: &[bool],
    events: &[ActivityEvent],
    from: Duration,
    to: Duration,
) -> TraceCsAudit {
    let mut auditor = TraceAuditor::new(spec, initial_active, from);
    let mut ordered: Vec<&ActivityEvent> = events.iter().collect();
    ordered.sort_by_key(|e| e.at);
    for event in ordered {
        if event.at > to {
            break;
        }
        auditor.push(*event);
    }
    auditor.advance_to(to);
    auditor.audit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster, ClusterConfig};
    use ssr_core::{CriticalSectionProtocol, RingParams, SsrMin};

    fn ev(node: usize, at_ms: u64, active: bool) -> ActivityEvent {
        ActivityEvent { node, at: Duration::from_millis(at_ms), active }
    }

    /// A hand-recorded legitimate handover: exactly the (1,2) pattern the
    /// paper's Figure 1 shows — the successor activates before the
    /// predecessor deactivates, so the count breathes between 1 and 2 and
    /// never violates the (1,2)-CS spec.
    #[test]
    fn graceful_handover_trace_is_clean() {
        let spec = CsSpec::new(1, 2, 4);
        let initial = [true, false, false, false];
        let events = [
            ev(1, 10, true),
            ev(0, 12, false),
            ev(2, 20, true),
            ev(1, 22, false),
            ev(3, 30, true),
            ev(2, 31, false),
        ];
        let audit = audit_trace(spec, &initial, &events, Duration::ZERO, Duration::from_millis(40));
        assert!(audit.clean(), "{audit:?}");
        assert_eq!(audit.audited, Duration::from_millis(40));
        assert_eq!((audit.min_active, audit.max_active), (1, 2));
    }

    /// A trace that loses the token (count 0) and later floods it (count 3)
    /// produces two distinct violation episodes with the right durations.
    #[test]
    fn token_loss_and_flood_are_counted_as_episodes() {
        let spec = CsSpec::new(1, 2, 3);
        let initial = [true, false, false];
        let events = [
            // 10..15: nobody privileged — episode 1, 5 ms.
            ev(0, 10, false),
            ev(1, 15, true),
            // 20..22: all three privileged — episode 2, 2 ms.
            ev(0, 20, true),
            ev(2, 20, true),
            ev(0, 22, false),
            ev(2, 22, false),
        ];
        let audit = audit_trace(spec, &initial, &events, Duration::ZERO, Duration::from_millis(30));
        assert_eq!(audit.violations, 2);
        assert_eq!(audit.violated, Duration::from_millis(7));
        assert_eq!((audit.min_active, audit.max_active), (0, 3));
        assert!(!audit.clean());
    }

    /// Time before the audit-window start is not charged: the same losing
    /// trace audited from after its recovery is clean.
    #[test]
    fn warmup_window_is_excluded() {
        let spec = CsSpec::new(1, 2, 3);
        let initial = [false, false, false]; // illegitimate start: count 0
        let events = [ev(1, 8, true)];
        let dirty = audit_trace(spec, &initial, &events, Duration::ZERO, Duration::from_millis(20));
        assert_eq!(dirty.violations, 1);
        assert_eq!(dirty.violated, Duration::from_millis(8));

        let clean = audit_trace(
            spec,
            &initial,
            &events,
            Duration::from_millis(8),
            Duration::from_millis(20),
        );
        assert!(clean.clean(), "{clean:?}");
        assert_eq!(clean.audited, Duration::from_millis(12));
    }

    /// Incremental feeding (push + advance_to in batches) reaches the same
    /// totals as the batch replay.
    #[test]
    fn incremental_matches_batch() {
        let spec = CsSpec::new(1, 2, 3);
        let initial = [true, false, false];
        let events = [ev(1, 5, true), ev(0, 7, false), ev(1, 11, false), ev(2, 13, true)];
        let batch = audit_trace(
            spec,
            &initial,
            &events,
            Duration::from_millis(2),
            Duration::from_millis(20),
        );

        let mut inc = TraceAuditor::new(spec, &initial, Duration::from_millis(2));
        for chunk in events.chunks(2) {
            for e in chunk {
                inc.push(*e);
            }
            inc.advance_to(chunk.last().unwrap().at);
        }
        inc.advance_to(Duration::from_millis(20));
        assert_eq!(inc.audit(), batch);
    }

    /// The auditor against a *recorded cluster trace*: run a real loopback
    /// UDP ring from its legitimate anchor and audit the recorded activity
    /// stream against SSRmin's own (1,2)-CS spec — the audited window after
    /// warmup must be violation-free (Theorem 1 on wall clocks).
    #[test]
    fn recorded_cluster_trace_satisfies_the_ssrmin_spec() {
        let algo = SsrMin::new(RingParams::minimal(4).unwrap());
        let cfg = ClusterConfig { seed: 11, ..ClusterConfig::default() };
        let warmup = cfg.warmup;
        let duration = cfg.duration;
        let report = run_cluster(algo, algo.legitimate_anchor(0), cfg).unwrap();
        let audit =
            audit_trace(algo.cs_spec(), &report.initial_active, &report.events, warmup, duration);
        assert!(audit.intervals > 0, "the ring must have circulated");
        assert!(audit.clean(), "P9 violated on a clean ring: {audit:?}");
        assert!((1..=2).contains(&audit.min_active), "{audit:?}");
        assert!((1..=2).contains(&audit.max_active), "{audit:?}");
    }
}
