//! The datagram frame: a versioned, checksummed, length-delimited envelope
//! around a [`WireState`] payload.
//!
//! Version 1 layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       2     magic  b"SR"
//! 2       1     version (1)
//! 3       1     payload kind (WireState::KIND)
//! 4       2     sender ring index
//! 6       4     generation counter (monotone per sender)
//! 10      2     payload length
//! 12      len   payload (WireState::encode_payload)
//! 12+len  4     CRC-32 (IEEE) over bytes [0, 12+len)
//! ```
//!
//! Version 2 adds a tenant id for multi-ring hosting (`ssr-serve`): a
//! 16-bit tenant between the generation and the length, shifting the
//! payload to offset 14. The decoder accepts both versions — a v1 frame is
//! a v2 frame on tenant 0 — so single-ring deployments keep their exact
//! wire bytes and mixed-version rings interoperate on the default tenant.
//!
//! ```text
//! offset  size  field
//! 0..10         as version 1, with version byte 2
//! 10      2     tenant id
//! 12      2     payload length
//! 14      len   payload
//! 14+len  4     CRC-32 (IEEE) over bytes [0, 14+len)
//! ```
//!
//! One frame is one datagram; the explicit length field additionally makes
//! the format self-delimiting if frames are ever carried over a byte
//! stream. Decoding is total: any byte sequence yields either a valid frame
//! or a [`CodecError`], never a panic.

use std::fmt;

use ssr_core::WireState;

/// Frame magic bytes.
pub const MAGIC: [u8; 2] = *b"SR";
/// Wire protocol version without a tenant id (single-ring deployments).
pub const VERSION: u8 = 1;
/// Wire protocol version carrying a tenant id (multi-ring hosting).
pub const VERSION_TENANT: u8 = 2;
/// Bytes before the payload in a version-1 frame.
pub const HEADER_LEN: usize = 12;
/// Bytes before the payload in a version-2 (tenant-carrying) frame.
pub const TENANT_HEADER_LEN: usize = 14;
/// Trailing checksum bytes.
pub const CRC_LEN: usize = 4;
/// Smallest possible frame (version 1, empty payload).
pub const MIN_FRAME_LEN: usize = HEADER_LEN + CRC_LEN;
/// Largest payload the codec accepts (fits any state we ship and keeps
/// frames far below typical UDP MTUs).
pub const MAX_PAYLOAD_LEN: usize = 16 * 1024;

/// Why a byte sequence failed to decode as a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the minimal frame.
    TooShort {
        /// Bytes available.
        len: usize,
    },
    /// Magic bytes did not match [`MAGIC`].
    BadMagic {
        /// The two bytes found.
        found: [u8; 2],
    },
    /// Unsupported protocol version.
    BadVersion {
        /// Version byte found.
        found: u8,
    },
    /// Payload kind does not match the expected state type.
    WrongKind {
        /// Kind the decoder expected (`S::KIND`).
        expected: u8,
        /// Kind found in the header.
        found: u8,
    },
    /// Header length field disagrees with the actual byte count, or exceeds
    /// [`MAX_PAYLOAD_LEN`].
    BadLength {
        /// Payload length claimed by the header.
        claimed: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// Checksum mismatch (bit corruption).
    BadChecksum {
        /// CRC-32 over the received bytes.
        computed: u32,
        /// CRC-32 stored in the frame.
        stored: u32,
    },
    /// Payload bytes did not decode as a valid state.
    BadPayload,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodecError::TooShort { len } => {
                write!(f, "frame too short: {len} bytes < minimum {MIN_FRAME_LEN}")
            }
            CodecError::BadMagic { found } => write!(f, "bad magic bytes {found:02x?}"),
            CodecError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported wire version {found} (expected {VERSION} or {VERSION_TENANT})"
                )
            }
            CodecError::WrongKind { expected, found } => {
                write!(f, "payload kind {found} does not match expected kind {expected}")
            }
            CodecError::BadLength { claimed, actual } => {
                write!(f, "length field claims {claimed} payload bytes, found {actual}")
            }
            CodecError::BadChecksum { computed, stored } => {
                write!(f, "checksum mismatch: computed {computed:#010x}, stored {stored:#010x}")
            }
            CodecError::BadPayload => write!(f, "payload did not decode as a valid state"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A decoded state broadcast.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame<S> {
    /// Tenant (ring) id the frame belongs to; 0 for version-1 frames and
    /// the single-ring default.
    pub tenant: u16,
    /// Ring index of the sending node.
    pub sender: u16,
    /// Sender's generation counter (monotone per sender; receivers drop
    /// stale generations to get latest-state semantics under reordering
    /// and duplication).
    pub generation: u32,
    /// The sender's algorithm state.
    pub state: S,
}

/// CRC-32 (IEEE) — shared with the replica snapshot format in
/// `ssr_core::wire`, so frames and persisted snapshots use one checksum.
pub use ssr_core::wire::crc32;

/// Encode one state broadcast as a version-1 datagram (tenant 0).
pub fn encode<S: WireState>(sender: u16, generation: u32, state: &S) -> Vec<u8> {
    encode_header(VERSION, None, sender, generation, state)
}

/// Encode one state broadcast as a version-2 datagram carrying `tenant`.
pub fn encode_tenant<S: WireState>(
    tenant: u16,
    sender: u16,
    generation: u32,
    state: &S,
) -> Vec<u8> {
    encode_header(VERSION_TENANT, Some(tenant), sender, generation, state)
}

fn encode_header<S: WireState>(
    version: u8,
    tenant: Option<u16>,
    sender: u16,
    generation: u32,
    state: &S,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(TENANT_HEADER_LEN + CRC_LEN + S::PAYLOAD_LEN.unwrap_or(16));
    buf.extend_from_slice(&MAGIC);
    buf.push(version);
    buf.push(S::KIND);
    buf.extend_from_slice(&sender.to_le_bytes());
    buf.extend_from_slice(&generation.to_le_bytes());
    if let Some(tenant) = tenant {
        buf.extend_from_slice(&tenant.to_le_bytes());
    }
    buf.extend_from_slice(&[0, 0]); // length, patched below
    let header_len = buf.len();
    state.encode_payload(&mut buf);
    let payload_len = buf.len() - header_len;
    assert!(payload_len <= MAX_PAYLOAD_LEN, "payload too large for the wire format");
    let len = u16::try_from(payload_len).expect("payload length fits u16");
    buf[header_len - 2..header_len].copy_from_slice(&len.to_le_bytes());
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Decode a datagram produced by [`encode`] / [`encode_tenant`] (or
/// corrupted in flight). Accepts both wire versions; version-1 frames
/// decode with `tenant == 0`.
pub fn decode<S: WireState>(bytes: &[u8]) -> Result<Frame<S>, CodecError> {
    if bytes.len() < MIN_FRAME_LEN {
        return Err(CodecError::TooShort { len: bytes.len() });
    }
    if bytes[0..2] != MAGIC {
        return Err(CodecError::BadMagic { found: [bytes[0], bytes[1]] });
    }
    let (tenant, header_len) = match bytes[2] {
        VERSION => (0, HEADER_LEN),
        VERSION_TENANT => {
            if bytes.len() < TENANT_HEADER_LEN + CRC_LEN {
                return Err(CodecError::TooShort { len: bytes.len() });
            }
            (u16::from_le_bytes([bytes[10], bytes[11]]), TENANT_HEADER_LEN)
        }
        found => return Err(CodecError::BadVersion { found }),
    };
    if bytes[3] != S::KIND {
        return Err(CodecError::WrongKind { expected: S::KIND, found: bytes[3] });
    }
    let claimed = u16::from_le_bytes([bytes[header_len - 2], bytes[header_len - 1]]) as usize;
    let actual = bytes.len() - header_len - CRC_LEN;
    if claimed != actual || claimed > MAX_PAYLOAD_LEN {
        return Err(CodecError::BadLength { claimed, actual });
    }
    let body = &bytes[..header_len + claimed];
    let stored = u32::from_le_bytes(
        bytes[header_len + claimed..].try_into().expect("exactly CRC_LEN bytes remain"),
    );
    let computed = crc32(body);
    if computed != stored {
        return Err(CodecError::BadChecksum { computed, stored });
    }
    let sender = u16::from_le_bytes([bytes[4], bytes[5]]);
    let generation = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
    let state = S::decode_payload(&bytes[header_len..header_len + claimed])
        .ok_or(CodecError::BadPayload)?;
    Ok(Frame { tenant, sender, generation, state })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::{D4State, SsrState};

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_every_state_kind() {
        let s = SsrState { x: 6, rts: true, tra: false };
        let buf = encode(3, 41, &s);
        let frame: Frame<SsrState> = decode(&buf).unwrap();
        assert_eq!(frame, Frame { tenant: 0, sender: 3, generation: 41, state: s });

        let buf = encode(0, 0, &9u32);
        let frame: Frame<u32> = decode(&buf).unwrap();
        assert_eq!(frame.state, 9);

        let buf = encode(65535, u32::MAX, &D4State { x: true, up: true });
        let frame: Frame<D4State> = decode(&buf).unwrap();
        assert_eq!(frame.sender, 65535);
        assert_eq!(frame.generation, u32::MAX);
    }

    #[test]
    fn round_trips_tenant_frames() {
        let s = SsrState { x: 9, rts: false, tra: true };
        let buf = encode_tenant(17, 4, 99, &s);
        assert_eq!(buf[2], VERSION_TENANT);
        assert_eq!(buf.len(), encode(4, 99, &s).len() + 2, "v2 adds exactly the tenant field");
        let frame: Frame<SsrState> = decode(&buf).unwrap();
        assert_eq!(frame, Frame { tenant: 17, sender: 4, generation: 99, state: s });

        // Tenant 0 is expressible in both versions and means the same ring.
        let v2: Frame<SsrState> = decode(&encode_tenant(0, 4, 99, &s)).unwrap();
        let v1: Frame<SsrState> = decode(&encode(4, 99, &s)).unwrap();
        assert_eq!(v1, v2);

        let buf = encode_tenant(u16::MAX, 0, 0, &D4State { x: false, up: true });
        assert_eq!(decode::<D4State>(&buf).unwrap().tenant, u16::MAX);
    }

    #[test]
    fn rejects_wrong_version_and_kind() {
        let mut buf = encode(1, 1, &SsrState { x: 0, rts: false, tra: false });
        buf[2] = 7;
        assert!(matches!(decode::<SsrState>(&buf), Err(CodecError::BadVersion { found: 7 })));

        // A v1 frame whose version byte is rewritten to 2 reads its length
        // field from payload bytes and its checksum no longer covers what it
        // claims — it must not decode, whatever the specific error.
        let mut buf = encode(1, 1, &SsrState { x: 0, rts: false, tra: false });
        buf[2] = VERSION_TENANT;
        assert!(decode::<SsrState>(&buf).is_err());

        let buf = encode(1, 1, &7u32);
        // A Dijkstra frame is not an SSRmin frame.
        assert!(matches!(
            decode::<SsrState>(&buf),
            Err(CodecError::WrongKind { expected: 1, found: 2 })
        ));
        let buf = encode_tenant(3, 1, 1, &7u32);
        assert!(matches!(decode::<SsrState>(&buf), Err(CodecError::WrongKind { .. })));
    }

    #[test]
    fn rejects_corruption_everywhere() {
        let s = SsrState { x: 5, rts: false, tra: true };
        for good in [encode(2, 100, &s), encode_tenant(6, 2, 100, &s)] {
            for i in 0..good.len() {
                for bit in 0..8 {
                    let mut bad = good.clone();
                    bad[i] ^= 1 << bit;
                    // Either an error, or (for CRC-colliding flips, which a
                    // single bit flip cannot produce) the identical frame.
                    assert!(
                        decode::<SsrState>(&bad).is_err(),
                        "single-bit flip at byte {i} bit {bit} must not pass"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_truncation_and_length_lies() {
        let s = SsrState { x: 1, rts: true, tra: true };
        for good in [encode(0, 1, &s), encode_tenant(5, 0, 1, &s)] {
            for cut in 0..good.len() {
                assert!(decode::<SsrState>(&good[..cut]).is_err());
            }
            // Length field inflated: payload bytes disagree.
            let mut lie = good.clone();
            let len_off = if good[2] == VERSION { 10 } else { 12 };
            lie[len_off] = 200;
            assert!(decode::<SsrState>(&lie).is_err());
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = CodecError::BadChecksum { computed: 1, stored: 2 };
        let text = e.to_string();
        assert!(text.contains("checksum"), "{text}");
    }
}
