//! Lightweight metrics for cluster runs: lock-free per-node counters that
//! the node threads bump while running, plus a post-run report that merges
//! in observer-derived quantities (handover latency, coverage) and renders
//! as CSV or an ASCII table.
//!
//! Supervised (fault-injected) runs additionally produce a
//! [`RecoveryReport`]: one row per injected fault event with the measured
//! recovery time (fault → token-count invariant restored), plus a
//! [`RecoveryHistogram`] summarizing p50/p99/max over the recovered events.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counters one node thread updates while it runs. All relaxed atomics:
/// these are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct NodeMetrics {
    /// Datagrams sent, including retransmissions (each broadcast counts
    /// one per neighbour).
    pub sends: AtomicU64,
    /// Datagrams sent by the periodic retransmit timer alone.
    pub retransmits: AtomicU64,
    /// Datagrams received and accepted (after decode and staleness checks).
    pub receives: AtomicU64,
    /// Datagrams rejected by the wire codec (corruption, wrong version...).
    pub decode_errors: AtomicU64,
    /// Datagrams dropped as stale (generation not newer than the last
    /// accepted one from that sender — reordering/duplication suppression).
    pub stale_drops: AtomicU64,
    /// Guarded-command rule firings.
    pub rule_firings: AtomicU64,
    /// Times this node's privilege toggled on.
    pub activations: AtomicU64,
    /// Gauge: 1 while the node evaluates itself privileged, else 0. Unlike
    /// the counters above, gauges carry the *current* value — they exist for
    /// live introspection (`ssr-ctl`) and stay out of the frozen
    /// [`MetricsReport`] so CSV/ASCII output is unchanged.
    pub privileged: AtomicU64,
    /// Gauge: 1 while the node holds the primary token.
    pub token_primary: AtomicU64,
    /// Gauge: 1 while the node holds the secondary token.
    pub token_secondary: AtomicU64,
    /// Gauge: last transport generation this node stamped on a broadcast.
    pub generation: AtomicU64,
    /// Stage-1 convergence-watchdog escalations (resyncs). Like the gauges,
    /// watchdog counters exist for live introspection and the supervisor's
    /// recovery accounting; they stay out of the frozen [`MetricsReport`].
    pub watchdog_resyncs: AtomicU64,
    /// Stage-2 convergence-watchdog escalations (amnesia self-restarts).
    pub watchdog_restarts: AtomicU64,
    /// Well-formed frames dropped because they carried another ring's
    /// tenant id (multi-tenant hosting; stays out of the frozen
    /// [`MetricsReport`] like the gauges).
    pub tenant_drops: AtomicU64,
    /// Times this node's rule engine entered a ring-wide suspension (a
    /// degraded window opened while it was live) — the counted proof that
    /// engines actually paused while segment walkers served their arcs.
    /// Live introspection only, out of the frozen [`MetricsReport`].
    pub suspensions: AtomicU64,
}

impl NodeMetrics {
    fn snapshot(&self) -> [u64; 7] {
        [
            self.sends.load(Ordering::Relaxed),
            self.retransmits.load(Ordering::Relaxed),
            self.receives.load(Ordering::Relaxed),
            self.decode_errors.load(Ordering::Relaxed),
            self.stale_drops.load(Ordering::Relaxed),
            self.rule_firings.load(Ordering::Relaxed),
            self.activations.load(Ordering::Relaxed),
        ]
    }

    /// Bump a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Set a gauge to its current value.
    pub fn set(gauge: &AtomicU64, value: u64) {
        gauge.store(value, Ordering::Relaxed);
    }

    /// Read any counter or gauge.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// The shared registry: one [`NodeMetrics`] per ring node.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    nodes: Vec<Arc<NodeMetrics>>,
}

impl MetricsRegistry {
    /// A registry for `n` nodes, all counters zero.
    pub fn new(n: usize) -> Self {
        MetricsRegistry { nodes: (0..n).map(|_| Arc::new(NodeMetrics::default())).collect() }
    }

    /// A shared handle to node `i`'s counters (for its thread).
    pub fn arc_node(&self, i: usize) -> Arc<NodeMetrics> {
        Arc::clone(&self.nodes[i])
    }

    /// Append a fresh node slot (a member joining a dynamic ring) and
    /// return its index. Existing handles stay valid — slots are never
    /// reused, so a departed member's counters remain readable.
    pub fn grow(&mut self) -> usize {
        self.nodes.push(Arc::new(NodeMetrics::default()));
        self.nodes.len() - 1
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the registry tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The counters of node `i`.
    pub fn node(&self, i: usize) -> &NodeMetrics {
        &self.nodes[i]
    }

    /// Take a live mid-run snapshot of the counters. Identical to
    /// [`MetricsRegistry::report`] with no observer-derived latencies —
    /// counters are relaxed atomics, so sampling them while node threads run
    /// is always safe and never pauses the ring.
    pub fn snapshot(&self) -> MetricsReport {
        self.report(&[])
    }

    /// Freeze the counters into a report, attaching per-node mean handover
    /// latencies measured by the observer (empty slice if unknown).
    pub fn report(&self, handover_latency: &[Option<Duration>]) -> MetricsReport {
        let rows = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let [sends, retransmits, receives, decode_errors, stale_drops, rule_firings, activations] =
                    m.snapshot();
                NodeMetricsRow {
                    node: i,
                    sends,
                    retransmits,
                    receives,
                    decode_errors,
                    stale_drops,
                    rule_firings,
                    activations,
                    mean_handover_latency: handover_latency.get(i).copied().flatten(),
                }
            })
            .collect();
        MetricsReport { rows }
    }
}

/// One node's frozen counters.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMetricsRow {
    /// Ring index.
    pub node: usize,
    /// See [`NodeMetrics::sends`].
    pub sends: u64,
    /// See [`NodeMetrics::retransmits`].
    pub retransmits: u64,
    /// See [`NodeMetrics::receives`].
    pub receives: u64,
    /// See [`NodeMetrics::decode_errors`].
    pub decode_errors: u64,
    /// See [`NodeMetrics::stale_drops`].
    pub stale_drops: u64,
    /// See [`NodeMetrics::rule_firings`].
    pub rule_firings: u64,
    /// See [`NodeMetrics::activations`].
    pub activations: u64,
    /// Mean latency between this node's activations and the immediately
    /// preceding activation elsewhere on the ring (observer-derived).
    pub mean_handover_latency: Option<Duration>,
}

/// A frozen per-node metrics table.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// One row per ring node.
    pub rows: Vec<NodeMetricsRow>,
}

impl MetricsReport {
    /// CSV header used by [`MetricsReport::to_csv`].
    pub const CSV_HEADER: &'static str = "node,sends,retransmits,receives,decode_errors,\
stale_drops,rule_firings,activations,mean_handover_latency_us";

    /// Render as CSV (header plus one row per node; handover latency in
    /// microseconds, empty when unknown).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for r in &self.rows {
            let latency =
                r.mean_handover_latency.map(|d| d.as_micros().to_string()).unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                r.node,
                r.sends,
                r.retransmits,
                r.receives,
                r.decode_errors,
                r.stale_drops,
                r.rule_firings,
                r.activations,
                latency
            ));
        }
        out
    }

    /// Render as an aligned ASCII table for terminal output.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}\n",
            "node",
            "sends",
            "retransmit",
            "recv",
            "badframe",
            "stale",
            "rules",
            "activ",
            "handover"
        ));
        for r in &self.rows {
            let latency = r
                .mean_handover_latency
                .map(|d| format!("{:.1}us", d.as_secs_f64() * 1e6))
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "{:>4} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}\n",
                r.node,
                r.sends,
                r.retransmits,
                r.receives,
                r.decode_errors,
                r.stale_drops,
                r.rule_firings,
                r.activations,
                latency
            ));
        }
        out
    }

    /// Sum of a column over all nodes.
    pub fn total(&self, f: impl Fn(&NodeMetricsRow) -> u64) -> u64 {
        self.rows.iter().map(f).sum()
    }
}

/// One injected fault event and its observed recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEventRow {
    /// Position in the executed fault timeline.
    pub index: usize,
    /// Wall-clock offset (from run start) at which the fault was applied.
    pub at: Duration,
    /// Human-readable description of the fault and its outcome, e.g.
    /// `crash node 2 (amnesia)` or `restart node 2 [snapshot, degraded]`.
    pub label: String,
    /// Measurement window: from the fault to the next fault (or run end).
    pub window: Duration,
    /// Time from the fault to the last restoration of the token-count
    /// invariant (`1 <= privileged <= 2`) within the window. `Some(ZERO)`
    /// means the fault never broke the invariant; `None` means the ring was
    /// still violating it when the window closed.
    pub recovery: Option<Duration>,
}

/// Per-fault-event recovery times of one supervised run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// One row per applied fault event, in injection order.
    pub rows: Vec<FaultEventRow>,
}

/// Quantile summary of the recovery times in a [`RecoveryReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryHistogram {
    /// Number of fault events that recovered within their window.
    pub recovered: usize,
    /// Number of fault events still violating at window close.
    pub unrecovered: usize,
    /// Median recovery time (nearest-rank), over recovered events.
    pub p50: Option<Duration>,
    /// 99th-percentile recovery time (nearest-rank), over recovered events.
    pub p99: Option<Duration>,
    /// Maximum recovery time over recovered events.
    pub max: Option<Duration>,
}

impl RecoveryReport {
    /// CSV header used by [`RecoveryReport::to_csv`].
    pub const CSV_HEADER: &'static str = "event,at_us,fault,window_us,recovery_us,recovered";

    /// True iff every fault event recovered within its window.
    pub fn all_recovered(&self) -> bool {
        self.rows.iter().all(|r| r.recovery.is_some())
    }

    /// Nearest-rank quantile summary over the recovered events.
    pub fn histogram(&self) -> RecoveryHistogram {
        let mut samples: Vec<Duration> = self.rows.iter().filter_map(|r| r.recovery).collect();
        samples.sort_unstable();
        let unrecovered = self.rows.len() - samples.len();
        let rank = |q: f64| -> Option<Duration> {
            if samples.is_empty() {
                return None;
            }
            let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
            Some(samples[idx])
        };
        RecoveryHistogram {
            recovered: samples.len(),
            unrecovered,
            p50: rank(0.50),
            p99: rank(0.99),
            max: samples.last().copied(),
        }
    }

    /// Render as CSV (one row per fault event; times in microseconds,
    /// recovery empty when the event never recovered).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for r in &self.rows {
            let recovery = r.recovery.map(|d| d.as_micros().to_string()).unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.index,
                r.at.as_micros(),
                // Keep the CSV single-line and comma-free per field.
                r.label.replace(',', ";"),
                r.window.as_micros(),
                recovery,
                r.recovery.is_some()
            ));
        }
        out
    }

    /// Render as an aligned ASCII table plus the histogram line.
    pub fn to_ascii(&self) -> String {
        let fmt_ms = |d: Duration| format!("{:.1}ms", d.as_secs_f64() * 1e3);
        let mut out = String::new();
        out.push_str(&format!(
            "{:>5} {:>9} {:>9} {:>10}  {}\n",
            "event", "at", "window", "recovery", "fault"
        ));
        for r in &self.rows {
            let recovery = r.recovery.map(fmt_ms).unwrap_or_else(|| "UNRECOVERED".into());
            out.push_str(&format!(
                "{:>5} {:>9} {:>9} {:>10}  {}\n",
                r.index,
                fmt_ms(r.at),
                fmt_ms(r.window),
                recovery,
                r.label
            ));
        }
        let h = self.histogram();
        let opt = |d: Option<Duration>| d.map(fmt_ms).unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "recovery: {} recovered, {} unrecovered; p50 {}, p99 {}, max {}\n",
            h.recovered,
            h.unrecovered,
            opt(h.p50),
            opt(h.p99),
            opt(h.max)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roll_up_into_csv() {
        let reg = MetricsRegistry::new(2);
        NodeMetrics::inc(&reg.node(0).sends);
        NodeMetrics::inc(&reg.node(0).sends);
        NodeMetrics::inc(&reg.node(1).rule_firings);
        let report = reg.report(&[Some(Duration::from_micros(250)), None]);
        assert_eq!(report.rows[0].sends, 2);
        assert_eq!(report.rows[1].rule_firings, 1);
        let csv = report.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(MetricsReport::CSV_HEADER));
        assert_eq!(lines.next(), Some("0,2,0,0,0,0,0,0,250"));
        assert_eq!(lines.next(), Some("1,0,0,0,0,0,1,0,"));
        assert_eq!(report.total(|r| r.sends), 2);
    }

    #[test]
    fn snapshot_samples_live_and_gauges_stay_out_of_reports() {
        let reg = MetricsRegistry::new(1);
        NodeMetrics::inc(&reg.node(0).sends);
        NodeMetrics::set(&reg.node(0).privileged, 1);
        NodeMetrics::set(&reg.node(0).generation, 42);
        assert_eq!(NodeMetrics::get(&reg.node(0).privileged), 1);
        assert_eq!(NodeMetrics::get(&reg.node(0).generation), 42);
        // A mid-run snapshot sees the counters...
        let snap = reg.snapshot();
        assert_eq!(snap.rows[0].sends, 1);
        // ...and gauge values leave the CSV exactly as before (no new
        // columns, no changed bytes).
        assert_eq!(snap.to_csv().lines().nth(1), Some("0,1,0,0,0,0,0,0,"));
        // Snapshots do not freeze anything: the live counters keep moving.
        NodeMetrics::inc(&reg.node(0).sends);
        assert_eq!(reg.snapshot().rows[0].sends, 2);
        assert_eq!(snap.rows[0].sends, 1);
    }

    #[test]
    fn ascii_table_lists_every_node() {
        let reg = MetricsRegistry::new(3);
        let table = reg.report(&[]).to_ascii();
        assert_eq!(table.lines().count(), 4);
    }

    fn row(index: usize, at_ms: u64, recovery_ms: Option<u64>) -> FaultEventRow {
        FaultEventRow {
            index,
            at: Duration::from_millis(at_ms),
            label: format!("crash node {index} (amnesia)"),
            window: Duration::from_millis(200),
            recovery: recovery_ms.map(Duration::from_millis),
        }
    }

    #[test]
    fn recovery_histogram_quantiles_are_nearest_rank() {
        let report = RecoveryReport {
            rows: vec![row(0, 100, Some(10)), row(1, 300, Some(30)), row(2, 500, Some(20))],
        };
        let h = report.histogram();
        assert_eq!(h.recovered, 3);
        assert_eq!(h.unrecovered, 0);
        assert_eq!(h.p50, Some(Duration::from_millis(20)));
        assert_eq!(h.p99, Some(Duration::from_millis(30)));
        assert_eq!(h.max, Some(Duration::from_millis(30)));
        assert!(report.all_recovered());
    }

    #[test]
    fn recovery_report_renders_unrecovered_rows() {
        let report = RecoveryReport { rows: vec![row(0, 100, Some(15)), row(1, 300, None)] };
        assert!(!report.all_recovered());
        let h = report.histogram();
        assert_eq!((h.recovered, h.unrecovered), (1, 1));

        let csv = report.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(RecoveryReport::CSV_HEADER));
        assert_eq!(lines.next(), Some("0,100000,crash node 0 (amnesia),200000,15000,true"));
        assert_eq!(lines.next(), Some("1,300000,crash node 1 (amnesia),200000,,false"));

        let ascii = report.to_ascii();
        assert!(ascii.contains("UNRECOVERED"), "{ascii}");
        assert!(ascii.contains("p50 15.0ms"), "{ascii}");
    }

    #[test]
    fn empty_recovery_report_has_empty_histogram() {
        let h = RecoveryReport::default().histogram();
        assert_eq!(h.recovered, 0);
        assert_eq!(h.p50, None);
        assert_eq!(h.max, None);
    }
}
