//! Lightweight metrics for cluster runs: lock-free per-node counters that
//! the node threads bump while running, plus a post-run report that merges
//! in observer-derived quantities (handover latency, coverage) and renders
//! as CSV or an ASCII table.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counters one node thread updates while it runs. All relaxed atomics:
/// these are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct NodeMetrics {
    /// Datagrams sent, including retransmissions (each broadcast counts
    /// one per neighbour).
    pub sends: AtomicU64,
    /// Datagrams sent by the periodic retransmit timer alone.
    pub retransmits: AtomicU64,
    /// Datagrams received and accepted (after decode and staleness checks).
    pub receives: AtomicU64,
    /// Datagrams rejected by the wire codec (corruption, wrong version...).
    pub decode_errors: AtomicU64,
    /// Datagrams dropped as stale (generation not newer than the last
    /// accepted one from that sender — reordering/duplication suppression).
    pub stale_drops: AtomicU64,
    /// Guarded-command rule firings.
    pub rule_firings: AtomicU64,
    /// Times this node's privilege toggled on.
    pub activations: AtomicU64,
}

impl NodeMetrics {
    fn snapshot(&self) -> [u64; 7] {
        [
            self.sends.load(Ordering::Relaxed),
            self.retransmits.load(Ordering::Relaxed),
            self.receives.load(Ordering::Relaxed),
            self.decode_errors.load(Ordering::Relaxed),
            self.stale_drops.load(Ordering::Relaxed),
            self.rule_firings.load(Ordering::Relaxed),
            self.activations.load(Ordering::Relaxed),
        ]
    }

    /// Bump a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The shared registry: one [`NodeMetrics`] per ring node.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    nodes: Vec<Arc<NodeMetrics>>,
}

impl MetricsRegistry {
    /// A registry for `n` nodes, all counters zero.
    pub fn new(n: usize) -> Self {
        MetricsRegistry { nodes: (0..n).map(|_| Arc::new(NodeMetrics::default())).collect() }
    }

    /// A shared handle to node `i`'s counters (for its thread).
    pub fn arc_node(&self, i: usize) -> Arc<NodeMetrics> {
        Arc::clone(&self.nodes[i])
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the registry tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The counters of node `i`.
    pub fn node(&self, i: usize) -> &NodeMetrics {
        &self.nodes[i]
    }

    /// Freeze the counters into a report, attaching per-node mean handover
    /// latencies measured by the observer (empty slice if unknown).
    pub fn report(&self, handover_latency: &[Option<Duration>]) -> MetricsReport {
        let rows = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let [sends, retransmits, receives, decode_errors, stale_drops, rule_firings, activations] =
                    m.snapshot();
                NodeMetricsRow {
                    node: i,
                    sends,
                    retransmits,
                    receives,
                    decode_errors,
                    stale_drops,
                    rule_firings,
                    activations,
                    mean_handover_latency: handover_latency.get(i).copied().flatten(),
                }
            })
            .collect();
        MetricsReport { rows }
    }
}

/// One node's frozen counters.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMetricsRow {
    /// Ring index.
    pub node: usize,
    /// See [`NodeMetrics::sends`].
    pub sends: u64,
    /// See [`NodeMetrics::retransmits`].
    pub retransmits: u64,
    /// See [`NodeMetrics::receives`].
    pub receives: u64,
    /// See [`NodeMetrics::decode_errors`].
    pub decode_errors: u64,
    /// See [`NodeMetrics::stale_drops`].
    pub stale_drops: u64,
    /// See [`NodeMetrics::rule_firings`].
    pub rule_firings: u64,
    /// See [`NodeMetrics::activations`].
    pub activations: u64,
    /// Mean latency between this node's activations and the immediately
    /// preceding activation elsewhere on the ring (observer-derived).
    pub mean_handover_latency: Option<Duration>,
}

/// A frozen per-node metrics table.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// One row per ring node.
    pub rows: Vec<NodeMetricsRow>,
}

impl MetricsReport {
    /// CSV header used by [`MetricsReport::to_csv`].
    pub const CSV_HEADER: &'static str = "node,sends,retransmits,receives,decode_errors,\
stale_drops,rule_firings,activations,mean_handover_latency_us";

    /// Render as CSV (header plus one row per node; handover latency in
    /// microseconds, empty when unknown).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for r in &self.rows {
            let latency =
                r.mean_handover_latency.map(|d| d.as_micros().to_string()).unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                r.node,
                r.sends,
                r.retransmits,
                r.receives,
                r.decode_errors,
                r.stale_drops,
                r.rule_firings,
                r.activations,
                latency
            ));
        }
        out
    }

    /// Render as an aligned ASCII table for terminal output.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}\n",
            "node",
            "sends",
            "retransmit",
            "recv",
            "badframe",
            "stale",
            "rules",
            "activ",
            "handover"
        ));
        for r in &self.rows {
            let latency = r
                .mean_handover_latency
                .map(|d| format!("{:.1}us", d.as_secs_f64() * 1e6))
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "{:>4} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}\n",
                r.node,
                r.sends,
                r.retransmits,
                r.receives,
                r.decode_errors,
                r.stale_drops,
                r.rule_firings,
                r.activations,
                latency
            ));
        }
        out
    }

    /// Sum of a column over all nodes.
    pub fn total(&self, f: impl Fn(&NodeMetricsRow) -> u64) -> u64 {
        self.rows.iter().map(f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roll_up_into_csv() {
        let reg = MetricsRegistry::new(2);
        NodeMetrics::inc(&reg.node(0).sends);
        NodeMetrics::inc(&reg.node(0).sends);
        NodeMetrics::inc(&reg.node(1).rule_firings);
        let report = reg.report(&[Some(Duration::from_micros(250)), None]);
        assert_eq!(report.rows[0].sends, 2);
        assert_eq!(report.rows[1].rule_firings, 1);
        let csv = report.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(MetricsReport::CSV_HEADER));
        assert_eq!(lines.next(), Some("0,2,0,0,0,0,0,0,250"));
        assert_eq!(lines.next(), Some("1,0,0,0,0,0,1,0,"));
        assert_eq!(report.total(|r| r.sends), 2);
    }

    #[test]
    fn ascii_table_lists_every_node() {
        let reg = MetricsRegistry::new(3);
        let table = reg.report(&[]).to_ascii();
        assert_eq!(table.lines().count(), 4);
    }
}
