//! Loopback cluster orchestration: spawn an `n`-node ring over real UDP
//! sockets (optionally through chaos proxies), observe it continuously and
//! report convergence, handover latency and token-count invariants.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use ssr_core::{Config, CoreError, Replica, RingAlgorithm, WireState};
use ssr_runtime::activity::{analyze, ActivityEvent, CoverageReport};

use crate::chaos::{ChaosConfig, ChaosProxy};
use crate::metrics::{MetricsRegistry, MetricsReport};
use crate::runner::{run_node, NodeConfig, NodeControl};
use crate::transport::UdpTransport;

/// Errors of a cluster run: protocol configuration, socket plumbing, or a
/// node thread dying outside the fault schedule.
#[derive(Debug)]
pub enum ClusterError {
    /// Invalid algorithm configuration.
    Core(CoreError),
    /// Socket setup or I/O failed.
    Io(io::Error),
    /// The node thread with this ring index panicked. An unsupervised run
    /// surfaces this as an error; a supervised run treats it as a crash
    /// fault and restarts the node instead.
    NodePanicked(usize),
    /// The fault schedule is not executable on this ring (bad node index,
    /// non-neighbour partition, inconsistent crash/restart pairing).
    Schedule(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Core(e) => write!(f, "{e}"),
            ClusterError::Io(e) => write!(f, "socket error: {e}"),
            ClusterError::NodePanicked(i) => write!(f, "node {i} thread panicked"),
            ClusterError::Schedule(e) => write!(f, "fault schedule: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<CoreError> for ClusterError {
    fn from(e: CoreError) -> Self {
        ClusterError::Core(e)
    }
}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> Self {
        ClusterError::Io(e)
    }
}

/// Parameters of a cluster run.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Base RNG seed (node `i`'s transport jitter uses `seed + i`; chaos
    /// link `l` uses a seed derived from `seed` and `l`).
    pub seed: u64,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Coverage analysis ignores this initial span (convergence time must
    /// not count against a run started from garbage).
    pub warmup: Duration,
    /// Base period of the CST retransmit timer (jittered per node).
    pub tick: Duration,
    /// Critical-section dwell of every node.
    pub exec_delay: Duration,
    /// Fault process applied to every directed link (`None` = clean UDP).
    pub chaos: Option<ChaosConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            seed: 0,
            duration: Duration::from_millis(700),
            warmup: Duration::from_millis(350),
            tick: Duration::from_millis(5),
            exec_delay: Duration::from_millis(1),
            chaos: None,
        }
    }
}

/// Aggregate fault counters over all proxied links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosSummary {
    /// Datagrams forwarded (duplicates included).
    pub forwarded: u64,
    /// Datagrams dropped.
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Datagrams delayed out of order.
    pub reordered: u64,
    /// Datagrams swallowed by a partitioned link (only supervised runs cut
    /// links, so this is zero under plain chaos).
    pub blocked: u64,
    /// Datagrams forwarded with a byte flipped (CRC rejection fodder).
    pub corrupted: u64,
    /// Datagrams forwarded truncated (length-check rejection fodder).
    pub truncated: u64,
    /// Datagrams tail-dropped by netem pacing buffers — congestion loss,
    /// deliberately kept apart from `dropped` (the seeded random loss).
    pub netem_dropped: u64,
}

impl ChaosSummary {
    /// Fold one proxy's counters into the aggregate.
    pub(crate) fn absorb(&mut self, stats: &crate::chaos::ChaosStats) {
        self.forwarded += stats.forwarded.load(Ordering::Relaxed);
        self.dropped += stats.dropped.load(Ordering::Relaxed);
        self.duplicated += stats.duplicated.load(Ordering::Relaxed);
        self.reordered += stats.reordered.load(Ordering::Relaxed);
        self.blocked += stats.blocked.load(Ordering::Relaxed);
        self.corrupted += stats.corrupted.load(Ordering::Relaxed);
        self.truncated += stats.truncated.load(Ordering::Relaxed);
        self.netem_dropped += stats.netem_dropped.load(Ordering::Relaxed);
    }
}

/// Everything a finished cluster run yields.
#[derive(Debug, Clone)]
pub struct ClusterReport<S> {
    /// Final protocol state of every node.
    pub final_states: Config<S>,
    /// Per-node activity at time zero.
    pub initial_active: Vec<bool>,
    /// Privilege transitions, sorted by time.
    pub events: Vec<ActivityEvent>,
    /// Actual observed duration.
    pub observed: Duration,
    /// Coverage analysis after [`ClusterConfig::warmup`].
    pub coverage: CoverageReport,
    /// End of the last token-count violation (zero or more than two
    /// privileged nodes) over the whole run; `None` if no instant violated
    /// the invariant. This is the measured convergence time.
    pub stabilized_at: Option<Duration>,
    /// Per-node counters plus observer-derived handover latencies.
    pub metrics: MetricsReport,
    /// Aggregate chaos-proxy counters (all zero when chaos was off).
    pub chaos: ChaosSummary,
}

impl<S> ClusterReport<S> {
    /// True iff after the warmup there was never an instant with zero
    /// privileged nodes (the paper's P9, observed on wall clocks).
    pub fn continuous(&self) -> bool {
        self.coverage.uncovered.is_zero()
    }
}

/// Run `algo` over a loopback UDP ring from `initial` and observe it.
pub fn run_cluster<A>(
    algo: A,
    initial: Config<A::State>,
    cfg: ClusterConfig,
) -> Result<ClusterReport<A::State>, ClusterError>
where
    A: RingAlgorithm + Clone + Send + Sync + 'static,
    A::State: WireState + Send + 'static,
{
    algo.validate_config(&initial)?;
    let n = algo.n();
    let metrics = MetricsRegistry::new(n);

    // Phase 1: bind every node's socket pair so all addresses are known.
    let mut transports: Vec<UdpTransport<A::State>> = Vec::with_capacity(n);
    for i in 0..n {
        let pred = (i + n - 1) % n;
        let succ = (i + 1) % n;
        transports.push(UdpTransport::bind(
            i as u16,
            pred as u16,
            succ as u16,
            cfg.tick,
            cfg.seed.wrapping_add(i as u64),
            metrics.arc_node(i),
        )?);
    }
    let addrs: Vec<_> =
        transports.iter().map(|t| t.local_addrs()).collect::<io::Result<Vec<_>>>()?;

    // Phase 2: wire the ring, inserting one chaos proxy per directed link
    // when chaos is enabled. Link `2i` is `i → succ(i)`, `2i + 1` is
    // `i → pred(i)` (the simulator's numbering).
    let mut proxies: Vec<ChaosProxy> = Vec::new();
    for (i, transport) in transports.iter_mut().enumerate() {
        let pred = (i + n - 1) % n;
        let succ = (i + 1) % n;
        // Destinations: the neighbour's link end that faces *us*.
        let mut to_succ = addrs[succ].pred;
        let mut to_pred = addrs[pred].succ;
        if let Some(chaos) = cfg.chaos {
            // Odd link indices are the reverse direction (`i → pred(i)`),
            // so asymmetric delay/netem knobs resolve here.
            let mk = |link_idx: usize, dst| -> io::Result<ChaosProxy> {
                ChaosProxy::spawn(
                    dst,
                    ChaosConfig {
                        seed: cfg
                            .seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(link_idx as u64),
                        ..chaos.for_direction(link_idx % 2 == 1)
                    },
                )
            };
            let p_succ = mk(2 * i, to_succ)?;
            to_succ = p_succ.addr();
            proxies.push(p_succ);
            let p_pred = mk(2 * i + 1, to_pred)?;
            to_pred = p_pred.addr();
            proxies.push(p_pred);
        }
        transport.wire(to_pred, to_succ);
    }

    // Phase 3: spawn the node threads.
    let stop = Arc::new(AtomicBool::new(false));
    let log: Arc<Mutex<Vec<ActivityEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let start = Instant::now();
    let node_cfg = NodeConfig { exec_delay: cfg.exec_delay, ..NodeConfig::default() };

    let mut initial_active = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for (i, transport) in transports.into_iter().enumerate() {
        let pred = (i + n - 1) % n;
        let succ = (i + 1) % n;
        let replica: Replica<A::State> =
            Replica::coherent(initial[i].clone(), initial[pred].clone(), initial[succ].clone());
        initial_active.push(replica.is_privileged(&algo, i));
        let algo = algo.clone();
        let control = NodeControl::new(Arc::clone(&stop));
        let log = Arc::clone(&log);
        let node_metrics = metrics.arc_node(i);
        handles.push(thread::spawn(move || {
            run_node(algo, i, replica, transport, node_cfg, control, log, start, node_metrics)
        }));
    }

    thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);

    let mut final_states = Vec::with_capacity(n);
    for (i, h) in handles.into_iter().enumerate() {
        let (replica, transport) = h.join().map_err(|_| ClusterError::NodePanicked(i))?;
        drop(transport);
        final_states.push(replica.own);
    }
    let observed = start.elapsed();

    let mut chaos = ChaosSummary::default();
    for proxy in proxies {
        chaos.absorb(&proxy.shutdown());
    }

    let mut events = Arc::try_unwrap(log).expect("all threads joined").into_inner();
    events.sort_by_key(|e| e.at);

    let coverage = analyze(&initial_active, &events, observed, cfg.warmup);
    let stabilized_at = stabilization_time(&initial_active, &events, observed);
    let handover = handover_latencies(n, &events, cfg.warmup);
    let metrics = metrics.report(&handover);

    Ok(ClusterReport {
        final_states,
        initial_active,
        events,
        observed,
        coverage,
        stabilized_at,
        metrics,
        chaos,
    })
}

/// End of the last instant violating the token-count invariant
/// `1 <= active <= 2`; `None` if the whole run satisfied it.
pub(crate) fn stabilization_time(
    initial_active: &[bool],
    events: &[ActivityEvent],
    window: Duration,
) -> Option<Duration> {
    let mut active: Vec<bool> = initial_active.to_vec();
    let mut count = active.iter().filter(|&&a| a).count();
    let mut violating = !(1..=2).contains(&count);
    let mut last_violation_end: Option<Duration> = None;
    for ev in events {
        if ev.at > window {
            break;
        }
        let was_violating = violating;
        if ev.node < active.len() && active[ev.node] != ev.active {
            active[ev.node] = ev.active;
            count = if ev.active { count + 1 } else { count - 1 };
        }
        violating = !(1..=2).contains(&count);
        if was_violating && !violating {
            last_violation_end = Some(ev.at);
        }
    }
    if violating {
        // Never recovered within the window.
        Some(window)
    } else {
        last_violation_end
    }
}

/// Token-count recovery within the window `[from, to]`: replay the activity
/// history to establish the active set at `from`, then find the end of the
/// last violation of `1 <= active <= 2` inside the window.
///
/// * `Some(Duration::ZERO)` — the invariant held throughout the window;
/// * `Some(d)` — the last violation ended `d` after the window opened;
/// * `None` — still violating when the window closed (unrecovered).
pub(crate) fn recovery_in_window(
    initial_active: &[bool],
    events: &[ActivityEvent],
    from: Duration,
    to: Duration,
) -> Option<Duration> {
    let mut active: Vec<bool> = initial_active.to_vec();
    let mut count = active.iter().filter(|&&a| a).count();
    let apply = |active: &mut Vec<bool>, count: &mut usize, ev: &ActivityEvent| {
        if ev.node < active.len() && active[ev.node] != ev.active {
            active[ev.node] = ev.active;
            *count = if ev.active { *count + 1 } else { *count - 1 };
        }
    };
    let mut idx = 0;
    while idx < events.len() && events[idx].at < from {
        apply(&mut active, &mut count, &events[idx]);
        idx += 1;
    }
    let mut violating = !(1..=2).contains(&count);
    let mut last_violation_end: Option<Duration> = None;
    for ev in &events[idx..] {
        if ev.at > to {
            break;
        }
        let was_violating = violating;
        apply(&mut active, &mut count, ev);
        violating = !(1..=2).contains(&count);
        if was_violating && !violating {
            last_violation_end = Some(ev.at.saturating_sub(from));
        }
    }
    if violating {
        None
    } else {
        Some(last_violation_end.unwrap_or(Duration::ZERO))
    }
}

/// Mean handover latency per node: for each activation of node `i` after
/// `warmup`, the elapsed time since the most recent activation of any
/// *other* node — how long the ring takes to pass privilege onwards.
pub(crate) fn handover_latencies(
    n: usize,
    events: &[ActivityEvent],
    warmup: Duration,
) -> Vec<Option<Duration>> {
    let mut sums: Vec<(Duration, u32)> = vec![(Duration::ZERO, 0); n];
    let mut last_activation: Option<(usize, Duration)> = None;
    for ev in events {
        if !ev.active {
            continue;
        }
        if let Some((prev_node, prev_at)) = last_activation {
            if ev.node < n && prev_node != ev.node && ev.at >= warmup {
                let (sum, count) = &mut sums[ev.node];
                *sum += ev.at - prev_at;
                *count += 1;
            }
        }
        last_activation = Some((ev.node, ev.at));
    }
    sums.into_iter().map(|(sum, count)| if count == 0 { None } else { Some(sum / count) }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: usize, at_ms: u64, active: bool) -> ActivityEvent {
        ActivityEvent { node, at: Duration::from_millis(at_ms), active }
    }

    #[test]
    fn stabilization_time_finds_last_violation() {
        // Starts with zero active (violation), node 0 activates at 10ms.
        let events = vec![ev(0, 10, true), ev(1, 20, true), ev(0, 30, false)];
        let t = stabilization_time(&[false, false, false], &events, Duration::from_millis(100));
        assert_eq!(t, Some(Duration::from_millis(10)));
        // Clean from the start: no violation at all.
        let t = stabilization_time(&[true, false, false], &events[1..], Duration::from_millis(100));
        assert_eq!(t, None);
    }

    #[test]
    fn stabilization_time_reports_window_when_never_legal() {
        let t = stabilization_time(&[false, false], &[], Duration::from_millis(50));
        assert_eq!(t, Some(Duration::from_millis(50)));
    }

    #[test]
    fn recovery_in_window_measures_from_window_start() {
        // Node 0 deactivates at 40ms (count drops to zero), node 1 recovers
        // the ring at 70ms.
        let events = vec![ev(0, 40, false), ev(1, 70, true)];
        let r = recovery_in_window(
            &[true, false],
            &events,
            Duration::from_millis(40),
            Duration::from_millis(100),
        );
        assert_eq!(r, Some(Duration::from_millis(30)));
    }

    #[test]
    fn recovery_in_window_is_zero_when_invariant_holds() {
        let events = vec![ev(0, 10, true), ev(1, 90, true), ev(0, 91, false)];
        let r = recovery_in_window(
            &[false, false],
            &events,
            Duration::from_millis(50),
            Duration::from_millis(100),
        );
        assert_eq!(r, Some(Duration::ZERO), "history before the window must not count");
    }

    #[test]
    fn recovery_in_window_reports_unrecovered() {
        let events = vec![ev(0, 60, false)];
        let r = recovery_in_window(
            &[true, false],
            &events,
            Duration::from_millis(50),
            Duration::from_millis(100),
        );
        assert_eq!(r, None, "still zero-token at window close");
    }

    #[test]
    fn handover_latency_averages_gaps() {
        let events = vec![ev(0, 10, true), ev(1, 14, true), ev(0, 15, false), ev(2, 20, true)];
        let lat = handover_latencies(3, &events, Duration::ZERO);
        assert_eq!(lat[1], Some(Duration::from_millis(4)));
        assert_eq!(lat[2], Some(Duration::from_millis(6)));
        assert_eq!(lat[0], None, "node 0 never activates after another node");
    }
}
