//! Live ring membership: join and leave as first-class runtime operations.
//!
//! [`RingMembership`] hosts an SSRmin ring over real UDP sockets — one thread
//! per member, exactly like the supervisor — but lets the ring *resize* while
//! tokens circulate. The re-splice protocol is a three-party handshake:
//!
//! 1. **Park the would-be neighbours.** Their runner threads are asked to
//!    exit (kill flag, then join), handing back each node's live replica and
//!    transport. While parked, the rest of the ring keeps circulating; the
//!    splice site simply looks like two slow nodes for a few milliseconds.
//! 2. **Re-point the links.** Each neighbour's facing [`UdpTransport`] end is
//!    re-spliced ([`UdpTransport::resplice`]): new peer address, new expected
//!    sender slot, and a cleared generation watermark so the new neighbour's
//!    unrelated generation counter is accepted from its first frame. In-flight
//!    datagrams from the departed peer die on the sender-slot check.
//! 3. **Seed the caches and relaunch.** A graceful joiner adopts its
//!    predecessor's counter with no token bits (`SsrState::new(pred.x, 0, 0)`)
//!    so the splice does not mint a privilege; neighbour caches are seeded
//!    with each other's true state so no stale cache entry survives the
//!    splice. All parties relaunch on their re-wired transports.
//!
//! Slot identifiers are *stable wire IDs*: a member keeps the slot index it
//! was born with for its whole life, and slots are never reused. This is
//! sound because SSRmin's local rules depend only on "am I node 0" and K —
//! never on the numeric value of a non-anchor index — so a node whose slot id
//! exceeds the current ring size still evaluates the same guards. The ring
//! *order* is a separate `Vec<usize>` of slot ids, with the anchor (slot 0,
//! the bottom machine of the Dijkstra construction) permanently at position
//! zero: the anchor never joins, leaves, or gets reaped.
//!
//! Every member's starvation watchdog reads the live ring size through a
//! [`SharedBudget`], so the moment a splice commits, all budgets rescale to
//! the new `n` — no restart required.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use ssr_core::{Replica, RingParams, SsrMin, SsrState};
use ssr_mpnet::fallback::{FallbackArbiter, FallbackStats, MergeEvent, SegmentInfo};
use ssr_mpnet::FaultKind;
use ssr_runtime::activity::ActivityEvent;

use crate::chaos::{ChaosConfig, ChaosProxy};
use crate::metrics::{MetricsRegistry, NodeMetrics};
use crate::runner::{run_node, NodeConfig, NodeControl, Watchdog, WatchdogEvent};
use crate::supervisor::{convergence_envelope, WatchdogConfig};
use crate::transport::{LocalAddrs, Neighbor, UdpTransport};

/// Per-incarnation generation stride, mirroring the supervisor's rebind
/// floor: each relaunch of a slot advances its generation floor past
/// anything its previous life could have sent.
const GENERATION_STRIDE: u32 = 1 << 24;

/// How long a membership operation waits for a graceful leaver to hand its
/// privilege downstream before killing it anyway, as a multiple of the
/// Theorem-2 envelope for the current ring.
const GRACE_ENVELOPES: u32 = 2;

/// Error raised by membership operations. Typed so callers can branch on
/// the failure class (a drain timeout is a warning; an exhausted K bound
/// calls for [`RingMembership::renegotiate_k`]) while `Display` keeps the
/// human-readable vocabulary older callers match on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipError {
    /// A join would violate Hoepman's `K > N` bound.
    AtCapacity {
        /// Ring size *after* the rejected join.
        n: usize,
        /// The spawn-time (or renegotiated) K.
        k: u32,
    },
    /// Ring position 0 (the anchor) can never leave.
    Anchor,
    /// A splice-out would shrink the ring below [`RingParams::MIN_N`].
    BelowMinimum,
    /// A ring position beyond the current ring.
    OutOfRange {
        /// The offending ring position.
        position: usize,
        /// Current ring size.
        n: usize,
    },
    /// The slot has no live runner thread.
    NotRunning {
        /// The slot id.
        slot: usize,
    },
    /// A restart was asked of a slot that is not crashed.
    NotCrashed {
        /// The slot id.
        slot: usize,
    },
    /// The slot was spliced out earlier; slot ids are never reused.
    SplicedOut {
        /// The slot id.
        slot: usize,
    },
    /// A graceful leaver never handed its privilege downstream within the
    /// watchdog-scaled drain deadline; the splice-out was **forced** and
    /// has already committed when this is returned.
    DrainTimeout {
        /// The forced-out slot id.
        slot: usize,
        /// How long the drain was waited for, in milliseconds.
        waited_ms: u64,
    },
    /// A K-renegotiation was rejected or aborted.
    KRenegotiation(String),
    /// A socket-layer failure (bind, local-addr lookup, proxy spawn).
    Io(String),
    /// Any other invalid request.
    Invalid(String),
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembershipError::AtCapacity { n, k } => write!(
                f,
                "ring is at K capacity: K={k} must exceed n={n} after the join; \
                 spawn with a larger K to leave growth headroom"
            ),
            MembershipError::Anchor => {
                f.write_str("ring position 0 is the anchor (the bottom machine never leaves)")
            }
            MembershipError::BelowMinimum => {
                write!(f, "removing a member would splice the ring below n={}", RingParams::MIN_N)
            }
            MembershipError::OutOfRange { position, n } => {
                write!(f, "ring position {position} is out of range on a {n}-ring")
            }
            MembershipError::NotRunning { slot } => write!(f, "slot {slot} is not running"),
            MembershipError::NotCrashed { slot } => {
                write!(f, "slot {slot} is not crashed; nothing to restart")
            }
            MembershipError::SplicedOut { slot } => {
                write!(f, "slot {slot} has been spliced out")
            }
            MembershipError::DrainTimeout { slot, waited_ms } => write!(
                f,
                "graceful drain of slot {slot} timed out after {waited_ms}ms; \
                 the splice-out was forced"
            ),
            MembershipError::KRenegotiation(why) => write!(f, "K renegotiation failed: {why}"),
            MembershipError::Io(why) => f.write_str(why),
            MembershipError::Invalid(why) => f.write_str(why),
        }
    }
}

impl std::error::Error for MembershipError {}

/// Configuration of the degraded-mode random-walk fallback (Bernard–Bui–
/// Sohier). While the ring is broken — mid-splice park, a crashed member
/// awaiting restart or reaping, a K-renegotiation — every member's
/// handshake rule engine is suspended and a walker token is forwarded to a
/// uniformly random live neighbour instead, so the segment keeps granting
/// the critical section through the break.
#[derive(Debug, Clone, Copy)]
pub struct FallbackConfig {
    /// Walker forwarding period (one step, hence one logical message, per
    /// period while degraded).
    pub step: Duration,
    /// Seed of the walker's neighbour-choice stream.
    pub seed: u64,
}

impl Default for FallbackConfig {
    fn default() -> Self {
        FallbackConfig { step: Duration::from_millis(1), seed: 0 }
    }
}

/// Static configuration of a [`RingMembership`] host.
#[derive(Debug, Clone)]
pub struct MembershipConfig {
    /// Heartbeat/retransmit period of every member.
    pub tick: Duration,
    /// Artificial rule-execution delay (models slow machines).
    pub exec_delay: Duration,
    /// Base seed; per-link chaos seeds and transport jitter derive from it.
    pub seed: u64,
    /// Optional chaos layer: every directed link gets its own proxy with a
    /// seed derived from `seed` and the link's stable identity.
    pub chaos: Option<ChaosConfig>,
    /// Starvation watchdog configuration; `None` disables watchdogs.
    pub watchdog: Option<WatchdogConfig>,
    /// Degraded-mode random-walk fallback; `None` (the default) keeps the
    /// pre-fallback behaviour where broken-ring intervals simply stall.
    pub fallback: Option<FallbackConfig>,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            tick: Duration::from_millis(5),
            exec_delay: Duration::from_millis(1),
            seed: 0,
            chaos: None,
            watchdog: Some(WatchdogConfig::default()),
            fallback: None,
        }
    }
}

/// One member slot: runner-thread handles plus the slot's outbound chaos
/// proxies. Slots are tombstoned (`None` in the parent vector) when their
/// member is spliced out; the indices are never reused.
struct MemberSlot {
    kill: Arc<AtomicBool>,
    frozen: Arc<AtomicBool>,
    poison: Arc<Mutex<Option<Vec<u8>>>>,
    thread: Option<JoinHandle<(Replica<SsrState>, UdpTransport<SsrState>)>>,
    parked: Option<(Replica<SsrState>, UdpTransport<SsrState>)>,
    /// Set while the member is crashed; [`RingMembership::reap_dead`] splices
    /// the member out once this exceeds the liveness timeout.
    down_since: Option<Instant>,
    /// Socket addresses captured at bind time — stable for the slot's life,
    /// so neighbours can re-splice toward a member without stopping it.
    addrs: LocalAddrs,
    /// Outbound proxy toward the predecessor (link id `2·slot + 1`).
    proxy_pred: Option<ChaosProxy>,
    /// Outbound proxy toward the successor (link id `2·slot`).
    proxy_succ: Option<ChaosProxy>,
    /// Relaunch count; scales the generation floor on restart.
    incarnation: u32,
    /// Whether this slot currently owns a degraded-mode hold (set on crash,
    /// released on restart or splice-out).
    degraded_hold: bool,
}

/// A live, resizable SSRmin ring over UDP loopback.
pub struct RingMembership {
    algo: SsrMin,
    cfg: MembershipConfig,
    start: Instant,
    stop: Arc<AtomicBool>,
    slots: Vec<Option<MemberSlot>>,
    /// Slot ids in ring order; `ring[0] == 0` (the anchor) always.
    ring: Vec<usize>,
    metrics: MetricsRegistry,
    log: Arc<Mutex<Vec<ActivityEvent>>>,
    ring_size: Arc<AtomicUsize>,
    watchdog_outbox: Arc<Mutex<Vec<WatchdogEvent>>>,
    resplices: u64,
    /// Ring-wide degraded-mode suspension, shared with every member's
    /// [`NodeControl`]: while set, no handshake rule engine executes.
    suspended: Arc<AtomicBool>,
    fallback: Option<FallbackHandle>,
    drain_timeouts: u64,
    k_renegotiations: u64,
}

/// The live half of the degraded-mode subsystem: the shared arbiter (grant
/// ledger + mode state machine) and the walker thread that ticks it.
struct FallbackHandle {
    arbiter: Arc<Mutex<FallbackArbiter>>,
    thread: Option<JoinHandle<()>>,
    /// Margin between suspension and the walker's first grant, covering
    /// any handshake CS dwell in flight when the break opened.
    quiesce: Duration,
    /// Sum of all members' rule firings captured at degraded entry, to
    /// prove post-hoc that no engine executed while suspended.
    firings_at_enter: u64,
    /// Suspension breaches found at degraded exits (rule firings beyond
    /// the in-flight allowance).
    breaches: Vec<String>,
}

impl RingMembership {
    /// Spawn a ring of `params.n()` members from the legitimate anchor
    /// configuration. `params.k()` bounds how far the ring can ever grow:
    /// joins are accepted only while `n + 1 < K` (Hoepman's construction is
    /// proved for `K > N`), so spawn with K headroom if you plan to grow.
    pub fn spawn(params: RingParams, cfg: MembershipConfig) -> std::io::Result<Self> {
        let n = params.n();
        let algo = SsrMin::new(params);
        let mut metrics = MetricsRegistry::new(0);
        let mut transports = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for i in 0..n {
            metrics.grow();
            let pred = (i + n - 1) % n;
            let succ = (i + 1) % n;
            let t = UdpTransport::<SsrState>::bind(
                i as u16,
                pred as u16,
                succ as u16,
                cfg.tick,
                cfg.seed.wrapping_add(i as u64),
                metrics.arc_node(i),
            )?;
            addrs.push(t.local_addrs()?);
            transports.push(t);
        }

        let mut host = RingMembership {
            algo,
            start: Instant::now(),
            stop: Arc::new(AtomicBool::new(false)),
            slots: Vec::with_capacity(n),
            ring: (0..n).collect(),
            metrics,
            log: Arc::new(Mutex::new(Vec::new())),
            ring_size: Arc::new(AtomicUsize::new(n)),
            watchdog_outbox: Arc::new(Mutex::new(Vec::new())),
            resplices: 0,
            suspended: Arc::new(AtomicBool::new(false)),
            fallback: None,
            drain_timeouts: 0,
            k_renegotiations: 0,
            cfg,
        };

        // Degraded-mode service: a walker thread forwards the fallback
        // token every `step` while the ring-wide suspension flag is up.
        // The grant dwell is kept under the forwarding period so walker
        // grants are disjoint by construction.
        if let Some(fb) = host.cfg.fallback {
            let quiesce = (host.cfg.exec_delay * 4 + host.cfg.tick).max(Duration::from_millis(2));
            let mut arbiter = FallbackArbiter::new(
                fb.seed,
                u64::try_from(quiesce.as_micros()).unwrap_or(u64::MAX),
            );
            arbiter.set_view((0..n).map(|i| (i, true)).collect(), 0);
            let arbiter = Arc::new(Mutex::new(arbiter));
            let dwell = (fb.step / 2)
                .max(Duration::from_micros(50))
                .min(host.cfg.exec_delay.max(Duration::from_micros(50)));
            let thread = {
                let arbiter = Arc::clone(&arbiter);
                let suspended = Arc::clone(&host.suspended);
                let stop = Arc::clone(&host.stop);
                let start = host.start;
                let step = fb.step.max(Duration::from_micros(200));
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if suspended.load(Ordering::Relaxed) {
                            let now =
                                u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                            let dwell_us = u64::try_from(dwell.as_micros()).unwrap_or(1).max(1);
                            arbiter.lock().tick(now, dwell_us);
                        }
                        std::thread::sleep(step);
                    }
                })
            };
            host.fallback = Some(FallbackHandle {
                arbiter,
                thread: Some(thread),
                quiesce,
                firings_at_enter: 0,
                breaches: Vec::new(),
            });
        }

        // Wire each member's two outbound directions, through per-link chaos
        // proxies when configured, then stand the slots up.
        for (i, mut t) in transports.into_iter().enumerate() {
            let pred = (i + n - 1) % n;
            let succ = (i + 1) % n;
            let to_succ = addrs[succ].pred;
            let to_pred = addrs[pred].succ;
            let (proxy_pred, proxy_succ) = if host.cfg.chaos.is_some() {
                let ps = ChaosProxy::spawn(to_succ, host.link_chaos(2 * i as u64))?;
                let pp = ChaosProxy::spawn(to_pred, host.link_chaos(2 * i as u64 + 1))?;
                t.wire(pp.addr(), ps.addr());
                (Some(pp), Some(ps))
            } else {
                t.wire(to_pred, to_succ);
                (None, None)
            };
            host.slots.push(Some(MemberSlot {
                kill: Arc::new(AtomicBool::new(false)),
                frozen: Arc::new(AtomicBool::new(false)),
                poison: Arc::new(Mutex::new(None)),
                thread: None,
                parked: None,
                down_since: None,
                addrs: addrs[i],
                proxy_pred,
                proxy_succ,
                incarnation: 0,
                degraded_hold: false,
            }));
            let initial = host.algo.legitimate_anchor(0);
            let replica = Replica::coherent(initial[i], initial[pred], initial[succ]);
            host.launch(i, replica, t);
        }
        Ok(host)
    }

    /// Chaos configuration for one directed link, seeded from the base seed
    /// and the link's stable identity so re-spliced links draw fresh but
    /// reproducible fault processes. Odd salts are reverse-direction links
    /// (`i → pred(i)`), which resolves the asymmetric delay/netem knobs.
    fn link_chaos(&self, link_salt: u64) -> ChaosConfig {
        let base = self.cfg.chaos.unwrap_or_default();
        ChaosConfig {
            seed: self.cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(link_salt),
            ..base.for_direction(link_salt % 2 == 1)
        }
    }

    /// Current ring size.
    pub fn n(&self) -> usize {
        self.ring.len()
    }

    /// Slot ids in ring order (position 0 is the anchor).
    pub fn ring_order(&self) -> Vec<usize> {
        self.ring.clone()
    }

    /// How many more members the ring can accept before hitting the K bound.
    pub fn capacity_remaining(&self) -> usize {
        (self.algo.params().k() as usize).saturating_sub(self.ring.len() + 1)
    }

    /// Lifetime count of committed re-splice operations (joins + leaves).
    pub fn resplices(&self) -> u64 {
        self.resplices
    }

    /// Handle on the live ring size, shared with every member's watchdog
    /// budget. Mostly useful for asserting the budget rescaled in tests.
    pub fn ring_size_handle(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.ring_size)
    }

    /// Metrics registry covering every slot ever created. Departed members'
    /// counters remain readable (slots are never reused).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of stage-2 watchdog escalations so far.
    pub fn watchdog_escalations(&self) -> usize {
        self.watchdog_outbox.lock().len()
    }

    /// Whether the ring is currently in degraded (random-walk) mode.
    pub fn degraded(&self) -> bool {
        self.fallback.as_ref().is_some_and(|fb| fb.arbiter.lock().degraded())
    }

    /// Counter snapshot of the degraded-mode service, if enabled.
    pub fn fallback_stats(&self) -> Option<FallbackStats> {
        self.fallback.as_ref().map(|fb| fb.arbiter.lock().stats())
    }

    /// Every critical-section grant the fallback arbiter has recorded
    /// (walker grants only on the live ring), µs offsets from run start.
    pub fn fallback_windows(&self) -> Vec<ssr_mpnet::fallback::GrantWindow> {
        self.fallback.as_ref().map(|fb| fb.arbiter.lock().windows().to_vec()).unwrap_or_default()
    }

    /// Every degraded-mode switch so far, µs offsets from run start.
    pub fn fallback_switches(&self) -> Vec<ssr_mpnet::fallback::ModeSwitch> {
        self.fallback.as_ref().map(|fb| fb.arbiter.lock().switches().to_vec()).unwrap_or_default()
    }

    /// The handover audit: the arbiter's exclusivity checks (walker grants
    /// disjoint, confined to quiesced degraded intervals, well-formed mode
    /// switches) plus any suspension breach found at a degraded exit (rule
    /// firings beyond the in-flight allowance while engines were meant to
    /// be suspended). Empty means the (1,2)-CS discipline held across every
    /// mode switch.
    pub fn fallback_audit(&self) -> Vec<String> {
        let Some(fb) = &self.fallback else { return Vec::new() };
        let mut violations = fb.arbiter.lock().audit();
        violations.extend(fb.breaches.iter().cloned());
        violations
    }

    /// The quiesce margin between degraded entry and the walker's first
    /// grant, if the fallback is enabled — gap measurements start there.
    pub fn fallback_quiesce(&self) -> Option<Duration> {
        self.fallback.as_ref().map(|fb| fb.quiesce)
    }

    /// Number of live degraded-service domains: the maximal live arcs the
    /// current holes cut the ring into, each owning its own walker. 1 on
    /// an intact ring, 0 when the fallback is disabled.
    pub fn fallback_segments(&self) -> usize {
        self.fallback.as_ref().map(|fb| fb.arbiter.lock().segment_count()).unwrap_or(0)
    }

    /// Snapshot of every live segment: domain id, arc positions, anchor,
    /// walker position and step count.
    pub fn fallback_segment_detail(&self) -> Vec<SegmentInfo> {
        self.fallback.as_ref().map(|fb| fb.arbiter.lock().segments()).unwrap_or_default()
    }

    /// Every merge-on-heal the arbiter has committed, in time order.
    pub fn fallback_merges(&self) -> Vec<MergeEvent> {
        self.fallback.as_ref().map(|fb| fb.arbiter.lock().merges().to_vec()).unwrap_or_default()
    }

    /// How many graceful drains escalated to a forced splice-out.
    pub fn drain_timeouts(&self) -> u64 {
        self.drain_timeouts
    }

    /// How many committed K-renegotiations this ring has performed.
    pub fn k_renegotiations(&self) -> u64 {
        self.k_renegotiations
    }

    /// Freeze (or thaw) the member at ring `position`: its rule engine
    /// stops executing while the node keeps caching and retransmitting —
    /// the stuck-daemon fault, exposed here so drain-deadline behaviour can
    /// be exercised deterministically. Returns the slot id.
    pub fn freeze(&mut self, position: usize, on: bool) -> Result<usize, MembershipError> {
        let slot = self.slot_at(position)?;
        self.slot_ref(slot)?.frozen.store(on, Ordering::Relaxed);
        Ok(slot)
    }

    /// Grow the ring's K bound past its spawn-time value: a two-phase
    /// K-bump broadcast. **Prepare** parks every live member (the ring is
    /// degraded for the duration, so the fallback walker keeps granting);
    /// an abort relaunches the already-parked members under the old K.
    /// **Commit** swaps the algorithm to the new parameters and relaunches
    /// everyone with a generation-floor rebind, so any in-flight frame from
    /// the old-K ring dies on the staleness filters. Member states need no
    /// translation: every counter valid under the old K is valid under a
    /// larger K, and self-stabilization re-converges from there.
    ///
    /// Returns the committed K.
    pub fn renegotiate_k(&mut self, new_k: u32) -> Result<u32, MembershipError> {
        let old_k = self.algo.params().k();
        let n = self.ring.len();
        if new_k <= old_k {
            return Err(MembershipError::KRenegotiation(format!(
                "new K={new_k} does not exceed the current K={old_k}"
            )));
        }
        let params = RingParams::new(n, new_k).map_err(|e| {
            MembershipError::KRenegotiation(format!("invalid parameters n={n}, K={new_k}: {e}"))
        })?;
        self.fallback_enter();
        let result = self.renegotiate_commit(params);
        self.fallback_exit();
        if result.is_ok() {
            self.k_renegotiations += 1;
        }
        result
    }

    fn renegotiate_commit(&mut self, params: RingParams) -> Result<u32, MembershipError> {
        // Phase 1 — prepare: park every live member in ring order. Any
        // failure aborts by relaunching the already-parked under the old K.
        let mut parked = Vec::new();
        let order = self.ring.clone();
        for &slot in &order {
            if !self.node_up(slot) {
                continue;
            }
            match self.park(slot) {
                Ok((replica, transport)) => parked.push((slot, replica, transport)),
                Err(e) => {
                    for (s, replica, transport) in parked {
                        self.relaunch(s, replica, transport);
                    }
                    return Err(MembershipError::KRenegotiation(format!(
                        "prepare could not park slot {slot}: {e}"
                    )));
                }
            }
        }
        // Phase 2 — commit: swap the algorithm and relaunch everyone; the
        // relaunch bumps each member's generation floor past its old-K life.
        self.algo = SsrMin::new(params);
        let k = params.k();
        for (slot, replica, transport) in parked {
            self.relaunch(slot, replica, transport);
        }
        Ok(k)
    }

    /// Wall-clock µs since run start (the fallback ledger's time base).
    fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Sum of rule firings over every slot ever created.
    fn total_rule_firings(&self) -> u64 {
        (0..self.slots.len()).map(|i| NodeMetrics::get(&self.metrics.node(i).rule_firings)).sum()
    }

    /// The arbiter's liveness view in ring order: `(slot, generation, up)`
    /// per position. The generation is the slot's incarnation counter, so
    /// anchors of never-relaunched members outrank relaunched ones in the
    /// merge tie-break.
    fn fallback_view(&self) -> Vec<(usize, u64, bool)> {
        self.ring
            .iter()
            .map(|&s| {
                let generation = self
                    .slots
                    .get(s)
                    .and_then(|o| o.as_ref())
                    .map(|m| u64::from(m.incarnation))
                    .unwrap_or(0);
                (s, generation, self.node_up(s))
            })
            .collect()
    }

    /// Refresh the arbiter's liveness view (a park, launch or splice
    /// changed who is up or where the ring's arcs lie). Runs in every mode:
    /// segment membership must track the geometry even between degraded
    /// windows so the next entry starts from the right arcs.
    fn fallback_sync_view(&self) {
        let view = self.fallback_view();
        if let Some(fb) = &self.fallback {
            fb.arbiter.lock().set_view_full(view, self.now_us());
        }
    }

    /// Take one degraded hold: suspend every handshake rule engine and let
    /// the walker serve the segment. The first hold seeds the walker at the
    /// primary token's ring position, so the walk begins where the
    /// handshake left off.
    fn fallback_enter(&mut self) {
        let now = self.now_us();
        let firings = self.total_rule_firings();
        let seed_pos = self
            .ring
            .iter()
            .position(|&s| {
                self.node_up(s) && NodeMetrics::get(&self.metrics.node(s).token_primary) == 1
            })
            .unwrap_or(0);
        let view = self.fallback_view();
        if let Some(fb) = &mut self.fallback {
            let mut arb = fb.arbiter.lock();
            arb.set_view_full(view, now);
            if !arb.degraded() {
                fb.firings_at_enter = firings;
                arb.seed_walker(seed_pos);
                self.suspended.store(true, Ordering::Relaxed);
            }
            arb.enter(now);
        }
    }

    /// Release one degraded hold; releasing the last hands the segment back
    /// to the handshake. The hand-back waits out the walker's in-flight
    /// grant dwell (so no engine resumes inside it) and audits that no rule
    /// engine fired beyond the in-flight allowance while suspended.
    fn fallback_exit(&mut self) {
        let start = self.start;
        let firings_now = self.total_rule_firings();
        let live = self.ring.iter().filter(|&&s| self.node_up(s)).count() as u64;
        let view = self.fallback_view();
        if let Some(fb) = &mut self.fallback {
            let mut arb = fb.arbiter.lock();
            let now = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            arb.set_view_full(view, now);
            // Holding the arbiter lock blocks the walker thread, so no new
            // grant can open while we wait out the last one.
            let open_until = arb
                .windows()
                .iter()
                .rev()
                .find(|w| w.mode == ssr_mpnet::fallback::GrantMode::Walker)
                .map(|w| w.to_us)
                .unwrap_or(0);
            if open_until > now {
                std::thread::sleep(Duration::from_micros(open_until - now + 1));
            }
            let now = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            arb.exit(now);
            if !arb.degraded() {
                self.suspended.store(false, Ordering::Relaxed);
                let fired = firings_now.saturating_sub(fb.firings_at_enter);
                if fired > live {
                    fb.breaches.push(format!(
                        "{fired} rule firings during a degraded window exceed the \
                         in-flight allowance of {live} (one per live engine)"
                    ));
                }
            }
        }
    }

    /// Whether the member in `slot` has a live runner thread.
    pub fn node_up(&self, slot: usize) -> bool {
        self.slots.get(slot).and_then(|s| s.as_ref()).is_some_and(|s| s.thread.is_some())
    }

    /// Count of live members currently evaluating themselves privileged.
    pub fn privileged_count(&self) -> usize {
        self.ring
            .iter()
            .filter(|&&slot| {
                self.node_up(slot) && NodeMetrics::get(&self.metrics.node(slot).privileged) == 1
            })
            .count()
    }

    /// Poll until the ring holds the (1,2)-critical-section invariant
    /// (`1 <= privileged <= 2`) continuously for a short settle window.
    /// Returns the time at which the stable window *began* (the
    /// time-to-reconverge), or `None` if the deadline passes first.
    pub fn wait_reconverged(&self, deadline: Duration) -> Option<Duration> {
        let t0 = Instant::now();
        let hold = Duration::from_millis(30);
        let mut stable_since: Option<Instant> = None;
        loop {
            if (1..=2).contains(&self.privileged_count()) {
                let entered = *stable_since.get_or_insert_with(Instant::now);
                if entered.elapsed() >= hold {
                    return Some(entered.duration_since(t0));
                }
            } else {
                stable_since = None;
            }
            if t0.elapsed() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Admit one member at the tail of the ring (between the current last
    /// member and the anchor). Returns the new member's slot id.
    ///
    /// The joiner binds its sockets first, so a failure here leaves the ring
    /// untouched; only then are the two would-be neighbours parked,
    /// re-spliced toward the joiner, cache-seeded, and relaunched.
    pub fn join(&mut self) -> Result<usize, MembershipError> {
        let n = self.ring.len();
        let k = self.algo.params().k();
        if (n + 1) as u32 >= k {
            return Err(MembershipError::AtCapacity { n: n + 1, k });
        }
        let tail = *self.ring.last().expect("ring is never empty");
        let anchor = self.ring[0];
        if !self.node_up(tail) || !self.node_up(anchor) {
            return Err(MembershipError::Invalid(format!(
                "a join needs both would-be neighbours up (tail slot {tail}, anchor slot {anchor})"
            )));
        }

        // Phase 1 — fallible setup, ring untouched. Bind the joiner and (if
        // chaotic) its outbound proxies.
        let slot = self.slots.len();
        let grown = self.metrics.grow();
        debug_assert_eq!(grown, slot);
        let mut t = UdpTransport::<SsrState>::bind(
            slot as u16,
            tail as u16,
            anchor as u16,
            self.cfg.tick,
            self.cfg.seed.wrapping_add(slot as u64),
            self.metrics.arc_node(slot),
        )
        .map_err(|e| MembershipError::Io(format!("bind joiner sockets: {e}")))?;
        let j_addrs =
            t.local_addrs().map_err(|e| MembershipError::Io(format!("joiner local addrs: {e}")))?;
        let tail_addrs = self.slot_ref(tail)?.addrs;
        let anchor_addrs = self.slot_ref(anchor)?.addrs;
        let (proxy_pred, proxy_succ) = if self.cfg.chaos.is_some() {
            let ps = ChaosProxy::spawn(anchor_addrs.pred, self.link_chaos(2 * slot as u64))
                .map_err(|e| MembershipError::Io(format!("spawn joiner chaos proxy: {e}")))?;
            let pp = ChaosProxy::spawn(tail_addrs.succ, self.link_chaos(2 * slot as u64 + 1))
                .map_err(|e| MembershipError::Io(format!("spawn joiner chaos proxy: {e}")))?;
            t.wire(pp.addr(), ps.addr());
            (Some(pp), Some(ps))
        } else {
            t.wire(tail_addrs.succ, anchor_addrs.pred);
            (None, None)
        };

        // Phases 2-4 break the ring at the splice site: run them under a
        // degraded-mode hold so the fallback walker serves the segment.
        self.fallback_enter();
        let result = self.join_commit(slot, tail, anchor, t, j_addrs, proxy_pred, proxy_succ);
        self.fallback_exit();
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn join_commit(
        &mut self,
        slot: usize,
        tail: usize,
        anchor: usize,
        t: UdpTransport<SsrState>,
        j_addrs: LocalAddrs,
        proxy_pred: Option<ChaosProxy>,
        proxy_succ: Option<ChaosProxy>,
    ) -> Result<usize, MembershipError> {
        // Phase 2 — the handshake. Park both neighbours; their replicas and
        // transports are now in our hands while the rest of the ring runs on.
        let (mut tail_rep, mut tail_tr) = self.park(tail)?;
        let (mut anchor_rep, mut anchor_tr) = match self.park(anchor) {
            Ok(parked) => parked,
            Err(e) => {
                self.relaunch(tail, tail_rep, tail_tr);
                return Err(e);
            }
        };

        // Phase 3 — re-point the links. The tail's succ-ward end and the
        // anchor's pred-ward end both now face the joiner; cleared generation
        // watermarks accept the joiner's fresh counter from frame one.
        let tail_peer = match &self.slot_ref(tail)?.proxy_succ {
            Some(p) => {
                p.set_dst(j_addrs.pred);
                p.addr()
            }
            None => j_addrs.pred,
        };
        tail_tr.resplice(Neighbor::Succ, slot as u16, tail_peer);
        let anchor_peer = match &self.slot_ref(anchor)?.proxy_pred {
            Some(p) => {
                p.set_dst(j_addrs.succ);
                p.addr()
            }
            None => j_addrs.succ,
        };
        anchor_tr.resplice(Neighbor::Pred, slot as u16, anchor_peer);

        // Phase 4 — graceful state handover. The joiner copies its
        // predecessor's counter with no token bits: under SSRmin's rules the
        // new edge (tail -> joiner) is immediately quiescent and the joiner
        // simply waits its turn, so the splice mints no extra privilege.
        let own = SsrState::new(tail_rep.own.x, 0, 0);
        let replica = Replica::coherent(own, tail_rep.own, anchor_rep.own);
        tail_rep.cache_succ = own;
        anchor_rep.cache_pred = own;

        self.relaunch(tail, tail_rep, tail_tr);
        self.relaunch(anchor, anchor_rep, anchor_tr);
        self.slots.push(Some(MemberSlot {
            kill: Arc::new(AtomicBool::new(false)),
            frozen: Arc::new(AtomicBool::new(false)),
            poison: Arc::new(Mutex::new(None)),
            thread: None,
            parked: None,
            down_since: None,
            addrs: j_addrs,
            proxy_pred,
            proxy_succ,
            incarnation: 0,
            degraded_hold: false,
        }));
        self.launch(slot, replica, t);

        self.ring.push(slot);
        self.ring_size.store(self.ring.len(), Ordering::Relaxed);
        self.resplices += 1;
        Ok(slot)
    }

    /// Retire the member at ring `position` gracefully: wait (bounded) for
    /// it to hand any privilege downstream, stop it, and have its neighbours
    /// splice around it. Returns the retired slot id.
    pub fn leave(&mut self, position: usize) -> Result<usize, MembershipError> {
        self.splice_out(position, true)
    }

    /// Crash the member at ring `position`: its thread stops but the ring is
    /// *not* re-spliced — neighbours see a dead peer until either
    /// [`RingMembership::restart`] brings it back or
    /// [`RingMembership::reap_dead`] splices it out. Returns the slot id.
    pub fn crash(&mut self, position: usize) -> Result<usize, MembershipError> {
        let slot = self.slot_at(position)?;
        // The hole this crash opens persists until a restart or a reap, so
        // the degraded hold it takes is released there, not here.
        self.fallback_enter();
        let remains = match self.park(slot) {
            Ok(remains) => remains,
            Err(e) => {
                self.fallback_exit();
                return Err(e);
            }
        };
        let s = self.slot_mut(slot)?;
        s.parked = Some(remains);
        s.down_since = Some(Instant::now());
        s.degraded_hold = true;
        self.fallback_sync_view();
        self.log.lock().push(ActivityEvent { at: self.start.elapsed(), node: slot, active: false });
        Ok(slot)
    }

    /// Restart a previously crashed member in-place with a generation-floor
    /// rebind, clearing its liveness clock.
    pub fn restart(&mut self, position: usize) -> Result<usize, MembershipError> {
        let slot = self.slot_at(position)?;
        let s = self.slot_mut(slot)?;
        let Some((replica, mut transport)) = s.parked.take() else {
            return Err(MembershipError::NotCrashed { slot });
        };
        s.incarnation += 1;
        let hold = std::mem::take(&mut s.degraded_hold);
        transport.advance_generation_to(s.incarnation.saturating_mul(GENERATION_STRIDE));
        self.launch(slot, replica, transport);
        self.log.lock().push(ActivityEvent { at: self.start.elapsed(), node: slot, active: true });
        if hold {
            // The hole this member opened at crash time has closed; release
            // its degraded hold (the ring hands back once all holds drop).
            self.fallback_exit();
        }
        Ok(slot)
    }

    /// Splice out every non-anchor member that has been crashed for at least
    /// `liveness`, while the ring stays at or above the n=3 floor and the
    /// dead member's neighbours are up. Returns the reaped slot ids.
    pub fn reap_dead(&mut self, liveness: Duration) -> Vec<usize> {
        let mut reaped = Vec::new();
        loop {
            let candidate = self.ring.iter().enumerate().skip(1).find_map(|(pos, &slot)| {
                let expired = self.slots[slot]
                    .as_ref()
                    .and_then(|s| s.down_since)
                    .is_some_and(|t| t.elapsed() >= liveness);
                (expired && self.splicable(pos)).then_some(pos)
            });
            let Some(pos) = candidate else { break };
            match self.splice_out(pos, false) {
                Ok(slot) => reaped.push(slot),
                Err(_) => break,
            }
        }
        reaped
    }

    /// Apply a scheduled membership event from the shared churn fault model.
    /// `Join { node }` must name the current ring size (tail append);
    /// `Leave { node }` names a ring position.
    pub fn apply_membership(&mut self, kind: &FaultKind) -> Result<usize, MembershipError> {
        match kind {
            FaultKind::Join { node } => {
                if *node != self.ring.len() {
                    return Err(MembershipError::Invalid(format!(
                        "join as node {node} does not extend the tail of a {}-ring",
                        self.ring.len()
                    )));
                }
                self.join()
            }
            FaultKind::Leave { node } => self.leave(*node),
            other => Err(MembershipError::Invalid(format!("'{other}' is not a membership event"))),
        }
    }

    /// Stop every member and tear the host down.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(fb) = &mut self.fallback {
            if let Some(handle) = fb.thread.take() {
                let _ = handle.join();
            }
        }
        for slot in self.slots.iter_mut().flatten() {
            if let Some(handle) = slot.thread.take() {
                let _ = handle.join();
            }
            slot.parked = None;
            if let Some(p) = slot.proxy_pred.take() {
                p.shutdown();
            }
            if let Some(p) = slot.proxy_succ.take() {
                p.shutdown();
            }
        }
    }

    /// Whether the member at ring `position` could be spliced out right now.
    fn splicable(&self, position: usize) -> bool {
        let n = self.ring.len();
        if position == 0 || position >= n || n - 1 < RingParams::MIN_N {
            return false;
        }
        let pred = self.ring[position - 1];
        let succ = self.ring[(position + 1) % n];
        self.node_up(pred) && self.node_up(succ)
    }

    fn splice_out(&mut self, position: usize, graceful: bool) -> Result<usize, MembershipError> {
        let n = self.ring.len();
        if position >= n {
            return Err(MembershipError::OutOfRange { position, n });
        }
        if position == 0 {
            return Err(MembershipError::Anchor);
        }
        if n - 1 < RingParams::MIN_N {
            return Err(MembershipError::BelowMinimum);
        }
        let leaver = self.ring[position];
        let pred = self.ring[position - 1];
        let succ = self.ring[(position + 1) % n];
        if !self.node_up(pred) || !self.node_up(succ) {
            return Err(MembershipError::Invalid(format!(
                "a splice-out needs both neighbours up (slots {pred} and {succ})"
            )));
        }

        // A graceful leaver first hands any privilege downstream. The drain
        // is bounded: one watchdog budget per GRACE_ENVELOPE (the Theorem-2
        // envelope when watchdogs are off). A leaver still privileged at
        // the deadline is spliced out anyway — the ring must not park its
        // neighbours forever — and the caller gets a typed
        // [`MembershipError::DrainTimeout`] recording the escalation.
        let mut drained = true;
        let mut waited = Duration::ZERO;
        if graceful && self.node_up(leaver) {
            let budget = match self.cfg.watchdog {
                Some(w) => w.budget(n, self.cfg.tick),
                None => convergence_envelope(n, self.cfg.tick),
            };
            let deadline = budget * GRACE_ENVELOPES;
            let t0 = Instant::now();
            drained = loop {
                if NodeMetrics::get(&self.metrics.node(leaver).privileged) == 0 {
                    break true;
                }
                if t0.elapsed() >= deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(1));
            };
            waited = t0.elapsed();
        }

        // The splice itself breaks the ring: run it under a degraded-mode
        // hold. A reaped member that crashed earlier also owns a hold;
        // release it once the splice has removed the member.
        let leaver_hold = self.slots[leaver].as_ref().is_some_and(|s| s.degraded_hold);
        self.fallback_enter();
        let result = self.splice_commit(position, leaver, pred, succ);
        self.fallback_exit();
        if result.is_ok() && leaver_hold {
            self.fallback_exit();
        }
        match result {
            Ok(slot) if !drained => {
                self.drain_timeouts += 1;
                Err(MembershipError::DrainTimeout {
                    slot,
                    waited_ms: u64::try_from(waited.as_millis()).unwrap_or(u64::MAX),
                })
            }
            other => other,
        }
    }

    fn splice_commit(
        &mut self,
        position: usize,
        leaver: usize,
        pred: usize,
        succ: usize,
    ) -> Result<usize, MembershipError> {
        // Stop the leaver (or collect its parked remains) and drop its
        // sockets and proxies; in-flight frames it sent die on the
        // neighbours' re-spliced sender-slot checks.
        if self.node_up(leaver) {
            let _remains = self.park(leaver)?;
        }
        if let Some(s) = self.slots[leaver].take() {
            if let Some(p) = s.proxy_pred {
                p.shutdown();
            }
            if let Some(p) = s.proxy_succ {
                p.shutdown();
            }
        }
        // The spliced member's privilege is gone with it; zero its gauges so
        // observers never read a stale token.
        let m = self.metrics.node(leaver);
        NodeMetrics::set(&m.privileged, 0);
        NodeMetrics::set(&m.token_primary, 0);
        NodeMetrics::set(&m.token_secondary, 0);
        self.log.lock().push(ActivityEvent {
            at: self.start.elapsed(),
            node: leaver,
            active: false,
        });

        // Neighbours handshake around the hole.
        let (mut pred_rep, mut pred_tr) = self.park(pred)?;
        let (mut succ_rep, mut succ_tr) = match self.park(succ) {
            Ok(parked) => parked,
            Err(e) => {
                self.relaunch(pred, pred_rep, pred_tr);
                return Err(e);
            }
        };
        let pred_addrs = self.slot_ref(pred)?.addrs;
        let succ_addrs = self.slot_ref(succ)?.addrs;
        let pred_peer = match &self.slot_ref(pred)?.proxy_succ {
            Some(p) => {
                p.set_dst(succ_addrs.pred);
                p.addr()
            }
            None => succ_addrs.pred,
        };
        pred_tr.resplice(Neighbor::Succ, succ as u16, pred_peer);
        let succ_peer = match &self.slot_ref(succ)?.proxy_pred {
            Some(p) => {
                p.set_dst(pred_addrs.succ);
                p.addr()
            }
            None => pred_addrs.succ,
        };
        succ_tr.resplice(Neighbor::Pred, pred as u16, succ_peer);
        pred_rep.cache_succ = succ_rep.own;
        succ_rep.cache_pred = pred_rep.own;
        self.relaunch(pred, pred_rep, pred_tr);
        self.relaunch(succ, succ_rep, succ_tr);

        self.ring.remove(position);
        self.ring_size.store(self.ring.len(), Ordering::Relaxed);
        self.resplices += 1;
        Ok(leaver)
    }

    /// Ask the runner thread in `slot` to exit and hand back its replica and
    /// transport. The slot stays allocated; callers decide whether the
    /// remains are relaunched, parked, or dropped.
    fn park(
        &mut self,
        slot: usize,
    ) -> Result<(Replica<SsrState>, UdpTransport<SsrState>), MembershipError> {
        let s = self.slot_mut(slot)?;
        let Some(handle) = s.thread.take() else {
            return Err(MembershipError::NotRunning { slot });
        };
        s.kill.store(true, Ordering::Relaxed);
        let remains = handle
            .join()
            .map_err(|_| MembershipError::Invalid(format!("slot {slot} runner thread panicked")))?;
        let s = self.slot_mut(slot)?;
        s.kill.store(false, Ordering::Relaxed);
        s.frozen.store(false, Ordering::Relaxed);
        self.fallback_sync_view();
        Ok(remains)
    }

    /// Relaunch a parked neighbour after a splice, bumping its generation
    /// floor so frames from before the splice can never outrank it.
    fn relaunch(
        &mut self,
        slot: usize,
        replica: Replica<SsrState>,
        mut transport: UdpTransport<SsrState>,
    ) {
        let incarnation = match self.slot_mut(slot) {
            Ok(s) => {
                s.incarnation += 1;
                s.incarnation
            }
            Err(_) => return,
        };
        transport.advance_generation_to(incarnation.saturating_mul(GENERATION_STRIDE));
        self.launch(slot, replica, transport);
    }

    fn launch(
        &mut self,
        slot: usize,
        replica: Replica<SsrState>,
        transport: UdpTransport<SsrState>,
    ) {
        let control = {
            let s = self.slots[slot].as_ref().expect("launch into a live slot");
            NodeControl {
                stop: Arc::clone(&self.stop),
                kill: Arc::clone(&s.kill),
                snapshot: None,
                poison: Arc::clone(&s.poison),
                frozen: Arc::clone(&s.frozen),
                suspended: Arc::clone(&self.suspended),
                watchdog: self.cfg.watchdog.map(|w| Watchdog {
                    budget: w.shared_budget(Arc::clone(&self.ring_size), self.cfg.tick),
                    generation_bump: GENERATION_STRIDE,
                    outbox: Arc::clone(&self.watchdog_outbox),
                }),
            }
        };
        let algo = self.algo;
        let cfg = NodeConfig { exec_delay: self.cfg.exec_delay, ..NodeConfig::default() };
        let log = Arc::clone(&self.log);
        let start = self.start;
        let metrics = self.metrics.arc_node(slot);
        let handle = std::thread::spawn(move || {
            run_node(algo, slot, replica, transport, cfg, control, log, start, metrics)
        });
        let s = self.slots[slot].as_mut().expect("launch into a live slot");
        s.down_since = None;
        s.thread = Some(handle);
        self.fallback_sync_view();
    }

    fn slot_at(&self, position: usize) -> Result<usize, MembershipError> {
        self.ring
            .get(position)
            .copied()
            .ok_or(MembershipError::OutOfRange { position, n: self.ring.len() })
    }

    fn slot_ref(&self, slot: usize) -> Result<&MemberSlot, MembershipError> {
        self.slots.get(slot).and_then(|s| s.as_ref()).ok_or(MembershipError::SplicedOut { slot })
    }

    fn slot_mut(&mut self, slot: usize) -> Result<&mut MemberSlot, MembershipError> {
        self.slots
            .get_mut(slot)
            .and_then(|s| s.as_mut())
            .ok_or(MembershipError::SplicedOut { slot })
    }
}

impl Drop for RingMembership {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg(seed: u64) -> MembershipConfig {
        MembershipConfig {
            tick: Duration::from_millis(2),
            exec_delay: Duration::from_micros(200),
            seed,
            chaos: None,
            watchdog: Some(WatchdogConfig::default()),
            fallback: None,
        }
    }

    fn settle(ring: &RingMembership) -> Duration {
        convergence_envelope(ring.n(), Duration::from_millis(2)).max(Duration::from_millis(500)) * 4
    }

    #[test]
    fn join_then_leave_resplices_a_live_ring() {
        let params = RingParams::new(4, 10).unwrap();
        let mut ring = RingMembership::spawn(params, quiet_cfg(11)).unwrap();
        assert!(ring.wait_reconverged(settle(&ring)).is_some());

        let slot = ring.join().expect("join");
        assert_eq!(slot, 4);
        assert_eq!(ring.n(), 5);
        assert_eq!(ring.ring_size_handle().load(Ordering::Relaxed), 5);
        assert!(ring.wait_reconverged(settle(&ring)).is_some(), "after join");

        let retired = ring.leave(2).expect("leave");
        assert_eq!(retired, 2);
        assert_eq!(ring.n(), 4);
        assert_eq!(ring.ring_order(), vec![0, 1, 3, 4]);
        assert!(ring.wait_reconverged(settle(&ring)).is_some(), "after leave");
        assert_eq!(ring.resplices(), 2);
        ring.stop();
    }

    #[test]
    fn capacity_and_anchor_guards_are_typed_errors() {
        let params = RingParams::minimal(3).unwrap(); // K = 4: no join headroom
        let mut ring = RingMembership::spawn(params, quiet_cfg(7)).unwrap();
        let err = ring.join().unwrap_err().to_string();
        assert!(err.contains("K capacity"), "{err}");
        let err = ring.leave(0).unwrap_err().to_string();
        assert!(err.contains("anchor"), "{err}");
        let err = ring.leave(1).unwrap_err().to_string();
        assert!(err.contains("below n=3"), "{err}");
        ring.stop();
    }

    #[test]
    fn crash_then_reap_splices_out_the_dead() {
        let params = RingParams::new(5, 12).unwrap();
        let mut ring = RingMembership::spawn(params, quiet_cfg(23)).unwrap();
        assert!(ring.wait_reconverged(settle(&ring)).is_some());

        let slot = ring.crash(2).expect("crash");
        assert!(!ring.node_up(slot));
        // Not yet expired: nothing reaped.
        assert!(ring.reap_dead(Duration::from_secs(60)).is_empty());
        assert_eq!(ring.n(), 5);
        // Expired: the dead member is spliced out by its neighbours.
        let reaped = ring.reap_dead(Duration::ZERO);
        assert_eq!(reaped, vec![slot]);
        assert_eq!(ring.n(), 4);
        assert!(ring.wait_reconverged(settle(&ring)).is_some(), "after reap");
        ring.stop();
    }

    #[test]
    fn k_renegotiation_grows_the_ring_past_spawn_k() {
        let params = RingParams::minimal(3).unwrap(); // K = 4: no join headroom
        let mut ring = RingMembership::spawn(params, quiet_cfg(41)).unwrap();
        assert!(ring.wait_reconverged(settle(&ring)).is_some());
        assert!(matches!(ring.join().unwrap_err(), MembershipError::AtCapacity { .. }));
        // A shrink (or no-op) is rejected with a typed error.
        assert!(matches!(ring.renegotiate_k(4).unwrap_err(), MembershipError::KRenegotiation(_)));
        assert_eq!(ring.renegotiate_k(8).expect("K bump"), 8);
        assert_eq!(ring.k_renegotiations(), 1);
        assert!(ring.wait_reconverged(settle(&ring)).is_some(), "after renegotiation");
        let slot = ring.join().expect("join after the K bump");
        assert_eq!(slot, 3);
        assert_eq!(ring.n(), 4);
        assert!(ring.wait_reconverged(settle(&ring)).is_some(), "after post-bump join");
        ring.stop();
    }

    #[test]
    fn crash_restart_keeps_the_member() {
        let params = RingParams::new(4, 9).unwrap();
        let mut ring = RingMembership::spawn(params, quiet_cfg(31)).unwrap();
        assert!(ring.wait_reconverged(settle(&ring)).is_some());
        let slot = ring.crash(3).expect("crash");
        let back = ring.restart(3).expect("restart");
        assert_eq!(slot, back);
        assert!(ring.node_up(slot));
        assert_eq!(ring.n(), 4);
        assert!(ring.wait_reconverged(settle(&ring)).is_some(), "after restart");
        ring.stop();
    }
}
