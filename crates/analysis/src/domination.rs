//! Empirical construction of the Lemma 8 domination graph
//! `H = (W₁₃₅, W₂₄, F)` from a recorded execution.
//!
//! The proof of Lemma 8 charges every execution of Rules 1/3/5 (`W₁₃₅`) to a
//! nearby execution of Rules 2/4 (`W₂₄`, the Dijkstra counter moves), with
//! the dominating event always located at `P_i`, `P_{i-1}` or `P_{i-2}`
//! relative to the dominated event's process `P_i`, at most `L = 9` events
//! charged to one dominator, and the dominator arriving before the next
//! `M = 2` events at `P_i`. This module rebuilds that graph from actual
//! traces (the greedy earliest-eligible-dominator assignment) and measures
//! the realized `L` and `M` — the empirical counterpart of Figures 5–10.

use ssr_daemon::StepRecord;

/// One rule execution, flattened out of the per-step mover sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleEvent {
    /// Scheduler step at which the event occurred (1-based).
    pub step: u64,
    /// Process that moved.
    pub process: usize,
    /// SSRmin rule number (1–5).
    pub rule: u8,
}

impl RuleEvent {
    /// True iff the event is a Dijkstra counter move (`W₂₄`).
    pub fn is_w24(&self) -> bool {
        self.rule == 2 || self.rule == 4
    }
}

/// Flatten step records into individual rule events, in execution order
/// (step-major, process-minor).
pub fn extract_events(records: &[StepRecord]) -> Vec<RuleEvent> {
    let mut out = Vec::new();
    for r in records {
        for &(process, rule) in &r.movers {
            out.push(RuleEvent { step: r.step, process, rule });
        }
    }
    out
}

/// Length (in scheduler steps) of the longest run of consecutive steps that
/// contain no `W₂₄` move — the quantity Lemma 5 bounds by `3n`.
pub fn max_w24_free_run(records: &[StepRecord]) -> u64 {
    let mut best = 0u64;
    let mut run = 0u64;
    for r in records {
        if r.dijkstra_moves() == 0 {
            run += 1;
            best = best.max(run);
        } else {
            run = 0;
        }
    }
    best
}

/// The empirically constructed domination graph.
#[derive(Debug, Clone)]
pub struct DominationGraph {
    /// `W₁₃₅` events (indices referenced by `edges.0`).
    pub w135: Vec<RuleEvent>,
    /// `W₂₄` events (indices referenced by `edges.1`).
    pub w24: Vec<RuleEvent>,
    /// Edges `(w135 index, w24 index)`.
    pub edges: Vec<(usize, usize)>,
    /// `W₁₃₅` events left undominated (no later eligible `W₂₄` event in the
    /// finite trace — the trailing fringe the proof trims away).
    pub undominated: usize,
    /// Largest number of `W₁₃₅` events charged to a single dominator
    /// (the proof bounds this by `L = 9`).
    pub max_in_degree: usize,
    /// Largest number of same-process events strictly between a dominated
    /// event and its dominator (the proof bounds this by `M = 2`).
    pub max_delay: usize,
}

/// Build the graph: each `W₁₃₅` event at `P_i` is charged to the *earliest*
/// subsequent `W₂₄` event at `P_i`, `P_{i-1}` or `P_{i-2}` (mod `n`).
///
/// Greedy-earliest can only tighten the proof's delay bound (the proof's
/// dominator is eligible, so the earliest eligible one is no later), and
/// its in-degree obeys the same `L = 9` bound by the per-process budget of
/// Lemma 5.
pub fn build_domination(events: &[RuleEvent], n: usize) -> DominationGraph {
    assert!(n >= 3, "ring of at least 3 processes");
    let mut w135 = Vec::new();
    let mut w24 = Vec::new();
    // Map original order index -> (class, index within class).
    let mut order: Vec<(bool, usize)> = Vec::with_capacity(events.len());
    for e in events {
        if e.is_w24() {
            order.push((true, w24.len()));
            w24.push(*e);
        } else {
            order.push((false, w135.len()));
            w135.push(*e);
        }
    }

    let mut edges = Vec::with_capacity(w135.len());
    let mut in_degree = vec![0usize; w24.len()];
    let mut undominated = 0usize;
    let mut max_delay = 0usize;

    for (pos, e) in events.iter().enumerate() {
        if e.is_w24() {
            continue;
        }
        let (_, e_idx) = order[pos];
        let i = e.process;
        let eligible = [i, (i + n - 1) % n, (i + n - 2) % n];
        let mut delay = 0usize;
        let mut found = false;
        for (later_pos, f) in events.iter().enumerate().skip(pos + 1) {
            if f.process == i && !f.is_w24() {
                delay += 1;
            }
            if f.is_w24() && eligible.contains(&f.process) {
                let (_, f_idx) = order[later_pos];
                edges.push((e_idx, f_idx));
                in_degree[f_idx] += 1;
                max_delay = max_delay.max(delay);
                found = true;
                break;
            }
        }
        if !found {
            undominated += 1;
        }
    }

    let max_in_degree = in_degree.iter().copied().max().unwrap_or(0);
    DominationGraph { w135, w24, edges, undominated, max_in_degree, max_delay }
}

impl DominationGraph {
    /// Ratio `|W₁₃₅| / |W₂₄|` — the counting core of Lemma 8 (bounded by a
    /// constant ≈ `L`).
    pub fn event_ratio(&self) -> f64 {
        if self.w24.is_empty() {
            f64::INFINITY
        } else {
            self.w135.len() as f64 / self.w24.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::{RingParams, SsrMin};
    use ssr_daemon::daemons::{CentralRandom, DelayDijkstra, DistributedRandom, Synchronous};
    use ssr_daemon::{random_config, Engine};

    fn ev(step: u64, process: usize, rule: u8) -> RuleEvent {
        RuleEvent { step, process, rule }
    }

    #[test]
    fn extract_flattens_movers() {
        let records = vec![
            StepRecord { step: 1, movers: vec![(0, 1), (3, 3)] },
            StepRecord { step: 2, movers: vec![(1, 2)] },
        ];
        let events = extract_events(&records);
        assert_eq!(events, vec![ev(1, 0, 1), ev(1, 3, 3), ev(2, 1, 2)]);
    }

    #[test]
    fn w24_free_run_measured() {
        let records = vec![
            StepRecord { step: 1, movers: vec![(0, 1)] },
            StepRecord { step: 2, movers: vec![(1, 3)] },
            StepRecord { step: 3, movers: vec![(0, 2)] },
            StepRecord { step: 4, movers: vec![(1, 5)] },
        ];
        assert_eq!(max_w24_free_run(&records), 2);
    }

    #[test]
    fn domination_charges_to_nearest_eligible() {
        // P1 fires Rule 1 at step 1; P0 (its predecessor) fires Rule 2 at
        // step 3. Eligible and nearest.
        let events = vec![ev(1, 1, 1), ev(2, 1, 3), ev(3, 0, 2)];
        let g = build_domination(&events, 5);
        assert_eq!(g.w135.len(), 2);
        assert_eq!(g.w24.len(), 1);
        assert_eq!(g.edges, vec![(0, 0), (1, 0)]);
        assert_eq!(g.undominated, 0);
        assert_eq!(g.max_in_degree, 2);
        // One P1 event (the Rule 3) sits between the Rule 1 and its
        // dominator.
        assert_eq!(g.max_delay, 1);
    }

    #[test]
    fn ineligible_dominators_are_skipped() {
        // Dominator must be at P_i, P_{i-1} or P_{i-2}: an event at P_{i+1}
        // does not count.
        let events = vec![ev(1, 1, 1), ev(2, 2, 2)];
        let g = build_domination(&events, 5);
        assert_eq!(g.undominated, 1);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn wraparound_eligibility() {
        // P0's eligible dominators on a 5-ring are P0, P4, P3.
        let events = vec![ev(1, 0, 5), ev(2, 3, 4)];
        let g = build_domination(&events, 5);
        assert_eq!(g.edges, vec![(0, 0)]);
    }

    /// The Lemma 8 bounds hold on real SSRmin executions from random and
    /// adversarial starts under several daemons.
    #[test]
    fn lemma8_bounds_on_real_traces() {
        let p = RingParams::new(7, 9).unwrap();
        let a = SsrMin::new(p);
        for seed in 0..6u64 {
            let cfg = random_config::random_ssr_config(p, seed);
            let traces = [
                {
                    let mut e = Engine::new(a, cfg.clone()).unwrap();
                    e.run_traced(&mut CentralRandom::seeded(seed), 3_000)
                },
                {
                    let mut e = Engine::new(a, cfg.clone()).unwrap();
                    e.run_traced(&mut Synchronous, 3_000)
                },
                {
                    let mut e = Engine::new(a, cfg.clone()).unwrap();
                    e.run_traced(&mut DistributedRandom::seeded(seed, 0.4), 3_000)
                },
                {
                    let mut e = Engine::new(a, cfg).unwrap();
                    e.run_traced(&mut DelayDijkstra::seeded(seed), 3_000)
                },
            ];
            for t in &traces {
                let events = extract_events(t.records());
                let g = build_domination(&events, p.n());
                assert!(
                    g.max_in_degree <= 9,
                    "L bound violated: {} (seed {seed})",
                    g.max_in_degree
                );
                assert!(g.max_delay <= 2, "M bound violated: {} (seed {seed})", g.max_delay);
                assert!(
                    max_w24_free_run(t.records()) <= 3 * p.n() as u64,
                    "Lemma 5 bound violated (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn event_ratio_infinite_without_w24() {
        let g = build_domination(&[ev(1, 0, 1)], 3);
        assert!(g.event_ratio().is_infinite());
    }
}
