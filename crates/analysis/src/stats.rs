//! Small descriptive-statistics helpers shared by the experiment harness.

/// Summary statistics of a sample of `u64` measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile, nearest-rank).
    pub median: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// Population standard deviation.
    pub stddev: f64,
}

/// Compute summary statistics. Returns `None` on an empty sample.
pub fn summarize(values: &[u64]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let count = sorted.len();
    let min = sorted[0];
    let max = sorted[count - 1];
    let sum: u128 = sorted.iter().map(|&v| v as u128).sum();
    let mean = sum as f64 / count as f64;
    let var = sorted
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / count as f64;
    Some(Summary {
        count,
        min,
        max,
        mean,
        median: percentile(&sorted, 50.0),
        p95: percentile(&sorted, 95.0),
        stddev: var.sqrt(),
    })
}

/// Nearest-rank percentile of an already-sorted slice (`p` in `0..=100`).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let p = p.clamp(0.0, 100.0);
    if p == 0.0 {
        return sorted[0];
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Least-squares fit of `log(y) = a + b·log(x)` — used to estimate the
/// empirical growth exponent of convergence time vs ring size (Theorem 2
/// predicts `b ≲ 2`). Returns `(exponent b, multiplier e^a)`.
pub fn loglog_slope(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    Some((b, a.exp()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_basic() {
        let s = summarize(&[4, 1, 3, 2, 5]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.median, 3);
        assert_eq!(s.p95, 5);
        assert!((s.stddev - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn summarize_empty_is_none() {
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [10, 20, 30, 40];
        assert_eq!(percentile(&sorted, 0.0), 10);
        assert_eq!(percentile(&sorted, 25.0), 10);
        assert_eq!(percentile(&sorted, 50.0), 20);
        assert_eq!(percentile(&sorted, 75.0), 30);
        assert_eq!(percentile(&sorted, 100.0), 40);
    }

    #[test]
    fn loglog_recovers_quadratic() {
        let pts: Vec<(f64, f64)> = (2..20).map(|n| (n as f64, 3.0 * (n as f64).powi(2))).collect();
        let (b, c) = loglog_slope(&pts).unwrap();
        assert!((b - 2.0).abs() < 1e-9, "slope {b}");
        assert!((c - 3.0).abs() < 1e-6, "coef {c}");
    }

    #[test]
    fn loglog_degenerate_cases() {
        assert!(loglog_slope(&[]).is_none());
        assert!(loglog_slope(&[(1.0, 1.0)]).is_none());
        assert!(loglog_slope(&[(1.0, 1.0), (1.0, 2.0)]).is_none());
        assert!(loglog_slope(&[(0.0, 1.0), (-1.0, 2.0)]).is_none());
    }
}
