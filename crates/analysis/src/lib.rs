//! # ssr-analysis — measurement and analysis for the reproduction harness
//!
//! * [`stats`] — descriptive statistics and log-log growth-exponent fits;
//! * [`convergence_stats`] — stabilization-time sweeps vs ring size under
//!   every daemon family (Theorem 2's `O(n²)`);
//! * [`domination`] — empirical construction of the Lemma 8 domination
//!   graph with the `L = 9` / `M = 2` bound checks (Figures 5–10);
//! * [`token_stats`] — zero-token time and privileged-count bounds of
//!   message-passing runs (Figures 11–13, Theorem 3);
//! * [`superstab`] — exhaustive single-fault recovery analysis (the
//!   superstabilization direction of the paper's conclusion);
//! * [`table`] — plain-text tables for the experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod convergence_stats;
pub mod domination;
pub mod stats;
pub mod superstab;
pub mod table;
pub mod token_stats;
pub mod viz;

pub use adversary::{search_worst_case, steps_under_schedule, AdversaryResult, ScheduleDaemon};
pub use convergence_stats::{ssrmin_convergence_sweep, DaemonKind, StartKind, SweepPoint};
pub use domination::{
    build_domination, extract_events, max_w24_free_run, DominationGraph, RuleEvent,
};
pub use stats::{loglog_slope, percentile, summarize, Summary};
pub use superstab::{single_fault_sweep, SuperstabReport};
pub use table::{Align, Table};
pub use token_stats::{aggregate, cst_gap_rows, cst_gap_summary, GapAggregate, GapRow};
pub use viz::{bar_chart, privileged_strip};
