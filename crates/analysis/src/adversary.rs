//! Adversary synthesis: search the schedule space for daemon strategies
//! that maximize stabilization time. The explicit-state checker
//! (`ssr-verify`) computes the *exact* worst case for tiny rings; this
//! module's local search scales to rings the checker cannot enumerate, and
//! the tiny-ring overlap validates the search (it should approach the
//! exact bound).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ssr_core::{Config, RingAlgorithm, SsrMin, SsrState};
use ssr_daemon::daemons::{Daemon, EnabledProcess};

/// A fully deterministic daemon driven by a schedule of subset-choice
/// words: at step `t`, word `t` selects the subset of the enabled list by
/// its bits (coerced non-empty by the engine contract).
#[derive(Debug, Clone)]
pub struct ScheduleDaemon {
    /// One word per step; cycled if the run outlives the schedule.
    pub words: Vec<u64>,
    pos: usize,
}

impl ScheduleDaemon {
    /// Wrap a schedule.
    pub fn new(words: Vec<u64>) -> Self {
        ScheduleDaemon { words, pos: 0 }
    }
}

impl Daemon for ScheduleDaemon {
    fn select(&mut self, enabled: &[EnabledProcess], _step: u64) -> Vec<usize> {
        let w = if self.words.is_empty() {
            1
        } else {
            let w = self.words[self.pos % self.words.len()];
            self.pos += 1;
            w
        };
        let mut picked: Vec<usize> = enabled
            .iter()
            .enumerate()
            .filter(|(j, _)| w & (1 << (j % 64)) != 0)
            .map(|(_, e)| e.process)
            .collect();
        if picked.is_empty() {
            picked.push(enabled[(w as usize) % enabled.len()].process);
        }
        picked
    }
    fn name(&self) -> &'static str {
        "schedule"
    }
}

/// Steps to convergence of SSRmin from `initial` under the given schedule
/// (capped at `cap`).
pub fn steps_under_schedule(
    algo: SsrMin,
    initial: &Config<SsrState>,
    words: &[u64],
    cap: u64,
) -> u64 {
    let mut engine = ssr_daemon::Engine::new(algo, initial.clone()).expect("valid configuration");
    let mut daemon = ScheduleDaemon::new(words.to_vec());
    for step in 0..cap {
        if algo.is_legitimate(engine.config()) {
            return step;
        }
        engine.step(&mut daemon);
    }
    cap
}

/// Result of the adversary search.
#[derive(Debug, Clone)]
pub struct AdversaryResult {
    /// Best (longest) stabilization found.
    pub steps: u64,
    /// The initial configuration achieving it.
    pub initial: Config<SsrState>,
    /// The schedule achieving it.
    pub schedule: Vec<u64>,
    /// Candidate evaluations spent.
    pub evaluations: u64,
}

/// Randomized hill climbing over (initial configuration, schedule):
/// mutate one of the two, keep improvements, restart on stagnation.
///
/// `budget` counts candidate evaluations (each is one capped run).
pub fn search_worst_case(algo: SsrMin, budget: u64, seed: u64) -> AdversaryResult {
    let params = algo.params();
    let cap = 100 * (params.n() as u64).pow(2) + 1000;
    let mut rng = StdRng::seed_from_u64(seed);

    let rand_state = |rng: &mut StdRng| {
        SsrState::new(
            rng.random_range(0..params.k()),
            rng.random_range(0..2u8),
            rng.random_range(0..2u8),
        )
    };
    let rand_config = |rng: &mut StdRng| -> Config<SsrState> {
        (0..params.n()).map(|_| rand_state(rng)).collect()
    };
    let rand_schedule =
        |rng: &mut StdRng| -> Vec<u64> { (0..64).map(|_| rng.random_range(0..u64::MAX)).collect() };

    let mut best = AdversaryResult {
        steps: 0,
        initial: rand_config(&mut rng),
        schedule: rand_schedule(&mut rng),
        evaluations: 0,
    };
    best.steps = steps_under_schedule(algo, &best.initial, &best.schedule, cap);

    let mut current = best.clone();
    let mut stagnant = 0u32;
    for _ in 1..budget {
        let mut cand_initial = current.initial.clone();
        let mut cand_schedule = current.schedule.clone();
        match rng.random_range(0..3u8) {
            0 => {
                // Mutate one process state.
                let victim = rng.random_range(0..params.n());
                cand_initial[victim] = rand_state(&mut rng);
            }
            1 => {
                // Mutate one schedule word.
                let at = rng.random_range(0..cand_schedule.len());
                cand_schedule[at] = rng.random_range(0..u64::MAX);
            }
            _ => {
                // Flip a single bit in a schedule word (fine-grained).
                let at = rng.random_range(0..cand_schedule.len());
                cand_schedule[at] ^= 1 << rng.random_range(0..8u32);
            }
        }
        let steps = steps_under_schedule(algo, &cand_initial, &cand_schedule, cap);
        best.evaluations += 1;
        if steps >= current.steps {
            if steps > current.steps {
                stagnant = 0;
            }
            current = AdversaryResult {
                steps,
                initial: cand_initial,
                schedule: cand_schedule,
                evaluations: best.evaluations,
            };
            if current.steps > best.steps {
                best = current.clone();
            }
        } else {
            stagnant += 1;
        }
        if stagnant > 300 {
            // Restart from a fresh random point.
            stagnant = 0;
            current.initial = rand_config(&mut rng);
            current.schedule = rand_schedule(&mut rng);
            current.steps = steps_under_schedule(algo, &current.initial, &current.schedule, cap);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::RingParams;

    #[test]
    fn schedule_daemon_is_deterministic_and_nonempty() {
        let enabled = [
            EnabledProcess { process: 1, rule_tag: 1 },
            EnabledProcess { process: 3, rule_tag: 3 },
        ];
        let mut d1 = ScheduleDaemon::new(vec![0b01, 0b10, 0b00]);
        assert_eq!(d1.select(&enabled, 0), vec![1]);
        assert_eq!(d1.select(&enabled, 1), vec![3]);
        // 0b00 coerces to a single pick.
        assert_eq!(d1.select(&enabled, 2).len(), 1);
        // Cycles.
        assert_eq!(d1.select(&enabled, 3), vec![1]);
    }

    #[test]
    fn search_approaches_the_exact_bound_for_n3() {
        // The model checker proves the exact worst case for n=3, K=4 is 16
        // steps (see exp_model_check). The search must find a schedule
        // within 75% of it and never exceed it.
        let algo = SsrMin::new(RingParams::new(3, 4).unwrap());
        let result = search_worst_case(algo, 3_000, 7);
        assert!(result.steps <= 16, "exceeded the proven exact bound: {result:?}");
        assert!(result.steps >= 12, "search too weak: found only {}", result.steps);
    }

    #[test]
    fn found_schedule_reproduces_its_score() {
        let algo = SsrMin::new(RingParams::new(4, 5).unwrap());
        let result = search_worst_case(algo, 800, 3);
        let replay = steps_under_schedule(algo, &result.initial, &result.schedule, 10_000);
        assert_eq!(replay, result.steps, "result must be reproducible");
    }
}
