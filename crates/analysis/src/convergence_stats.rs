//! Convergence-time sweeps: stabilization steps vs ring size, per daemon —
//! the empirical counterpart of Theorem 2's `O(n²)` bound.

use ssr_core::{RingParams, SsrMin};
use ssr_daemon::daemons::{
    CentralFirst, CentralLast, CentralRandom, Daemon, DelayDijkstra, DistributedRandom, RoundRobin,
    Starver, Synchronous,
};
use ssr_daemon::{measure_convergence, random_config};

use crate::stats::{summarize, Summary};

/// The daemon families exercised by the sweep experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DaemonKind {
    /// Always the lowest-index enabled process.
    CentralFirst,
    /// Always the highest-index enabled process.
    CentralLast,
    /// Uniformly random single process.
    CentralRandom,
    /// Fair rotation.
    RoundRobin,
    /// All enabled processes at once.
    Synchronous,
    /// Each enabled process with the given probability.
    DistributedRandom(f64),
    /// Starve process 0 (and 1 on larger rings).
    Starver,
    /// Greedily delay Dijkstra moves (the Lemma 5 adversary).
    DelayDijkstra,
}

impl DaemonKind {
    /// All kinds, for exhaustive sweeps.
    pub const ALL: [DaemonKind; 8] = [
        DaemonKind::CentralFirst,
        DaemonKind::CentralLast,
        DaemonKind::CentralRandom,
        DaemonKind::RoundRobin,
        DaemonKind::Synchronous,
        DaemonKind::DistributedRandom(0.5),
        DaemonKind::Starver,
        DaemonKind::DelayDijkstra,
    ];

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            DaemonKind::CentralFirst => "central-first".into(),
            DaemonKind::CentralLast => "central-last".into(),
            DaemonKind::CentralRandom => "central-random".into(),
            DaemonKind::RoundRobin => "round-robin".into(),
            DaemonKind::Synchronous => "synchronous".into(),
            DaemonKind::DistributedRandom(p) => format!("distributed(p={p})"),
            DaemonKind::Starver => "starver".into(),
            DaemonKind::DelayDijkstra => "delay-dijkstra".into(),
        }
    }

    /// Instantiate a fresh daemon with the given seed.
    pub fn build(&self, seed: u64) -> Box<dyn Daemon> {
        match *self {
            DaemonKind::CentralFirst => Box::new(CentralFirst),
            DaemonKind::CentralLast => Box::new(CentralLast),
            DaemonKind::CentralRandom => Box::new(CentralRandom::seeded(seed)),
            DaemonKind::RoundRobin => Box::new(RoundRobin::default()),
            DaemonKind::Synchronous => Box::new(Synchronous),
            DaemonKind::DistributedRandom(p) => Box::new(DistributedRandom::seeded(seed, p)),
            DaemonKind::Starver => Box::new(Starver::new(vec![0, 1], seed)),
            DaemonKind::DelayDijkstra => Box::new(DelayDijkstra::seeded(seed)),
        }
    }
}

/// Which initial-configuration family a sweep samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// Uniformly random states.
    Random,
    /// A legitimate configuration corrupted by the given number of faults.
    Corrupted(usize),
    /// The deterministic adversarial pattern.
    Adversarial,
}

/// One sweep point: convergence-step statistics over seeds.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Ring size.
    pub n: usize,
    /// Modulus used.
    pub k: u32,
    /// Convergence steps, summarized over seeds.
    pub steps: Summary,
    /// Convergence rounds (the asynchronous time unit), summarized over seeds.
    pub rounds: Summary,
    /// Dijkstra moves until convergence, summarized over seeds.
    pub dijkstra_moves: Summary,
}

/// Measure convergence of SSRmin for each ring size in `sizes`, taking
/// `seeds` samples per size under the given daemon and start family.
/// `K = n + 1` (the minimal legal modulus — the hardest case).
///
/// # Panics
/// Panics if any run fails to converge within `40·n² + 1000` steps — more
/// than an order of magnitude above the proof bound's constant, so a panic
/// means a real bug.
pub fn ssrmin_convergence_sweep(
    sizes: &[usize],
    seeds: u64,
    daemon: DaemonKind,
    start: StartKind,
) -> Vec<SweepPoint> {
    sizes
        .iter()
        .map(|&n| {
            let params = RingParams::minimal(n).expect("valid ring size");
            let algo = SsrMin::new(params);
            let budget = 40 * (n as u64) * (n as u64) + 1000;
            let mut steps = Vec::with_capacity(seeds as usize);
            let mut rounds = Vec::with_capacity(seeds as usize);
            let mut dmoves = Vec::with_capacity(seeds as usize);
            for seed in 0..seeds {
                let initial = match start {
                    StartKind::Random => random_config::random_ssr_config(params, seed),
                    StartKind::Corrupted(f) => random_config::corrupted_legitimate(params, f, seed),
                    StartKind::Adversarial => random_config::adversarial_ssr_config(params),
                };
                let mut d = daemon.build(seed);
                let report = measure_convergence(algo, initial, d.as_mut(), budget, 0)
                    .unwrap_or_else(|| {
                        panic!("n={n} seed={seed} daemon={} did not converge", daemon.label())
                    });
                steps.push(report.steps);
                rounds.push(report.rounds);
                dmoves.push(report.dijkstra_moves);
            }
            SweepPoint {
                n,
                k: params.k(),
                steps: summarize(&steps).expect("seeds >= 1"),
                rounds: summarize(&rounds).expect("seeds >= 1"),
                dijkstra_moves: summarize(&dmoves).expect("seeds >= 1"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::loglog_slope;

    #[test]
    fn daemon_kinds_build() {
        for kind in DaemonKind::ALL {
            let mut d = kind.build(1);
            let enabled = [ssr_daemon::EnabledProcess { process: 0, rule_tag: 1 }];
            let picked = d.select(&enabled, 0);
            assert_eq!(picked, vec![0], "{}", kind.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<String> =
            DaemonKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), DaemonKind::ALL.len());
    }

    #[test]
    fn rounds_never_exceed_steps_in_sweeps() {
        let pts = ssrmin_convergence_sweep(
            &[5],
            6,
            DaemonKind::DistributedRandom(0.5),
            StartKind::Random,
        );
        assert!(pts[0].rounds.mean <= pts[0].steps.mean + 1e-9);
    }

    #[test]
    fn sweep_produces_point_per_size() {
        let pts =
            ssrmin_convergence_sweep(&[4, 6], 4, DaemonKind::CentralRandom, StartKind::Random);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].n, 4);
        assert_eq!(pts[0].k, 5);
        assert_eq!(pts[0].steps.count, 4);
    }

    #[test]
    fn corrupted_starts_converge_fast() {
        // A single fault near a legitimate configuration stabilizes in a
        // handful of steps, far below the random-start cost.
        let few =
            ssrmin_convergence_sweep(&[8], 6, DaemonKind::CentralRandom, StartKind::Corrupted(1));
        let random =
            ssrmin_convergence_sweep(&[8], 6, DaemonKind::CentralRandom, StartKind::Random);
        assert!(
            few[0].steps.mean <= random[0].steps.mean + 1.0,
            "corrupted {} vs random {}",
            few[0].steps.mean,
            random[0].steps.mean
        );
    }

    /// The empirical growth exponent of convergence steps is at most
    /// quadratic-ish (Theorem 2): fit on small sizes and demand slope < 2.6.
    #[test]
    fn growth_exponent_is_subquadratic_with_slack() {
        let pts = ssrmin_convergence_sweep(
            &[4, 6, 8, 12, 16],
            8,
            DaemonKind::CentralRandom,
            StartKind::Random,
        );
        let series: Vec<(f64, f64)> =
            pts.iter().map(|p| (p.n as f64, p.steps.mean.max(1.0))).collect();
        let (slope, _) = loglog_slope(&series).unwrap();
        assert!(slope < 2.6, "growth exponent {slope}");
    }
}
