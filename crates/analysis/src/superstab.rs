//! Superstabilization-style analysis of SSRmin (the extension direction the
//! paper's conclusion points to via Katayama et al. [15]).
//!
//! A *superstabilizing* algorithm, beyond self-stabilizing, keeps a passage
//! predicate during recovery from a single-fault ("almost legitimate")
//! configuration. SSRmin is not claimed superstabilizing by the paper, but
//! it has a strong de-facto passage property: by Lemma 3 the primary token
//! exists in **every** configuration, so mutual inclusion (≥ 1 privileged)
//! holds even during recovery. This module quantifies single-fault recovery
//! exhaustively: recovery time, and the worst excursion of the privileged
//! count above the legitimate bound of 2.

use ssr_core::{legitimacy, RingAlgorithm, RingParams, SsrMin, SsrState};
use ssr_daemon::Engine;

use crate::convergence_stats::DaemonKind;

/// Aggregate over all single-fault cases examined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperstabReport {
    /// Number of (legitimate configuration × fault) cases run.
    pub cases: u64,
    /// Cases that were still legitimate after the fault (the fault was
    /// absorbed syntactically, e.g. overwriting a state with itself or with
    /// another legitimate completion).
    pub still_legitimate: u64,
    /// Worst steps to re-reach a legitimate configuration.
    pub max_recovery_steps: u64,
    /// Mean steps to recovery (over cases that needed recovery).
    pub mean_recovery_steps: f64,
    /// Smallest privileged count seen in any intermediate configuration.
    pub min_privileged: usize,
    /// Largest privileged count seen in any intermediate configuration.
    pub max_privileged: usize,
    /// True iff mutual inclusion (≥ 1 privileged) held in every
    /// intermediate configuration of every case — the passage predicate.
    pub inclusion_never_violated: bool,
}

/// Exhaustively (or sampled, via `stride`) corrupt one process of each
/// legitimate configuration to every possible state and drive recovery
/// under the given daemon.
///
/// `stride` subsamples the legitimate-configuration list (1 = exhaustive).
/// Panics if any case fails to recover within `40n² + 1000` steps.
pub fn single_fault_sweep(
    params: RingParams,
    daemon: DaemonKind,
    stride: usize,
    seed: u64,
) -> SuperstabReport {
    let algo = SsrMin::new(params);
    let n = params.n();
    let k = params.k();
    let budget = 40 * (n as u64) * (n as u64) + 1000;

    let mut cases = 0u64;
    let mut still_legit = 0u64;
    let mut max_steps = 0u64;
    let mut total_steps = 0u64;
    let mut recovered_cases = 0u64;
    let mut min_priv = usize::MAX;
    let mut max_priv = 0usize;

    let legit_configs = legitimacy::enumerate_legitimate(params);
    for base in legit_configs.iter().step_by(stride.max(1)) {
        for victim in 0..n {
            for raw in 0..(4 * k) {
                let corrupt = SsrState::new(raw / 4, ((raw % 4) >> 1) as u8, (raw % 2) as u8);
                if corrupt == base[victim] {
                    continue; // not a fault
                }
                let mut cfg = base.clone();
                cfg[victim] = corrupt;
                cases += 1;

                if algo.is_legitimate(&cfg) {
                    still_legit += 1;
                    continue;
                }

                let mut daemon_inst = daemon.build(seed ^ cases);
                let mut engine = Engine::new(algo, cfg).expect("valid config");
                let mut steps = 0u64;
                loop {
                    let holders = algo.token_holders(engine.config()).len();
                    min_priv = min_priv.min(holders);
                    max_priv = max_priv.max(holders);
                    if algo.is_legitimate(engine.config()) {
                        break;
                    }
                    assert!(
                        steps < budget,
                        "single-fault case failed to recover within {budget} steps"
                    );
                    engine.step(daemon_inst.as_mut()).expect("no deadlock (Lemma 4)");
                    steps += 1;
                }
                max_steps = max_steps.max(steps);
                total_steps += steps;
                recovered_cases += 1;
            }
        }
    }

    SuperstabReport {
        cases,
        still_legitimate: still_legit,
        max_recovery_steps: max_steps,
        mean_recovery_steps: if recovered_cases == 0 {
            0.0
        } else {
            total_steps as f64 / recovered_cases as f64
        },
        min_privileged: if min_priv == usize::MAX { 0 } else { min_priv },
        max_privileged: max_priv,
        inclusion_never_violated: min_priv == usize::MAX || min_priv >= 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_single_fault_n4() {
        let p = RingParams::new(4, 5).unwrap();
        let r = single_fault_sweep(p, DaemonKind::CentralFirst, 1, 0);
        // 3nK base configs × n victims × (4K - 1) corrupt states.
        assert_eq!(r.cases, (3 * 4 * 5 * 4 * (4 * 5 - 1)) as u64);
        assert!(r.inclusion_never_violated, "{r:?}");
        assert!(r.min_privileged >= 1);
        // Single-fault recovery is fast — well below the worst case O(n²).
        assert!(r.max_recovery_steps <= 8 * 4, "{r:?}");
        assert!(r.mean_recovery_steps > 0.0);
    }

    #[test]
    fn sampled_single_fault_larger_ring() {
        let p = RingParams::new(8, 10).unwrap();
        let r = single_fault_sweep(p, DaemonKind::CentralRandom, 13, 3);
        assert!(r.cases > 0);
        assert!(r.inclusion_never_violated, "{r:?}");
        // Recovery stays linear-ish in n even under a randomized daemon.
        assert!(r.max_recovery_steps <= 12 * 8, "{r:?}");
    }

    #[test]
    fn privileged_excursion_is_bounded_small() {
        // One fault flips the guards/token predicates only at the victim
        // and its two neighbours, so starting from ≤2 privileged the
        // excursion is bounded by 2 + 3 = 5 regardless of K.
        let p = RingParams::new(5, 7).unwrap();
        let r = single_fault_sweep(p, DaemonKind::CentralFirst, 1, 0);
        assert!(r.max_privileged <= 5, "{r:?}");
    }
}
