//! Token-availability statistics of message-passing runs: the quantitative
//! side of Figures 11–13 (zero-token time, interval counts, privileged-node
//! bounds), uniform across SSRmin and the baselines.

use ssr_core::{Config, RingAlgorithm};
use ssr_mpnet::{CstSim, SimConfig, Time, TimelineSummary};

/// One row of a gap-tolerance comparison.
#[derive(Debug, Clone)]
pub struct GapRow {
    /// Algorithm label.
    pub algo: String,
    /// Ring size.
    pub n: usize,
    /// Seed used.
    pub seed: u64,
    /// Time-weighted summary of the run.
    pub summary: TimelineSummary,
}

impl GapRow {
    /// Fraction of the observed window with zero privileged nodes.
    pub fn zero_fraction(&self) -> f64 {
        if self.summary.window == 0 {
            0.0
        } else {
            self.summary.zero_privileged_time as f64 / self.summary.window as f64
        }
    }
}

/// Run one CST simulation of `algo` from `initial` and summarize the token
/// timeline over `[warmup, t_end]`.
pub fn cst_gap_summary<A: RingAlgorithm>(
    algo: A,
    initial: Config<A::State>,
    sim_cfg: SimConfig,
    t_end: Time,
    warmup: Time,
) -> TimelineSummary {
    let mut sim = CstSim::new(algo, initial, sim_cfg).expect("valid initial configuration");
    sim.run_until(t_end);
    sim.timeline().summary(warmup).expect("non-empty window")
}

/// Run the same experiment across `seeds` and collect rows.
pub fn cst_gap_rows<A, F>(
    label: &str,
    n: usize,
    seeds: u64,
    mut make: F,
    t_end: Time,
    warmup: Time,
) -> Vec<GapRow>
where
    A: RingAlgorithm,
    F: FnMut(u64) -> (A, Config<A::State>, SimConfig),
{
    (0..seeds)
        .map(|seed| {
            let (algo, initial, cfg) = make(seed);
            let summary = cst_gap_summary(algo, initial, cfg, t_end, warmup);
            GapRow { algo: label.to_owned(), n, seed, summary }
        })
        .collect()
}

/// Aggregate over rows: worst (max) zero-token time, total zero intervals,
/// and the min/max privileged counts seen anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapAggregate {
    /// Max zero-privileged time across rows.
    pub worst_zero_time: Time,
    /// Total zero-privileged intervals across rows.
    pub total_zero_intervals: usize,
    /// Min of `min_privileged` across rows.
    pub min_privileged: usize,
    /// Max of `max_privileged` across rows.
    pub max_privileged: usize,
}

/// Fold rows into a [`GapAggregate`]. Returns `None` for an empty slice.
pub fn aggregate(rows: &[GapRow]) -> Option<GapAggregate> {
    let first = rows.first()?;
    let mut agg = GapAggregate {
        worst_zero_time: first.summary.zero_privileged_time,
        total_zero_intervals: first.summary.zero_privileged_intervals,
        min_privileged: first.summary.min_privileged,
        max_privileged: first.summary.max_privileged,
    };
    for r in &rows[1..] {
        agg.worst_zero_time = agg.worst_zero_time.max(r.summary.zero_privileged_time);
        agg.total_zero_intervals += r.summary.zero_privileged_intervals;
        agg.min_privileged = agg.min_privileged.min(r.summary.min_privileged);
        agg.max_privileged = agg.max_privileged.max(r.summary.max_privileged);
    }
    Some(agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::{RingParams, SsToken, SsrMin};

    #[test]
    fn ssrmin_rows_show_no_gap() {
        let p = RingParams::new(5, 7).unwrap();
        let rows = cst_gap_rows(
            "ssrmin",
            5,
            3,
            |seed| {
                let a = SsrMin::new(p);
                (a, a.legitimate_anchor(0), SimConfig { seed, ..SimConfig::default() })
            },
            10_000,
            0,
        );
        assert_eq!(rows.len(), 3);
        let agg = aggregate(&rows).unwrap();
        assert_eq!(agg.worst_zero_time, 0);
        assert_eq!(agg.total_zero_intervals, 0);
        assert!(agg.min_privileged >= 1);
        assert!(agg.max_privileged <= 2);
        assert!(rows.iter().all(|r| r.zero_fraction() == 0.0));
    }

    #[test]
    fn dijkstra_rows_show_gaps() {
        let p = RingParams::new(5, 7).unwrap();
        let rows = cst_gap_rows(
            "dijkstra",
            5,
            3,
            |seed| {
                let a = SsToken::new(p);
                (a, a.uniform_config(0), SimConfig { seed, exec_delay: 3, ..SimConfig::default() })
            },
            10_000,
            0,
        );
        let agg = aggregate(&rows).unwrap();
        assert!(agg.worst_zero_time > 0);
        assert_eq!(agg.min_privileged, 0);
        assert!(rows.iter().any(|r| r.zero_fraction() > 0.0));
    }

    #[test]
    fn aggregate_empty_is_none() {
        assert!(aggregate(&[]).is_none());
    }
}
