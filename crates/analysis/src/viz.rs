//! Tiny ASCII visualizations for terminal output: the privileged-count
//! strip (one character per time bucket, showing the *worst* count in the
//! bucket) and a horizontal bar chart. Used by the CLI and the experiment
//! binaries; kept dependency-free on purpose.

use ssr_mpnet::{Sample, Time};

/// Render a privileged-count timeline as a fixed-width strip.
///
/// Each output character covers `end / width` ticks and shows the *minimum*
/// privileged count inside its bucket (the safety-relevant quantity):
///
/// * `!` — zero privileged nodes somewhere in the bucket (violation),
/// * `1`, `2` — minimum count 1 / 2,
/// * `#` — minimum count 3 or more.
///
/// A mutual-inclusion-correct run therefore renders with no `!` anywhere.
pub fn privileged_strip(samples: &[Sample], end: Time, width: usize) -> String {
    assert!(width > 0, "strip width must be positive");
    if samples.is_empty() || end == 0 {
        return String::new();
    }
    let mut mins: Vec<Option<usize>> = vec![None; width];
    let bucket_of = |t: Time| -> usize {
        (((t as u128) * width as u128 / end.max(1) as u128) as usize).min(width - 1)
    };
    for (idx, s) in samples.iter().enumerate() {
        let from = s.at.min(end);
        let to = samples.get(idx + 1).map(|n| n.at).unwrap_or(end).min(end);
        if from >= end {
            break;
        }
        let (b0, b1) = (bucket_of(from), bucket_of(to.saturating_sub(1).max(from)));
        for slot in mins.iter_mut().take(b1 + 1).skip(b0) {
            *slot = Some(slot.map_or(s.privileged, |m: usize| m.min(s.privileged)));
        }
    }
    mins.into_iter()
        .map(|m| match m {
            None => ' ',
            Some(0) => '!',
            Some(1) => '1',
            Some(2) => '2',
            Some(_) => '#',
        })
        .collect()
}

/// A labelled horizontal bar chart: one row per `(label, value)`, scaled to
/// `width` characters against the maximum value.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    assert!(width > 0);
    let max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let filled = if max <= 0.0 { 0 } else { ((value / max) * width as f64).round() as usize };
        out.push_str(
            &format!("{label:<label_w$}  {} {value:.2}\n", "#".repeat(filled.min(width)),),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at: Time, privileged: usize) -> Sample {
        Sample {
            at,
            privileged,
            mask: (1u64 << privileged) - 1,
            tokens_total: privileged,
            coherent: true,
            legitimate: true,
        }
    }

    #[test]
    fn strip_marks_zero_buckets() {
        let samples = vec![sample(0, 1), sample(50, 0), sample(60, 2)];
        let strip = privileged_strip(&samples, 100, 10);
        assert_eq!(strip.len(), 10);
        assert!(strip.contains('!'), "{strip}");
        assert!(strip.starts_with('1'), "{strip}");
        assert!(strip.ends_with('2'), "{strip}");
    }

    #[test]
    fn strip_all_ones_has_no_alarm() {
        let samples = vec![sample(0, 1)];
        let strip = privileged_strip(&samples, 100, 20);
        assert_eq!(strip, "1".repeat(20));
    }

    #[test]
    fn strip_uses_worst_case_within_bucket() {
        // A momentary zero inside an otherwise-2 bucket must show '!'.
        let samples = vec![sample(0, 2), sample(5, 0), sample(6, 2)];
        let strip = privileged_strip(&samples, 100, 1);
        assert_eq!(strip, "!");
    }

    #[test]
    fn strip_empty_inputs() {
        assert_eq!(privileged_strip(&[], 100, 5), "");
        assert_eq!(privileged_strip(&[sample(0, 1)], 0, 5), "");
    }

    #[test]
    fn high_counts_render_hash() {
        let samples = vec![sample(0, 4)];
        assert_eq!(privileged_strip(&samples, 10, 3), "###");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("a".to_string(), 2.0), ("bb".to_string(), 4.0)];
        let chart = bar_chart(&rows, 8);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("####"), "{chart}");
        assert!(lines[1].contains("########"), "{chart}");
        assert!(lines[1].starts_with("bb"));
    }

    #[test]
    fn bar_chart_all_zero() {
        let rows = vec![("x".to_string(), 0.0)];
        let chart = bar_chart(&rows, 8);
        assert!(chart.contains("0.00"));
    }
}
