//! Minimal plain-text table rendering for the experiment harness — the
//! experiment binaries print tables in the same shape the paper's figures
//! and claims take, so `EXPERIMENTS.md` can quote them verbatim.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table builder.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers; alignment defaults to
    /// `Left` for the first column and `Right` for the rest (label + numbers).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns =
            (0..headers.len()).map(|i| if i == 0 { Align::Left } else { Align::Right }).collect();
        Table { headers, aligns, rows: Vec::new() }
    }

    /// Override column alignments (must match the header count).
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns;
        self
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column separators and a header rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String], widths: &[usize], aligns: &[Align]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(out, "{:<w$}", cells[i], w = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{:>w$}", cells[i], w = widths[i]);
                    }
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers, &widths, &self.aligns);
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row, &widths, &self.aligns);
        }
        out
    }
}

/// Format a float with the given number of decimals (shared helper for the
/// experiment binaries).
pub fn fnum(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "1234"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].ends_with("   1"));
        assert!(lines[3].ends_with("1234"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn custom_alignment() {
        let mut t = Table::new(vec!["x", "y"]).with_aligns(vec![Align::Right, Align::Left]);
        t.row(vec!["1", "abc"]);
        let r = t.render();
        assert!(r.lines().nth(2).unwrap().starts_with("1"));
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(10.0, 0), "10");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
    }
}
