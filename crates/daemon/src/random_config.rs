//! Random and fault-injected initial configurations.
//!
//! Self-stabilization quantifies over *all* initial configurations; these
//! generators sample that space: uniformly random states, "almost
//! legitimate" states obtained by corrupting a legitimate configuration
//! with a bounded number of transient faults, and adversarially shaped
//! counter patterns that are slow for Dijkstra-style rings.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use ssr_core::{legitimacy, RingParams, SsrState};

/// A uniformly random SSRmin configuration: every `x` uniform in `0..K`,
/// every flag an independent fair coin. Deterministic given `seed`.
pub fn random_ssr_config(params: RingParams, seed: u64) -> Vec<SsrState> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..params.n())
        .map(|_| {
            SsrState::new(
                rng.random_range(0..params.k()),
                rng.random_range(0..2u8),
                rng.random_range(0..2u8),
            )
        })
        .collect()
}

/// A uniformly random Dijkstra configuration (`x` values only).
pub fn random_dijkstra_config(params: RingParams, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..params.n()).map(|_| rng.random_range(0..params.k())).collect()
}

/// Start from a random *legitimate* configuration and flip `faults` process
/// states to random values — the "a few transient faults hit a running
/// system" scenario that motivates self-stabilization.
pub fn corrupted_legitimate(params: RingParams, faults: usize, seed: u64) -> Vec<SsrState> {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = rng.random_range(0..params.k());
    let i = rng.random_range(0..params.n());
    let form = match rng.random_range(0..3u8) {
        0 => legitimacy::LegitimateForm::BothTra { i, x },
        1 => legitimacy::LegitimateForm::BothRts { i, x },
        _ => legitimacy::LegitimateForm::Split { i, x },
    };
    let mut cfg = legitimacy::build(params, form);
    for _ in 0..faults {
        let victim = rng.random_range(0..params.n());
        cfg[victim] = SsrState::new(
            rng.random_range(0..params.k()),
            rng.random_range(0..2u8),
            rng.random_range(0..2u8),
        );
    }
    cfg
}

/// The classic worst-case-ish Dijkstra counter pattern: all distinct values
/// descending from the bottom, which maximizes the work the ring must do to
/// flush alien values. Flags are set to the "everything raised" pattern to
/// also exercise Rules 4/5 heavily.
pub fn adversarial_ssr_config(params: RingParams) -> Vec<SsrState> {
    (0..params.n())
        .map(|i| {
            let x = (params.n() - i) as u32 % params.k();
            // Alternate stray flag patterns around the ring.
            match i % 4 {
                0 => SsrState::new(x, 1, 1),
                1 => SsrState::new(x, 1, 0),
                2 => SsrState::new(x, 0, 1),
                _ => SsrState::new(x, 0, 0),
            }
        })
        .collect()
}

/// Every SSRmin configuration for a tiny ring, for exhaustive checks:
/// `(4K)^n` entries, so keep `n` and `K` small (n=3, K=4 gives 4096).
pub fn exhaustive_ssr_configs(params: RingParams) -> impl Iterator<Item = Vec<SsrState>> {
    let n = params.n();
    let per = 4 * params.k() as u64;
    let total = per.pow(n as u32);
    (0..total).map(move |mut raw| {
        (0..n)
            .map(|_| {
                let d = (raw % per) as u32;
                raw /= per;
                SsrState::new(d / 4, ((d % 4) >> 1) as u8, (d % 2) as u8)
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_core::{RingAlgorithm, SsrMin};

    fn params() -> RingParams {
        RingParams::new(5, 7).unwrap()
    }

    #[test]
    fn random_config_is_valid_and_deterministic() {
        let p = params();
        let a = SsrMin::new(p);
        let c1 = random_ssr_config(p, 99);
        let c2 = random_ssr_config(p, 99);
        assert_eq!(c1, c2);
        assert!(a.validate_config(&c1).is_ok());
        let c3 = random_ssr_config(p, 100);
        assert_ne!(c1, c3, "different seeds should differ (w.h.p.)");
    }

    #[test]
    fn random_dijkstra_config_in_range() {
        let p = params();
        let c = random_dijkstra_config(p, 7);
        assert_eq!(c.len(), 5);
        assert!(c.iter().all(|&x| x < 7));
    }

    #[test]
    fn corrupted_with_zero_faults_is_legitimate() {
        let p = params();
        for seed in 0..50 {
            let c = corrupted_legitimate(p, 0, seed);
            assert!(legitimacy::is_legitimate_ssrmin(p, &c), "seed {seed}");
        }
    }

    #[test]
    fn corrupted_config_is_valid() {
        let p = params();
        let a = SsrMin::new(p);
        for seed in 0..50 {
            let c = corrupted_legitimate(p, 2, seed);
            assert!(a.validate_config(&c).is_ok());
        }
    }

    #[test]
    fn adversarial_config_is_valid_and_illegitimate() {
        let p = params();
        let a = SsrMin::new(p);
        let c = adversarial_ssr_config(p);
        assert!(a.validate_config(&c).is_ok());
        assert!(!a.is_legitimate(&c));
    }

    #[test]
    fn exhaustive_enumerates_4k_pow_n() {
        let p = RingParams::new(3, 4).unwrap();
        let count = exhaustive_ssr_configs(p).count();
        assert_eq!(count, (4 * 4usize).pow(3));
        // All distinct.
        let set: std::collections::HashSet<Vec<String>> =
            exhaustive_ssr_configs(p).map(|c| c.iter().map(|s| s.to_string()).collect()).collect();
        assert_eq!(set.len(), count);
    }
}
