//! Daemon combinators: compose scheduling strategies into richer ones.
//! Useful for exploring execution spaces ("mostly synchronous with bursts
//! of adversarial delay", "alternate central and distributed phases") —
//! self-stabilization must hold under all of them, so composition is a
//! cheap way to widen the schedules the test suites exercise.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::daemons::{Daemon, EnabledProcess};

/// Alternate between two daemons in fixed-length phases: `a` drives
/// `period_a` steps, then `b` drives `period_b`, and so on.
#[derive(Debug)]
pub struct Alternate<A, B> {
    a: A,
    b: B,
    period_a: u64,
    period_b: u64,
    pos: u64,
}

impl<A: Daemon, B: Daemon> Alternate<A, B> {
    /// Build the alternation (both periods must be positive).
    pub fn new(a: A, period_a: u64, b: B, period_b: u64) -> Self {
        assert!(period_a > 0 && period_b > 0, "phases must be non-empty");
        Alternate { a, b, period_a, period_b, pos: 0 }
    }
}

impl<A: Daemon, B: Daemon> Daemon for Alternate<A, B> {
    fn select(&mut self, enabled: &[EnabledProcess], step: u64) -> Vec<usize> {
        let cycle = self.period_a + self.period_b;
        let in_a = self.pos % cycle < self.period_a;
        self.pos += 1;
        if in_a {
            self.a.select(enabled, step)
        } else {
            self.b.select(enabled, step)
        }
    }
    fn name(&self) -> &'static str {
        "alternate"
    }
}

/// Pick daemon `a` with probability `p` at each step, else `b`.
#[derive(Debug)]
pub struct Mix<A, B> {
    a: A,
    b: B,
    p: f64,
    rng: StdRng,
}

impl<A: Daemon, B: Daemon> Mix<A, B> {
    /// Build the mixture (`p` clamped to `[0, 1]`), deterministic per seed.
    pub fn new(a: A, b: B, p: f64, seed: u64) -> Self {
        Mix { a, b, p: p.clamp(0.0, 1.0), rng: StdRng::seed_from_u64(seed) }
    }
}

impl<A: Daemon, B: Daemon> Daemon for Mix<A, B> {
    fn select(&mut self, enabled: &[EnabledProcess], step: u64) -> Vec<usize> {
        if self.rng.random_bool(self.p) {
            self.a.select(enabled, step)
        } else {
            self.b.select(enabled, step)
        }
    }
    fn name(&self) -> &'static str {
        "mix"
    }
}

/// Restrict an inner daemon's picks to a fixed window of the ring (the
/// complement is starved): models a partitioned scheduler that only ever
/// runs part of the system — the strongest practical unfairness.
#[derive(Debug)]
pub struct Restrict<D> {
    inner: D,
    allowed: Vec<usize>,
}

impl<D: Daemon> Restrict<D> {
    /// Only processes in `allowed` may be scheduled (when any of them is
    /// enabled; otherwise the restriction is lifted for that step, which
    /// keeps the daemon legal).
    pub fn new(inner: D, allowed: Vec<usize>) -> Self {
        Restrict { inner, allowed }
    }
}

impl<D: Daemon> Daemon for Restrict<D> {
    fn select(&mut self, enabled: &[EnabledProcess], step: u64) -> Vec<usize> {
        let filtered: Vec<EnabledProcess> =
            enabled.iter().copied().filter(|e| self.allowed.contains(&e.process)).collect();
        if filtered.is_empty() {
            self.inner.select(enabled, step)
        } else {
            self.inner.select(&filtered, step)
        }
    }
    fn name(&self) -> &'static str {
        "restrict"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemons::{CentralFirst, CentralLast, Synchronous};
    use crate::measure_convergence;
    use crate::random_config;
    use ssr_core::{RingParams, SsrMin};

    fn enabled(list: &[usize]) -> Vec<EnabledProcess> {
        list.iter().map(|&p| EnabledProcess { process: p, rule_tag: 1 }).collect()
    }

    #[test]
    fn alternate_switches_phases() {
        let mut d = Alternate::new(CentralFirst, 2, CentralLast, 1);
        let e = enabled(&[0, 4]);
        assert_eq!(d.select(&e, 0), vec![0]); // phase a
        assert_eq!(d.select(&e, 1), vec![0]); // phase a
        assert_eq!(d.select(&e, 2), vec![4]); // phase b
        assert_eq!(d.select(&e, 3), vec![0]); // back to a
    }

    #[test]
    fn mix_is_deterministic_per_seed() {
        let picks = |seed| {
            let mut d = Mix::new(CentralFirst, CentralLast, 0.5, seed);
            let e = enabled(&[0, 4]);
            (0..20).map(|s| d.select(&e, s)[0]).collect::<Vec<_>>()
        };
        assert_eq!(picks(1), picks(1));
        assert!(picks(1).contains(&0) && picks(1).contains(&4), "both arms must fire");
    }

    #[test]
    fn restrict_confines_when_possible() {
        let mut d = Restrict::new(Synchronous, vec![1, 2]);
        let e = enabled(&[0, 1, 2, 3]);
        assert_eq!(d.select(&e, 0), vec![1, 2]);
        // When no allowed process is enabled, the restriction lifts.
        let only_others = enabled(&[0, 3]);
        assert_eq!(d.select(&only_others, 0), vec![0, 3]);
    }

    #[test]
    fn ssrmin_converges_under_composed_daemons() {
        let p = RingParams::new(6, 8).unwrap();
        let a = SsrMin::new(p);
        for seed in 0..6u64 {
            let cfg = random_config::random_ssr_config(p, seed);
            let mut d = Alternate::new(
                Mix::new(Synchronous, CentralLast, 0.3, seed),
                5,
                Restrict::new(CentralFirst, vec![0, 1, 2]),
                7,
            );
            let r = measure_convergence(a, cfg, &mut d, 100_000, 10);
            assert!(r.is_some(), "seed {seed}: composed daemon broke convergence");
        }
    }
}
